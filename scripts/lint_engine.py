#!/usr/bin/env python3
"""Engine-contract linter: AST rules the generic ruff set cannot express.

Run by ``make lint`` (and the CI ``static-analysis`` job).  The rules share
the stable-code registry of :mod:`repro.analysis.findings`:

* **RP401** — ``_produce_chunks`` implementations in the physical layer
  must stay on the columnar fast path: no ``.rows()`` calls, no
  ``Row.from_schema``, no ``Chunk.from_rows``, no row ``batched`` slicing.
  Operators with a *reason* to materialize rows (public row-based
  predicate/aggregate APIs, legacy adapters) carry a waiver pragma on or
  directly above the ``def`` line::

      # contract: rows-ok (the public predicate API takes a Row)

* **RP402** — physical operators must never pull ``rows()`` from a child
  operator (``self._children[i].rows()`` or a name bound from
  ``self._children``): children are consumed through ``chunks()`` so the
  per-operator counters stay correct.

* **RP403** — every concrete law class under ``src/repro/laws/`` must
  declare its ``conditions`` tuple in the class body (empty tuple =
  explicitly unconditional).

* **RP404** — every physical operator class that declares a ``name`` must
  also declare ``properties`` (its own cost descriptor) in its body or in
  a base class defined in the same file.

Exit code 1 when any severity-``error`` finding is emitted; ``--json``
prints the findings as a JSON document for the CI gate.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Iterator, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.findings import Finding, finding  # noqa: E402

PHYSICAL_DIR = REPO_ROOT / "src" / "repro" / "physical"
LAWS_DIR = REPO_ROOT / "src" / "repro" / "laws"

PRAGMA = "# contract: rows-ok"

#: Calls inside _produce_chunks that mean "a Row object was materialized".
ROW_MATERIALIZERS = {"rows", "from_schema", "from_rows", "batched"}


def _python_files(directory: Path) -> Iterator[Path]:
    yield from sorted(directory.rglob("*.py"))


def _has_rows_ok_pragma(source_lines: Sequence[str], def_line: int) -> bool:
    """True when the waiver pragma sits on the ``def`` line or just above.

    ``def_line`` is 1-based (as in AST nodes); decorators are skipped when
    scanning upwards so the pragma can sit above them too.
    """
    for line_number in (def_line, def_line - 1):
        if 1 <= line_number <= len(source_lines):
            line = source_lines[line_number - 1]
            if PRAGMA in line:
                return True
    return False


def _where(path: Path, node: ast.AST) -> str:
    try:
        located = path.relative_to(REPO_ROOT)
    except ValueError:  # files outside the repo (unit tests lint fixtures)
        located = path
    return f"{located}:{getattr(node, 'lineno', 0)}"


# ----------------------------------------------------------------------
# RP401 / RP402: the physical layer's chunk contract
# ----------------------------------------------------------------------
def _row_materializing_calls(function: ast.FunctionDef) -> list[ast.Call]:
    calls = []
    for node in ast.walk(function):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        if isinstance(callee, ast.Attribute) and callee.attr in ROW_MATERIALIZERS:
            calls.append(node)
        elif isinstance(callee, ast.Name) and callee.id in {"batched", "from_schema"}:
            calls.append(node)
    return calls


def _child_bound_names(function: ast.FunctionDef) -> set[str]:
    """Names bound (directly) from ``self._children`` inside ``function``."""
    names: set[str] = set()

    def is_children_ref(node: ast.expr) -> bool:
        if isinstance(node, ast.Attribute) and node.attr in {"_children", "children"}:
            return True
        if isinstance(node, ast.Subscript):
            return is_children_ref(node.value)
        return False

    for node in ast.walk(function):
        if not isinstance(node, ast.Assign) or not is_children_ref(node.value):
            continue
        for target in node.targets:
            elements = target.elts if isinstance(target, ast.Tuple) else [target]
            names.update(
                element.id for element in elements if isinstance(element, ast.Name)
            )
    return names


def _check_physical_file(path: Path) -> Iterator[Finding]:
    source = path.read_text()
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    for class_node in (n for n in tree.body if isinstance(n, ast.ClassDef)):
        for method in (n for n in class_node.body if isinstance(n, ast.FunctionDef)):
            child_names = _child_bound_names(method)
            # RP402 applies to every method of an operator class, not just
            # _produce_chunks — a child's rows() is wrong anywhere.
            for call in ast.walk(method):
                if not isinstance(call, ast.Call):
                    continue
                callee = call.func
                if not (isinstance(callee, ast.Attribute) and callee.attr == "rows"):
                    continue
                receiver = callee.value
                pulls_child = (
                    isinstance(receiver, ast.Name) and receiver.id in child_names
                ) or (
                    isinstance(receiver, ast.Subscript)
                    and isinstance(receiver.value, ast.Attribute)
                    and receiver.value.attr in {"_children", "children"}
                )
                if pulls_child:
                    yield finding(
                        "RP402",
                        f"{class_node.name}.{method.name} pulls rows() from a child "
                        "operator; consume children through chunks()",
                        _where(path, call),
                        "engine",
                    )
            if method.name != "_produce_chunks":
                continue
            offenders = _row_materializing_calls(method)
            if offenders and not _has_rows_ok_pragma(lines, method.lineno):
                spelled = sorted(
                    {
                        callee.attr
                        if isinstance(callee := call.func, ast.Attribute)
                        else callee.id
                        for call in offenders
                    }
                )
                yield finding(
                    "RP401",
                    f"{class_node.name}._produce_chunks materializes Row objects "
                    f"({', '.join(spelled)}) without a '{PRAGMA} (reason)' waiver",
                    _where(path, method),
                    "engine",
                )


# ----------------------------------------------------------------------
# RP403: laws declare their conditions
# ----------------------------------------------------------------------
def _assigned_names(class_node: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for statement in class_node.body:
        if isinstance(statement, ast.Assign):
            names.update(
                target.id for target in statement.targets if isinstance(target, ast.Name)
            )
        elif (
            isinstance(statement, ast.AnnAssign)
            and isinstance(statement.target, ast.Name)
            and statement.value is not None
        ):
            names.add(statement.target.id)
    return names


def _base_names(class_node: ast.ClassDef) -> set[str]:
    names = set()
    for base in class_node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _check_laws_file(path: Path) -> Iterator[Finding]:
    tree = ast.parse(path.read_text(), filename=str(path))
    for class_node in (n for n in tree.body if isinstance(n, ast.ClassDef)):
        bases = _base_names(class_node)
        if "RewriteRule" not in bases:
            continue
        if "conditions" not in _assigned_names(class_node):
            yield finding(
                "RP403",
                f"law class {class_node.name} does not declare its conditions "
                "(use an empty tuple for 'unconditional')",
                _where(path, class_node),
                "engine",
            )


# ----------------------------------------------------------------------
# RP404: operators declaring a name also declare properties
# ----------------------------------------------------------------------
def _is_operator_class(class_node: ast.ClassDef, classes: dict[str, ast.ClassDef]) -> bool:
    """True when the class (transitively, within this file) is a physical
    operator — non-operator helpers (bitset kernels, dataclasses) are
    exempt from the name/properties pairing rule."""
    queue = list(_base_names(class_node))
    seen: set[str] = set()
    while queue:
        base = queue.pop()
        if base in seen:
            continue
        seen.add(base)
        if base == "PhysicalOperator" or base.endswith("Operator"):
            return True
        if base in classes:
            queue.extend(_base_names(classes[base]))
    return False


def _check_operator_declarations(path: Path) -> Iterator[Finding]:
    tree = ast.parse(path.read_text(), filename=str(path))
    classes = {n.name: n for n in tree.body if isinstance(n, ast.ClassDef)}
    for class_node in classes.values():
        if not _is_operator_class(class_node, classes):
            continue
        assigned = _assigned_names(class_node)
        if "name" not in assigned or "properties" in assigned:
            continue
        # A base class in the same file may carry the descriptor for a
        # family of operators (the scan operators share _ScanBase's).
        inherited = False
        queue = list(_base_names(class_node))
        seen: set[str] = set()
        while queue:
            base = queue.pop()
            if base in seen or base not in classes:
                continue
            seen.add(base)
            if "properties" in _assigned_names(classes[base]):
                inherited = True
                break
            queue.extend(_base_names(classes[base]))
        if not inherited:
            yield finding(
                "RP404",
                f"operator class {class_node.name} declares a name but no "
                "PhysicalProperties descriptor",
                _where(path, class_node),
                "engine",
            )


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def run() -> list[Finding]:
    findings: list[Finding] = []
    for path in _python_files(PHYSICAL_DIR):
        findings.extend(_check_physical_file(path))
        findings.extend(_check_operator_declarations(path))
    for path in _python_files(LAWS_DIR):
        findings.extend(_check_laws_file(path))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="AST-based engine-contract linter")
    parser.add_argument("--json", action="store_true", help="emit findings as JSON")
    args = parser.parse_args(argv)
    findings = run()
    errors = [f for f in findings if f.severity.value == "error"]
    if args.json:
        print(
            json.dumps(
                {"ok": not errors, "findings": [f.to_dict() for f in findings]}, indent=2
            )
        )
    else:
        for item in findings:
            print(item.render())
        print(f"lint_engine: {len(findings)} finding(s), {len(errors)} error(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
