"""Guard the division microbenchmarks against performance regressions.

Reruns ``benchmarks/test_bench_division_algorithms.py`` with
``--benchmark-json`` and compares each scenario's best (min) time against
the committed baseline (``BENCH_division.json``).  Because the baseline was
recorded on different hardware than CI runners, raw ratios are normalized
by the **median** ratio across all scenarios first — uniform speed
differences cancel out (and a few genuine speedups cannot skew the
normalizer), so only *relative* regressions of individual scenarios (one
algorithm suddenly slower than its peers) trip the gate.

Exit code 1 when any scenario regresses more than ``--threshold`` (default
25%) beyond the normalized baseline.

``--parallel N`` switches to the serial-vs-parallel comparison instead: it
runs ``benchmarks/test_bench_parallel_division.py`` (the ≥100k-tuple
scenarios) once with ``--workers N`` and compares the partitioned timings
against the serial baseline *from the same run* — same machine, same
process, so no cross-machine normalization and no jitter floor is needed
(the large scenarios run tens of milliseconds, far above scheduler noise).
The gate is deliberately conservative: ``workers=1`` partitioning must not
cost more than ~15% over serial, and on a ≥4-core machine ``workers=N``
must not be slower than serial at all (the 1.8× acceptance bound lives in
the benchmark file itself, where it can be skipped on small runners).

``--compiled`` switches to the interpreted-vs-compiled comparison: it runs
``benchmarks/test_bench_compiled.py`` once and gates the same-run ratios —
compiled fused pipelines must beat the interpreter by ≥2× on at least two
scenarios and pipeline breakers must not regress under compilation.  As
with ``--parallel``, both timings come from one process on one machine, so
no normalization or jitter floor is needed.

``--storage`` switches to the persistent-store comparison: it runs
``benchmarks/test_bench_storage.py`` once and gates the same-run ratios —
zone-map block skipping must beat the full stored scan by ≥5× on the
selective clustered scenario, and ``ANALYZE`` of a cold-opened store (a
metadata read) must beat the full statistics scan by ≥5×.

``--ivm`` switches to the view-maintenance comparison: it runs
``benchmarks/test_bench_ivm.py`` once and gates the same-run churn
timings — a delta-maintained quotient view under 1000 single-row edits
(read after every edit) must beat recompute-per-edit by ≥10×.  The two
arms time different edit counts (the recompute arm replays only a
prefix of the stream — full recomputes per edit take minutes), so the
comparison normalizes each timing by its arm's edit count first; the
counts are mirrored from the benchmark file and printed with the
ratios so the subsampling is never silent.

``--faults`` switches to the reliability-overhead comparison: it runs
``benchmarks/test_bench_faults.py`` once and gates the same-run ratios —
the checksummed v2 storage format (per-block CRC32 + header checksum) may
cost at most ~5% over the checksum-free legacy format on both the read
and the write path, with an absolute jitter floor so a microsecond of
scheduler noise cannot trip the gate.  The disarmed fault-point check
itself is a module-level ``None`` test; its query scenario is recorded
for drift tracking rather than gated against a pair.

Usage::

    python scripts/bench_compare.py [--baseline BENCH_division.json]
                                    [--threshold 0.25] [--json out.json]
    python scripts/bench_compare.py --parallel 2
    python scripts/bench_compare.py --compiled
    python scripts/bench_compare.py --storage
    python scripts/bench_compare.py --ivm
    python scripts/bench_compare.py --faults
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = "benchmarks/test_bench_division_algorithms.py"
PARALLEL_BENCH_FILE = "benchmarks/test_bench_parallel_division.py"
COMPILED_BENCH_FILE = "benchmarks/test_bench_compiled.py"
STORAGE_BENCH_FILE = "benchmarks/test_bench_storage.py"
IVM_BENCH_FILE = "benchmarks/test_bench_ivm.py"
FAULTS_BENCH_FILE = "benchmarks/test_bench_faults.py"

#: workers=1 partitioned execution may cost at most this much over serial.
PARALLEL_FALLBACK_OVERHEAD = 0.15
#: Compiled fused segments must beat the interpreter by this factor …
COMPILED_SPEEDUP_BOUND = 2.0
#: … on at least this many fused-pipeline scenarios.
COMPILED_SCENARIOS_REQUIRED = 2
#: Compilation may cost at most this much on pipeline-breaker scenarios.
COMPILED_BREAKER_OVERHEAD = 0.10
#: Zone-map block skipping must beat the full stored scan by this factor
#: on the selective clustered scenario.
STORAGE_SKIP_SPEEDUP_BOUND = 5.0
#: ANALYZE from save-time metadata must beat the full statistics scan by
#: this factor on a cold-opened store.
STORAGE_ANALYZE_SPEEDUP_BOUND = 5.0
#: A delta-maintained view under churn must beat recompute-per-edit by
#: this factor, per edit.
IVM_SPEEDUP_BOUND = 10.0
#: Edits per timed churn pass — mirrors MAINTAINED_EDITS / RECOMPUTE_EDITS
#: in benchmarks/test_bench_ivm.py.  The maintained arm replays the full
#: stream; the recompute arm only a prefix (a full recompute of the
#: ≥100k-tuple dividend per edit takes minutes), so timings are divided
#: by these counts before the gate is applied.
IVM_EDITS = {"maintained": 1000, "recompute": 20}
#: The checksummed (v2) storage format may cost at most this much over the
#: checksum-free legacy format, read path and write path alike.
FAULTS_OVERHEAD_BOUND = 0.05
#: Absolute jitter floor for the faults gate: an overhead below this many
#: seconds never fails, whatever the ratio says (the paired scenarios run
#: tens of milliseconds; scheduler noise is well under this).
FAULTS_FLOOR_SECONDS = 0.002


def load_times(payload: dict) -> dict[str, float]:
    """Benchmark name → best (min) time in seconds."""
    return {bench["name"]: bench["stats"]["min"] for bench in payload["benchmarks"]}


def compare(
    baseline: dict, current: dict, threshold: float, floor_seconds: float = 0.0005
) -> tuple[list[str], list[str]]:
    """Compare two benchmark payloads; returns (report lines, failures).

    Ratios are normalized by their **median** so a uniformly faster or
    slower machine never trips the gate — only scenarios that regressed
    *relative to the rest of the suite* by more than ``threshold`` do.  The
    median (unlike a geometric mean) is also robust against a few genuine
    large speedups: one scenario getting 10× faster must not flag the
    unchanged majority as regressions.  ``floor_seconds`` additionally
    shields sub-millisecond scenarios from scheduler jitter: a regression
    only counts when the absolute excess over the normalized expectation
    exceeds the floor.

    A scenario present in the current run but absent from the baseline is
    a hard failure listing the missing names: a silently-dropped scenario
    would run ungated forever, and the fix (``make bench-record``) is
    one command away.
    """
    old = load_times(baseline)
    new = load_times(current)
    missing = sorted(set(new) - set(old))
    if missing:
        lines = [
            f"FAIL: {len(missing)} scenario(s) in the current run have no committed "
            "baseline entry:",
            *(f"  - {name}" for name in missing),
            "Refresh the baseline with `make bench-record` (on a quiet machine) and "
            "commit the updated JSON so these scenarios are gated too.",
        ]
        return lines, [f"missing baseline entry for {name}" for name in missing]
    shared = sorted(set(old) & set(new))
    if not shared:
        return ["no overlapping benchmarks between baseline and current run"], ["no overlap"]
    ratios = {name: new[name] / old[name] for name in shared}
    machine_factor = statistics.median(ratios.values())
    lines = [
        f"{len(shared)} scenarios; machine-speed factor (median ratio) = {machine_factor:.2f}x",
        f"{'scenario':55s} {'old ms':>9s} {'new ms':>9s} {'rel':>7s}",
    ]
    failures: list[str] = []
    improvements = 0
    for name in shared:
        relative = ratios[name] / machine_factor
        excess = new[name] - old[name] * machine_factor
        marker = ""
        if relative > 1.0 + threshold and excess > floor_seconds:
            marker = "  << REGRESSION"
            failures.append(f"{name}: {relative:.2f}x relative to suite baseline")
        elif relative < 1.0 - threshold and -excess > floor_seconds:
            marker = "  (improved)"
            improvements += 1
        lines.append(
            f"{name:55s} {old[name] * 1000:9.3f} {new[name] * 1000:9.3f} {relative:6.2f}x{marker}"
        )
    if improvements:
        lines.append(
            f"note: {improvements} scenario(s) improved >{threshold:.0%}; consider refreshing "
            "the baseline with `make bench-record` so future comparisons stay sharp."
        )
    if machine_factor > 1.0 + threshold:
        # Normalization makes a uniform slowdown look clean by design (the
        # baseline machine differs from CI runners) — surface it so a
        # genuine suite-wide regression is not mistaken for slow hardware.
        lines.append(
            f"warning: the whole suite runs {machine_factor:.2f}x slower than the baseline. "
            "On the baseline machine this would be a suite-wide regression; on different "
            "hardware it is expected. Verify locally with `make bench-record` + re-compare."
        )
    return lines, failures


def compare_parallel(payload: dict, workers: int) -> tuple[list[str], list[str]]:
    """Compare serial vs partitioned timings from one benchmark run.

    Both timings come from the same process on the same machine, so the
    ratios are directly meaningful — no median normalization, and the
    scenarios are large enough (tens of milliseconds) that no jitter floor
    is needed either.
    """
    times = load_times(payload)
    serial_name = "test_serial_division"
    if serial_name not in times:
        return ["no serial baseline scenario in the benchmark run"], ["missing baseline"]
    serial = times[serial_name]
    lines = [f"serial hash division: {serial * 1000:9.3f} ms (best of run)"]
    failures: list[str] = []
    for name in sorted(times):
        if not name.startswith("test_partitioned_division["):
            continue
        count = int(name.split("[", 1)[1].rstrip("]"))
        ratio = times[name] / serial
        speedup = 1.0 / ratio if ratio else float("inf")
        lines.append(
            f"partitioned workers={count}: {times[name] * 1000:9.3f} ms "
            f"({speedup:.2f}x vs serial)"
        )
        if count == 1 and ratio > 1.0 + PARALLEL_FALLBACK_OVERHEAD:
            failures.append(
                f"workers=1 partitioned costs {ratio:.2f}x serial "
                f"(allowed {1.0 + PARALLEL_FALLBACK_OVERHEAD:.2f}x)"
            )
        elif count > 1 and (os.cpu_count() or 1) >= 4 and ratio > 1.0:
            failures.append(
                f"workers={count} partitioned is SLOWER than serial "
                f"({ratio:.2f}x) on a {os.cpu_count()}-core machine"
            )
    if (os.cpu_count() or 1) < 4:
        lines.append(
            f"note: only {os.cpu_count()} core(s) here — multi-worker timings are "
            "informational; the speedup gate needs >=4 cores."
        )
    if workers > 1 and not any(f"workers={workers}:" in line for line in lines):
        failures.append(f"no partitioned scenario ran with workers={workers}")
    return lines, failures


def _mode_pairs(times: dict[str, float], prefix: str) -> dict[str, dict[str, float]]:
    """``scenario → {mode → time}`` for ``prefix[scenario-mode]`` benchmarks."""
    pairs: dict[str, dict[str, float]] = {}
    for name, value in times.items():
        if not name.startswith(prefix + "["):
            continue
        scenario, _, mode = name.split("[", 1)[1].rstrip("]").rpartition("-")
        pairs.setdefault(scenario, {})[mode] = value
    return pairs


def compare_compiled(payload: dict) -> tuple[list[str], list[str]]:
    """Compare interpreted vs compiled timings from one benchmark run.

    Same process, same machine — ratios are directly meaningful (no
    normalization, no jitter floor; the scenarios run tens to hundreds of
    milliseconds).  Gates: compiled fused pipelines beat the interpreter by
    ≥2× on at least two scenarios and never regress anywhere; compilation
    costs at most ~10% on pipeline-breaker scenarios (in practice it only
    helps — a fused segment below the breaker gets faster too).  The
    python-vs-numpy kernel timings are reported when present; their 1.3×
    acceptance bound lives in the benchmark file, where it skips itself
    when numpy is not installed.
    """
    times = load_times(payload)
    fused = _mode_pairs(times, "test_fused_segment")
    breakers = _mode_pairs(times, "test_breaker_division")
    if not fused:
        return ["no fused-segment scenarios in the benchmark run"], ["missing scenarios"]
    lines: list[str] = []
    failures: list[str] = []
    fast = 0
    for scenario in sorted(fused):
        modes = fused[scenario]
        if "interpreted" not in modes or "compiled" not in modes:
            failures.append(f"fused scenario {scenario} is missing a mode")
            continue
        speedup = modes["interpreted"] / modes["compiled"]
        fast += speedup >= COMPILED_SPEEDUP_BOUND
        lines.append(
            f"fused {scenario}: interpreted {modes['interpreted'] * 1000:9.3f} ms, "
            f"compiled {modes['compiled'] * 1000:9.3f} ms ({speedup:.2f}x)"
        )
        if speedup < 1.0:
            failures.append(f"fused scenario {scenario} REGRESSED under compilation "
                            f"({speedup:.2f}x)")
    if fast < COMPILED_SCENARIOS_REQUIRED:
        failures.append(
            f"only {fast} fused scenario(s) reached {COMPILED_SPEEDUP_BOUND}x "
            f"(need {COMPILED_SCENARIOS_REQUIRED})"
        )
    for scenario in sorted(breakers):
        modes = breakers[scenario]
        if "interpreted" not in modes or "compiled" not in modes:
            failures.append(f"breaker scenario {scenario} is missing a mode")
            continue
        ratio = modes["compiled"] / modes["interpreted"]
        lines.append(
            f"breaker {scenario}: interpreted {modes['interpreted'] * 1000:9.3f} ms, "
            f"compiled {modes['compiled'] * 1000:9.3f} ms ({ratio:.2f}x)"
        )
        if ratio > 1.0 + COMPILED_BREAKER_OVERHEAD:
            failures.append(
                f"breaker scenario {scenario} costs {ratio:.2f}x under compilation "
                f"(allowed {1.0 + COMPILED_BREAKER_OVERHEAD:.2f}x)"
            )
    kernels = {
        name.split("[", 1)[1].rstrip("]"): value
        for name, value in times.items()
        if name.startswith("test_bitset_kernel_great_divide[")
    }
    if "python" in kernels and "numpy" in kernels:
        lines.append(
            f"bitset kernel (great divide): python {kernels['python'] * 1000:9.3f} ms, "
            f"numpy {kernels['numpy'] * 1000:9.3f} ms "
            f"({kernels['python'] / kernels['numpy']:.2f}x)"
        )
    return lines, failures


def compare_storage(payload: dict) -> tuple[list[str], list[str]]:
    """Compare stored-table timings from one storage benchmark run.

    Same process, same machine — ratios are directly meaningful.  Gates:
    the zone-map-skipping scan beats the full stored scan by
    ≥``STORAGE_SKIP_SPEEDUP_BOUND`` on the selective clustered scenario,
    and ``ANALYZE`` of a cold-opened store (save-time metadata) beats the
    full statistics scan by ≥``STORAGE_ANALYZE_SPEEDUP_BOUND``.
    """
    times = load_times(payload)
    scans = _mode_pairs(times, "test_selective_scan")
    analyzes = _mode_pairs(times, "test_cold_analyze")
    if not scans and not analyzes:
        return ["no storage scenarios in the benchmark run"], ["missing scenarios"]
    lines: list[str] = []
    failures: list[str] = []
    for scenario in sorted(scans):
        modes = scans[scenario]
        if "full" not in modes or "skipping" not in modes:
            failures.append(f"scan scenario {scenario} is missing a mode")
            continue
        speedup = modes["full"] / modes["skipping"]
        lines.append(
            f"scan {scenario}: full {modes['full'] * 1000:9.3f} ms, "
            f"skipping {modes['skipping'] * 1000:9.3f} ms ({speedup:.2f}x)"
        )
        if speedup < STORAGE_SKIP_SPEEDUP_BOUND:
            failures.append(
                f"scan scenario {scenario}: zone-map skipping is only {speedup:.2f}x "
                f"faster than the full scan (need {STORAGE_SKIP_SPEEDUP_BOUND}x)"
            )
    for scenario in sorted(analyzes):
        modes = analyzes[scenario]
        if "metadata" not in modes or "fullscan" not in modes:
            failures.append(f"analyze scenario {scenario} is missing a mode")
            continue
        speedup = modes["fullscan"] / modes["metadata"]
        lines.append(
            f"analyze {scenario}: full scan {modes['fullscan'] * 1000:9.3f} ms, "
            f"metadata {modes['metadata'] * 1000:9.3f} ms ({speedup:.2f}x)"
        )
        if speedup < STORAGE_ANALYZE_SPEEDUP_BOUND:
            failures.append(
                f"analyze scenario {scenario}: metadata ANALYZE is only {speedup:.2f}x "
                f"faster than the statistics scan (need {STORAGE_ANALYZE_SPEEDUP_BOUND}x)"
            )
    return lines, failures


def compare_ivm(payload: dict) -> tuple[list[str], list[str]]:
    """Compare maintained-view vs recompute churn timings from one run.

    Same process, same machine — but the two arms time **different edit
    counts** (see ``IVM_EDITS``), so each timing is normalized to
    milliseconds per edit before the ratio is taken.  Gate: the
    delta-maintained view beats recompute-per-edit by
    ≥``IVM_SPEEDUP_BOUND`` on every churn scenario.
    """
    times = load_times(payload)
    churn = _mode_pairs(times, "test_churn")
    if not churn:
        return ["no churn scenarios in the benchmark run"], ["missing scenarios"]
    lines: list[str] = []
    failures: list[str] = []
    for scenario in sorted(churn):
        modes = churn[scenario]
        if "maintained" not in modes or "recompute" not in modes:
            failures.append(f"churn scenario {scenario} is missing a mode")
            continue
        per_edit = {mode: modes[mode] / IVM_EDITS[mode] for mode in IVM_EDITS}
        speedup = per_edit["recompute"] / per_edit["maintained"]
        lines.append(
            f"churn {scenario}: maintained {per_edit['maintained'] * 1000:9.3f} ms/edit "
            f"({IVM_EDITS['maintained']} edits), recompute "
            f"{per_edit['recompute'] * 1000:9.3f} ms/edit "
            f"({IVM_EDITS['recompute']}-edit subsample) ({speedup:.2f}x)"
        )
        if speedup < IVM_SPEEDUP_BOUND:
            failures.append(
                f"churn scenario {scenario}: the maintained view is only "
                f"{speedup:.2f}x faster per edit than recompute "
                f"(need {IVM_SPEEDUP_BOUND}x)"
            )
    return lines, failures


def compare_faults(payload: dict) -> tuple[list[str], list[str]]:
    """Compare checksum-free vs checksummed storage timings from one run.

    Same process, same machine — the ``plain``/``guarded`` arms write and
    read the identical table, differing only in the v1 (no checksums) vs
    v2 (per-block CRC32 + header checksum) file format.  Gate: ``guarded``
    costs at most ``FAULTS_OVERHEAD_BOUND`` over ``plain`` on each paired
    scenario, with ``FAULTS_FLOOR_SECONDS`` shielding scheduler jitter.
    The unpaired query scenario is reported for drift tracking only.
    """
    times = load_times(payload)
    lines: list[str] = []
    failures: list[str] = []
    paired = 0
    for prefix, label in (
        ("test_stored_read", "read (full block decode)"),
        ("test_table_write", "write (full table save)"),
    ):
        plain = times.get(f"{prefix}[plain]")
        guarded = times.get(f"{prefix}[guarded]")
        if plain is None or guarded is None:
            failures.append(f"scenario {prefix} is missing an arm (plain/guarded)")
            continue
        paired += 1
        overhead = guarded / plain - 1.0
        lines.append(
            f"{label}: plain {plain * 1000:9.3f} ms, guarded {guarded * 1000:9.3f} ms "
            f"({overhead:+.1%} checksummed overhead)"
        )
        if overhead > FAULTS_OVERHEAD_BOUND and (guarded - plain) > FAULTS_FLOOR_SECONDS:
            failures.append(
                f"{label}: checksummed format costs {overhead:+.1%} over the legacy "
                f"format (allowed {FAULTS_OVERHEAD_BOUND:+.0%})"
            )
    if not paired:
        return ["no faults scenarios in the benchmark run"], ["missing scenarios"]
    disarmed = times.get("test_query_fault_points_disarmed")
    if disarmed is not None:
        lines.append(
            f"disarmed query path: {disarmed * 1000:9.3f} ms (informational — "
            "tracked for drift, no paired gate)"
        )
    return lines, failures


def run_benchmarks(json_path: Path, bench_file: str = BENCH_FILE, extra: list[str] | None = None) -> None:
    """Run one benchmark file, recording stats to ``json_path``."""
    environment = dict(os.environ)
    src = str(REPO_ROOT / "src")
    environment["PYTHONPATH"] = (
        src + os.pathsep + environment["PYTHONPATH"]
        if environment.get("PYTHONPATH")
        else src
    )
    subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            bench_file,
            "-q",
            f"--benchmark-json={json_path}",
            *(extra or []),
        ],
        cwd=REPO_ROOT,
        env=environment,
        check=True,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_division.json",
        help="committed baseline JSON (default: BENCH_division.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed relative regression per scenario (default: 0.25 = 25%%)",
    )
    parser.add_argument(
        "--floor-ms",
        type=float,
        default=0.5,
        help="absolute regression floor in milliseconds — jitter smaller than "
        "this never fails a scenario (default: 0.5)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="reuse an existing benchmark JSON instead of rerunning pytest",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="compare serial vs partitioned execution on the large division "
        "scenarios (runs the parallel benchmarks once with --workers N) "
        "instead of comparing against the committed baseline",
    )
    parser.add_argument(
        "--compiled",
        action="store_true",
        help="compare interpreted vs compiled execution on the fused-pipeline "
        "and pipeline-breaker scenarios (same-run timings from "
        f"{COMPILED_BENCH_FILE}) instead of comparing against the committed "
        "baseline",
    )
    parser.add_argument(
        "--storage",
        action="store_true",
        help="compare full-scan vs zone-map-skipping and fullscan-ANALYZE vs "
        f"metadata-ANALYZE on stored tables (same-run timings from "
        f"{STORAGE_BENCH_FILE}) instead of comparing against the committed "
        "baseline",
    )
    parser.add_argument(
        "--ivm",
        action="store_true",
        help="compare delta-maintained views vs recompute-per-edit on the "
        f"churn scenarios (same-run per-edit timings from {IVM_BENCH_FILE}) "
        "instead of comparing against the committed baseline",
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help="compare the checksum-free legacy storage format vs the "
        f"checksummed v2 format (same-run timings from {FAULTS_BENCH_FILE}) "
        "instead of comparing against the committed baseline",
    )
    args = parser.parse_args(argv)

    if args.faults:
        if args.json is not None:
            payload = json.loads(args.json.read_text())
        else:
            with tempfile.TemporaryDirectory() as tmp:
                json_path = Path(tmp) / "bench_faults.json"
                run_benchmarks(json_path, FAULTS_BENCH_FILE)
                payload = json.loads(json_path.read_text())
        lines, failures = compare_faults(payload)
        print("\n".join(lines))
        if failures:
            print(f"\nFAIL: {len(failures)} reliability-overhead check(s) failed:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(
            f"\nOK: checksummed storage within {FAULTS_OVERHEAD_BOUND:.0%} of the "
            "checksum-free format."
        )
        return 0

    if args.ivm:
        if args.json is not None:
            payload = json.loads(args.json.read_text())
        else:
            with tempfile.TemporaryDirectory() as tmp:
                json_path = Path(tmp) / "bench_ivm.json"
                run_benchmarks(json_path, IVM_BENCH_FILE)
                payload = json.loads(json_path.read_text())
        lines, failures = compare_ivm(payload)
        print("\n".join(lines))
        if failures:
            print(f"\nFAIL: {len(failures)} view-maintenance check(s) failed:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("\nOK: maintained views within bounds vs recompute-per-edit.")
        return 0

    if args.storage:
        if args.json is not None:
            payload = json.loads(args.json.read_text())
        else:
            with tempfile.TemporaryDirectory() as tmp:
                json_path = Path(tmp) / "bench_storage.json"
                run_benchmarks(json_path, STORAGE_BENCH_FILE)
                payload = json.loads(json_path.read_text())
        lines, failures = compare_storage(payload)
        print("\n".join(lines))
        if failures:
            print(f"\nFAIL: {len(failures)} storage check(s) failed:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("\nOK: stored tables within bounds (block skipping + metadata ANALYZE).")
        return 0

    if args.compiled:
        if args.json is not None:
            payload = json.loads(args.json.read_text())
        else:
            with tempfile.TemporaryDirectory() as tmp:
                json_path = Path(tmp) / "bench_compiled.json"
                run_benchmarks(json_path, COMPILED_BENCH_FILE)
                payload = json.loads(json_path.read_text())
        lines, failures = compare_compiled(payload)
        print("\n".join(lines))
        if failures:
            print(f"\nFAIL: {len(failures)} compilation check(s) failed:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("\nOK: compiled segments within bounds vs the interpreted path.")
        return 0

    if args.parallel is not None:
        if args.json is not None:
            payload = json.loads(args.json.read_text())
        else:
            with tempfile.TemporaryDirectory() as tmp:
                json_path = Path(tmp) / "bench_parallel.json"
                run_benchmarks(
                    json_path, PARALLEL_BENCH_FILE, extra=["--workers", str(args.parallel)]
                )
                payload = json.loads(json_path.read_text())
        lines, failures = compare_parallel(payload, args.parallel)
        print("\n".join(lines))
        if failures:
            print(f"\nFAIL: {len(failures)} parallel-execution check(s) failed:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("\nOK: partitioned execution within bounds vs the serial path.")
        return 0

    baseline = json.loads(args.baseline.read_text())
    baseline_cpus = baseline.get("machine_info", {}).get("cpu", {}).get("count")
    if baseline_cpus is not None and baseline_cpus != (os.cpu_count() or 1):
        # The median normalization absorbs uniform speed differences, but a
        # different core count can shift scenarios non-uniformly — surface
        # the mismatch so a stale baseline is not mistaken for a regression.
        print(
            f"warning: baseline {args.baseline.name} was recorded on "
            f"{baseline_cpus} CPU(s); this machine has {os.cpu_count() or 1}. "
            "Normalized ratios may shift non-uniformly — consider refreshing "
            "the baseline with `make bench-record` on this machine."
        )
    if args.json is not None:
        current = json.loads(args.json.read_text())
    else:
        with tempfile.TemporaryDirectory() as tmp:
            json_path = Path(tmp) / "bench_current.json"
            run_benchmarks(json_path)
            current = json.loads(json_path.read_text())

    lines, failures = compare(
        baseline, current, args.threshold, floor_seconds=args.floor_ms / 1000.0
    )
    print("\n".join(lines))
    if failures:
        print(f"\nFAIL: {len(failures)} scenario(s) regressed more than "
              f"{args.threshold:.0%} vs {args.baseline.name}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nOK: no scenario regressed more than {args.threshold:.0%}.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
