"""Guard the division microbenchmarks against performance regressions.

Reruns ``benchmarks/test_bench_division_algorithms.py`` with
``--benchmark-json`` and compares each scenario's best (min) time against
the committed baseline (``BENCH_division.json``).  Because the baseline was
recorded on different hardware than CI runners, raw ratios are normalized
by the **median** ratio across all scenarios first — uniform speed
differences cancel out (and a few genuine speedups cannot skew the
normalizer), so only *relative* regressions of individual scenarios (one
algorithm suddenly slower than its peers) trip the gate.

Exit code 1 when any scenario regresses more than ``--threshold`` (default
25%) beyond the normalized baseline.

``--parallel N`` switches to the serial-vs-parallel comparison instead: it
runs ``benchmarks/test_bench_parallel_division.py`` (the ≥100k-tuple
scenarios) once with ``--workers N`` and compares the partitioned timings
against the serial baseline *from the same run* — same machine, same
process, so no cross-machine normalization and no jitter floor is needed
(the large scenarios run tens of milliseconds, far above scheduler noise).
The gate is deliberately conservative: ``workers=1`` partitioning must not
cost more than ~15% over serial, and on a ≥4-core machine ``workers=N``
must not be slower than serial at all (the 1.8× acceptance bound lives in
the benchmark file itself, where it can be skipped on small runners).

Usage::

    python scripts/bench_compare.py [--baseline BENCH_division.json]
                                    [--threshold 0.25] [--json out.json]
    python scripts/bench_compare.py --parallel 2
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = "benchmarks/test_bench_division_algorithms.py"
PARALLEL_BENCH_FILE = "benchmarks/test_bench_parallel_division.py"

#: workers=1 partitioned execution may cost at most this much over serial.
PARALLEL_FALLBACK_OVERHEAD = 0.15


def load_times(payload: dict) -> dict[str, float]:
    """Benchmark name → best (min) time in seconds."""
    return {bench["name"]: bench["stats"]["min"] for bench in payload["benchmarks"]}


def compare(
    baseline: dict, current: dict, threshold: float, floor_seconds: float = 0.0005
) -> tuple[list[str], list[str]]:
    """Compare two benchmark payloads; returns (report lines, failures).

    Ratios are normalized by their **median** so a uniformly faster or
    slower machine never trips the gate — only scenarios that regressed
    *relative to the rest of the suite* by more than ``threshold`` do.  The
    median (unlike a geometric mean) is also robust against a few genuine
    large speedups: one scenario getting 10× faster must not flag the
    unchanged majority as regressions.  ``floor_seconds`` additionally
    shields sub-millisecond scenarios from scheduler jitter: a regression
    only counts when the absolute excess over the normalized expectation
    exceeds the floor.
    """
    old = load_times(baseline)
    new = load_times(current)
    shared = sorted(set(old) & set(new))
    if not shared:
        return ["no overlapping benchmarks between baseline and current run"], ["no overlap"]
    ratios = {name: new[name] / old[name] for name in shared}
    machine_factor = statistics.median(ratios.values())
    lines = [
        f"{len(shared)} scenarios; machine-speed factor (median ratio) = {machine_factor:.2f}x",
        f"{'scenario':55s} {'old ms':>9s} {'new ms':>9s} {'rel':>7s}",
    ]
    failures: list[str] = []
    improvements = 0
    for name in shared:
        relative = ratios[name] / machine_factor
        excess = new[name] - old[name] * machine_factor
        marker = ""
        if relative > 1.0 + threshold and excess > floor_seconds:
            marker = "  << REGRESSION"
            failures.append(f"{name}: {relative:.2f}x relative to suite baseline")
        elif relative < 1.0 - threshold and -excess > floor_seconds:
            marker = "  (improved)"
            improvements += 1
        lines.append(
            f"{name:55s} {old[name] * 1000:9.3f} {new[name] * 1000:9.3f} {relative:6.2f}x{marker}"
        )
    if improvements:
        lines.append(
            f"note: {improvements} scenario(s) improved >{threshold:.0%}; consider refreshing "
            "the baseline with `make bench-record` so future comparisons stay sharp."
        )
    if machine_factor > 1.0 + threshold:
        # Normalization makes a uniform slowdown look clean by design (the
        # baseline machine differs from CI runners) — surface it so a
        # genuine suite-wide regression is not mistaken for slow hardware.
        lines.append(
            f"warning: the whole suite runs {machine_factor:.2f}x slower than the baseline. "
            "On the baseline machine this would be a suite-wide regression; on different "
            "hardware it is expected. Verify locally with `make bench-record` + re-compare."
        )
    return lines, failures


def compare_parallel(payload: dict, workers: int) -> tuple[list[str], list[str]]:
    """Compare serial vs partitioned timings from one benchmark run.

    Both timings come from the same process on the same machine, so the
    ratios are directly meaningful — no median normalization, and the
    scenarios are large enough (tens of milliseconds) that no jitter floor
    is needed either.
    """
    times = load_times(payload)
    serial_name = "test_serial_division"
    if serial_name not in times:
        return ["no serial baseline scenario in the benchmark run"], ["missing baseline"]
    serial = times[serial_name]
    lines = [f"serial hash division: {serial * 1000:9.3f} ms (best of run)"]
    failures: list[str] = []
    for name in sorted(times):
        if not name.startswith("test_partitioned_division["):
            continue
        count = int(name.split("[", 1)[1].rstrip("]"))
        ratio = times[name] / serial
        speedup = 1.0 / ratio if ratio else float("inf")
        lines.append(
            f"partitioned workers={count}: {times[name] * 1000:9.3f} ms "
            f"({speedup:.2f}x vs serial)"
        )
        if count == 1 and ratio > 1.0 + PARALLEL_FALLBACK_OVERHEAD:
            failures.append(
                f"workers=1 partitioned costs {ratio:.2f}x serial "
                f"(allowed {1.0 + PARALLEL_FALLBACK_OVERHEAD:.2f}x)"
            )
        elif count > 1 and (os.cpu_count() or 1) >= 4 and ratio > 1.0:
            failures.append(
                f"workers={count} partitioned is SLOWER than serial "
                f"({ratio:.2f}x) on a {os.cpu_count()}-core machine"
            )
    if (os.cpu_count() or 1) < 4:
        lines.append(
            f"note: only {os.cpu_count()} core(s) here — multi-worker timings are "
            "informational; the speedup gate needs >=4 cores."
        )
    if workers > 1 and not any(f"workers={workers}:" in line for line in lines):
        failures.append(f"no partitioned scenario ran with workers={workers}")
    return lines, failures


def run_benchmarks(json_path: Path, bench_file: str = BENCH_FILE, extra: list[str] | None = None) -> None:
    """Run one benchmark file, recording stats to ``json_path``."""
    environment = dict(os.environ)
    src = str(REPO_ROOT / "src")
    environment["PYTHONPATH"] = (
        src + os.pathsep + environment["PYTHONPATH"]
        if environment.get("PYTHONPATH")
        else src
    )
    subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            bench_file,
            "-q",
            f"--benchmark-json={json_path}",
            *(extra or []),
        ],
        cwd=REPO_ROOT,
        env=environment,
        check=True,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_division.json",
        help="committed baseline JSON (default: BENCH_division.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed relative regression per scenario (default: 0.25 = 25%%)",
    )
    parser.add_argument(
        "--floor-ms",
        type=float,
        default=0.5,
        help="absolute regression floor in milliseconds — jitter smaller than "
        "this never fails a scenario (default: 0.5)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="reuse an existing benchmark JSON instead of rerunning pytest",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="compare serial vs partitioned execution on the large division "
        "scenarios (runs the parallel benchmarks once with --workers N) "
        "instead of comparing against the committed baseline",
    )
    args = parser.parse_args(argv)

    if args.parallel is not None:
        if args.json is not None:
            payload = json.loads(args.json.read_text())
        else:
            with tempfile.TemporaryDirectory() as tmp:
                json_path = Path(tmp) / "bench_parallel.json"
                run_benchmarks(
                    json_path, PARALLEL_BENCH_FILE, extra=["--workers", str(args.parallel)]
                )
                payload = json.loads(json_path.read_text())
        lines, failures = compare_parallel(payload, args.parallel)
        print("\n".join(lines))
        if failures:
            print(f"\nFAIL: {len(failures)} parallel-execution check(s) failed:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("\nOK: partitioned execution within bounds vs the serial path.")
        return 0

    baseline = json.loads(args.baseline.read_text())
    if args.json is not None:
        current = json.loads(args.json.read_text())
    else:
        with tempfile.TemporaryDirectory() as tmp:
            json_path = Path(tmp) / "bench_current.json"
            run_benchmarks(json_path)
            current = json.loads(json_path.read_text())

    lines, failures = compare(
        baseline, current, args.threshold, floor_seconds=args.floor_ms / 1000.0
    )
    print("\n".join(lines))
    if failures:
        print(f"\nFAIL: {len(failures)} scenario(s) regressed more than "
              f"{args.threshold:.0%} vs {args.baseline.name}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nOK: no scenario regressed more than {args.threshold:.0%}.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
