"""Benchmarks for the physical small-divide algorithms.

Reproduces the two quantitative arguments the paper leans on:

* Graefe's comparison of division algorithms — hash-division beats the
  nested-loops and sort-based variants, and all of them beat the
  basic-algebra simulation;
* Leinders & Van den Bussche's result — the algebra simulation produces a
  quadratic intermediate result while the special-purpose operators stay
  linear (measured via the operators' tuple counters).
"""

import pytest

from repro.division import small_divide
from repro.physical import SMALL_DIVIDE_ALGORITHMS, RelationScan, execute_plan


@pytest.mark.parametrize("algorithm", sorted(SMALL_DIVIDE_ALGORITHMS))
def test_small_divide_algorithm(benchmark, small_divide_workload, algorithm):
    """Graefe-style algorithm comparison on the same inputs."""
    dividend = small_divide_workload.dividend
    divisor = small_divide_workload.divisor
    operator_class = SMALL_DIVIDE_ALGORITHMS[algorithm]

    def run():
        operator = operator_class(RelationScan(dividend), RelationScan(divisor))
        return operator.execute()

    result = benchmark(run)
    assert len(result) == small_divide_workload.expected_quotient_size


def test_logical_reference_implementation(benchmark, small_divide_workload):
    """The logical (grouping-based) reference evaluation, for calibration."""
    result = benchmark(
        small_divide, small_divide_workload.dividend, small_divide_workload.divisor
    )
    assert len(result) == small_divide_workload.expected_quotient_size


@pytest.mark.parametrize("algorithm", ["hash", "algebra_simulation"])
def test_intermediate_result_size(benchmark, large_divide_workload, algorithm):
    """First-class operator vs algebra simulation: intermediate result sizes.

    The benchmark's return value checks the paper's complexity claim: the
    simulation's largest intermediate is |π_A(r1)| · |r2| tuples (quadratic
    in the input size), the hash-division never exceeds its input.
    """
    dividend = large_divide_workload.dividend
    divisor = large_divide_workload.divisor
    operator_class = SMALL_DIVIDE_ALGORITHMS[algorithm]

    def run():
        operator = operator_class(RelationScan(dividend), RelationScan(divisor))
        return execute_plan(operator)

    outcome = benchmark(run)
    assert len(outcome.relation) == large_divide_workload.expected_quotient_size
    candidates = len(dividend.project(["a"]))
    if algorithm == "algebra_simulation":
        assert outcome.max_intermediate >= candidates * len(divisor)
    else:
        assert outcome.max_intermediate <= len(dividend)
