"""Micro-benchmarks for the tuple-backed row representation.

The representation refactor replaced per-row dicts (hashed through
``frozenset(items())``) with interned-schema value tuples.  These benchmarks
track the three places that matters most:

* ``HashDivision`` at the largest existing workload size — the acceptance
  gate of the refactor (≥2× over the dict-backed seed implementation);
* raw row construction (``Row.from_schema`` fast path vs the mapping
  constructor);
* the columnar relation fast paths (projection and natural join).
"""

import pytest

from repro.physical import HashDivision, RelationScan, execute_plan
from repro.relation import Relation, Row, Schema


def test_hash_division_largest_size(benchmark, large_divide_workload):
    """Hash-division end to end on the largest existing benchmark workload."""
    dividend = large_divide_workload.dividend
    divisor = large_divide_workload.divisor

    def run():
        operator = HashDivision(RelationScan(dividend), RelationScan(divisor))
        return execute_plan(operator)

    outcome = benchmark(run)
    assert len(outcome.relation) == large_divide_workload.expected_quotient_size
    # First-class division never exceeds its input (paper's linearity claim).
    assert outcome.max_intermediate <= len(dividend)


def test_row_construction_from_schema(benchmark):
    """The fast path: interned schema + aligned value tuple, no dict."""
    schema = Schema.interned(("a", "b", "c"))
    values = [(i, i % 7, str(i % 13)) for i in range(2000)]

    def run():
        return [Row.from_schema(schema, v) for v in values]

    rows = benchmark(run)
    assert len(rows) == 2000


def test_row_construction_from_mapping(benchmark):
    """The compatibility path through the mapping constructor."""
    dicts = [{"a": i, "b": i % 7, "c": str(i % 13)} for i in range(2000)]

    def run():
        return [Row(d) for d in dicts]

    rows = benchmark(run)
    assert len(rows) == 2000
    assert rows[0] == Row.from_schema(Schema.interned(("a", "b", "c")), (0, 0, "0"))


@pytest.fixture(scope="module")
def wide_relation():
    return Relation(
        ("a", "b", "c", "d"),
        [(i % 50, i % 11, i % 7, str(i % 3)) for i in range(5000)],
    )


def test_columnar_projection(benchmark, wide_relation):
    result = benchmark(wide_relation.project, ["a", "c"])
    assert len(result) == len(wide_relation.to_tuples(["a", "c"]))


def test_columnar_natural_join(benchmark, wide_relation):
    right = Relation(("b", "e"), [(i % 11, i) for i in range(200)])
    result = benchmark(wide_relation.natural_join, right)
    assert result.schema.names == ("a", "b", "c", "d", "e")
    assert len(result) > 0
