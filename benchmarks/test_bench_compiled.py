"""Benchmarks for the compilation backend: fused segments + bitset kernels.

The acceptance contract of the compiler (PR 6):

* compiled fused pipelines (filter/project/rename chains) beat the
  interpreted generator stack by ≥2× on at least two scenarios, measured
  **same-run** (same machine, same process — no cross-machine
  normalization needed);
* pipeline breakers (division, joins, aggregation) never regress under
  compilation — a plan with nothing to fuse costs the same, a plan with a
  fused segment below the breaker only gets faster;
* the numpy bitset kernel measurably beats the reference python kernel on
  the subset-scan-heavy great-divide scenario (the largest division
  workload in the suite).

Wall-clock assertions use best-of-N timings and are skipped entirely under
``--benchmark-disable`` (CI smoke on shared runners); the result-equality
assertions always run.  ``scripts/bench_compare.py --compiled`` runs this
file once and applies the same gates to the recorded JSON.
"""

import time

import pytest

from repro.algebra import predicates as P
from repro.physical import (
    Filter,
    HashDivision,
    NestedLoopsGreatDivision,
    ProjectOp,
    RelationScan,
    RenameOp,
    compile_plan,
    execute_plan,
    numpy_available,
    use_kernel,
)
from repro.workloads import make_great_division_workload

#: Compiled fused segments must beat the interpreter by this factor …
FUSED_SPEEDUP_BOUND = 2.0
#: … on at least this many scenarios (the rest must still never regress).
FUSED_SCENARIOS_REQUIRED = 2
#: Compiling a plan must never cost more than this over the interpreter.
BREAKER_OVERHEAD_BOUND = 1.10
#: The numpy kernel must beat the python kernel by this factor on the
#: great-divide subset scans (measured ~4× locally; bound kept loose).
KERNEL_SPEEDUP_BOUND = 1.3
REPEATS = 5


def _predicate():
    """An inlinable AST predicate that keeps every dividend tuple flowing."""
    return P.conjunction(
        [P.greater_equal(P.attr("a"), 0), P.not_equals(P.attr("b"), -1)]
    )


#: Fused-pipeline scenarios over the ≥100k-tuple dividend (schema a, b).
FUSED_SCENARIOS = {
    "filter_chain": lambda w: Filter(
        Filter(RelationScan(w.dividend), _predicate()),
        P.not_equals(P.attr("a"), -7),
    ),
    "filter_project": lambda w: ProjectOp(
        Filter(RelationScan(w.dividend), _predicate()), ("a",)
    ),
    "rename_filter_project": lambda w: ProjectOp(
        RenameOp(Filter(RelationScan(w.dividend), _predicate()), {"a": "x"}),
        ("x",),
    ),
}

#: Pipeline-breaker scenarios: division with nothing to fuse, and division
#: fed by a fusable filter (compilation may only help the latter).
BREAKER_SCENARIOS = {
    "division_only": lambda w: HashDivision(
        RelationScan(w.dividend), RelationScan(w.divisor)
    ),
    "division_over_filter": lambda w: HashDivision(
        Filter(RelationScan(w.dividend), _predicate()), RelationScan(w.divisor)
    ),
}

MODES = ("interpreted", "compiled")


def _plan(factory, workload, compiled: bool):
    plan = factory(workload)
    if compiled:
        compile_plan(plan)
    return plan


def _best_time(plan_factory) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        plan = plan_factory()
        start = time.perf_counter()
        execute_plan(plan)
        best = min(best, time.perf_counter() - start)
    return best


def _timing_enabled(request) -> bool:
    """False under ``--benchmark-disable`` (CI smoke on shared runners)."""
    return not request.config.getoption("--benchmark-disable")


@pytest.fixture(scope="session")
def huge_great_divide_workload():
    """2500 dividend groups × 120 divisor groups → 300k subset scans."""
    return make_great_division_workload(
        dividend_groups=2500,
        dividend_group_size=14,
        divisor_groups=120,
        divisor_group_size=5,
        domain_size=60,
        seed=3,
    )


@pytest.mark.parametrize(
    "scenario,mode",
    [
        pytest.param(scenario, mode, id=f"{scenario}-{mode}")
        for scenario in sorted(FUSED_SCENARIOS)
        for mode in MODES
    ],
)
def test_fused_segment(benchmark, huge_divide_workload, scenario, mode):
    """Each fused scenario, interpreted and compiled (same names feed
    ``scripts/bench_compare.py --compiled``)."""
    factory = FUSED_SCENARIOS[scenario]
    compiled = mode == "compiled"
    result = benchmark(
        lambda: execute_plan(_plan(factory, huge_divide_workload, compiled))
    )
    reference = execute_plan(_plan(factory, huge_divide_workload, False))
    assert result.relation == reference.relation


@pytest.mark.parametrize(
    "scenario,mode",
    [
        pytest.param(scenario, mode, id=f"{scenario}-{mode}")
        for scenario in sorted(BREAKER_SCENARIOS)
        for mode in MODES
    ],
)
def test_breaker_division(benchmark, huge_divide_workload, scenario, mode):
    """Pipeline breakers under compilation (gate: compiled never slower)."""
    factory = BREAKER_SCENARIOS[scenario]
    compiled = mode == "compiled"
    result = benchmark(
        lambda: execute_plan(_plan(factory, huge_divide_workload, compiled))
    )
    assert len(result.relation) == huge_divide_workload.expected_quotient_size


@pytest.mark.parametrize(
    "kernel",
    [
        "python",
        pytest.param(
            "numpy",
            marks=pytest.mark.skipif(not numpy_available(), reason="numpy not installed"),
        ),
    ],
)
def test_bitset_kernel_great_divide(benchmark, huge_great_divide_workload, kernel):
    """The subset-scan-heavy great divide under each bitset kernel."""
    workload = huge_great_divide_workload

    def run():
        with use_kernel(kernel):
            return execute_plan(
                NestedLoopsGreatDivision(
                    RelationScan(workload.dividend), RelationScan(workload.divisor)
                )
            )

    result = benchmark(run)
    with use_kernel("python"):
        reference = execute_plan(
            NestedLoopsGreatDivision(
                RelationScan(workload.dividend), RelationScan(workload.divisor)
            )
        )
    assert result.relation == reference.relation


def test_fused_speedup_bound(request, huge_divide_workload):
    """Same-run gate: compiled beats interpreted ≥2× on ≥2 fused scenarios."""
    for factory in FUSED_SCENARIOS.values():
        compiled = execute_plan(_plan(factory, huge_divide_workload, True))
        interpreted = execute_plan(_plan(factory, huge_divide_workload, False))
        assert compiled.relation == interpreted.relation
    if not _timing_enabled(request):
        # --benchmark-disable (CI smoke): parity only.
        return
    speedups = {}
    for name, factory in sorted(FUSED_SCENARIOS.items()):
        interpreted_time = _best_time(lambda: _plan(factory, huge_divide_workload, False))
        compiled_time = _best_time(lambda: _plan(factory, huge_divide_workload, True))
        speedups[name] = interpreted_time / compiled_time
    report = ", ".join(f"{name} {speedup:.2f}x" for name, speedup in speedups.items())
    fast = [name for name, speedup in speedups.items() if speedup >= FUSED_SPEEDUP_BOUND]
    assert len(fast) >= FUSED_SCENARIOS_REQUIRED, (
        f"only {len(fast)} scenario(s) reached {FUSED_SPEEDUP_BOUND}x "
        f"(need {FUSED_SCENARIOS_REQUIRED}): {report}"
    )
    assert min(speedups.values()) >= 1.0, f"a compiled scenario regressed: {report}"


def test_compiled_never_regresses_pipeline_breakers(request, huge_divide_workload):
    """Same-run gate: compilation never slows a pipeline-breaker plan."""
    for factory in BREAKER_SCENARIOS.values():
        compiled = execute_plan(_plan(factory, huge_divide_workload, True))
        interpreted = execute_plan(_plan(factory, huge_divide_workload, False))
        assert compiled.relation == interpreted.relation
    if not _timing_enabled(request):
        return
    for name, factory in sorted(BREAKER_SCENARIOS.items()):
        interpreted_time = _best_time(lambda: _plan(factory, huge_divide_workload, False))
        compiled_time = _best_time(lambda: _plan(factory, huge_divide_workload, True))
        assert compiled_time <= interpreted_time * BREAKER_OVERHEAD_BOUND + 0.005, (
            f"{name}: compiled {compiled_time * 1000:.1f} ms vs "
            f"interpreted {interpreted_time * 1000:.1f} ms"
        )


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_numpy_kernel_speedup_on_great_divide(request, huge_great_divide_workload):
    """Same-run gate: the numpy kernel measurably beats the python kernel."""
    workload = huge_great_divide_workload

    def plan():
        return NestedLoopsGreatDivision(
            RelationScan(workload.dividend), RelationScan(workload.divisor)
        )

    with use_kernel("python"):
        reference = execute_plan(plan())
    with use_kernel("numpy"):
        vectorized = execute_plan(plan())
    assert vectorized.relation == reference.relation
    if not _timing_enabled(request):
        return
    with use_kernel("python"):
        python_time = _best_time(plan)
    with use_kernel("numpy"):
        numpy_time = _best_time(plan)
    speedup = python_time / numpy_time
    assert speedup >= KERNEL_SPEEDUP_BOUND, (
        f"numpy kernel {numpy_time * 1000:.1f} ms vs python "
        f"{python_time * 1000:.1f} ms — only {speedup:.2f}x "
        f"(need {KERNEL_SPEEDUP_BOUND}x)"
    )
