"""Benchmarks F1–F11: regenerate every figure of the paper.

Each benchmark rebuilds one figure from scratch (inputs, operator
evaluation, intermediates) and asserts that the computed result matches the
relation printed in the paper.  The timings document that the worked
examples are trivially cheap — the point of these benches is the exact
reproduction recorded in EXPERIMENTS.md.
"""

import pytest

from repro.experiments import figures as F

FIGURES = {
    "figure_1": F.figure_1,
    "figure_2": F.figure_2,
    "figure_3": F.figure_3,
    "figure_4": F.figure_4,
    "figure_5": F.figure_5,
    "figure_6": F.figure_6,
    "figure_7": F.figure_7,
    "figure_8": F.figure_8,
    "figure_9": F.figure_9,
    "figure_10": F.figure_10,
    "figure_11": F.figure_11,
}


@pytest.mark.parametrize("name", list(FIGURES))
def test_figure_reproduction(benchmark, name):
    builder = FIGURES[name]
    figure = benchmark(builder)
    assert figure.verify(), f"{figure.figure_id} does not match the paper"


def test_all_figures_via_harness(benchmark):
    figures = benchmark(F.all_figures)
    assert len(figures) == 11
    assert all(figure.verify() for figure in figures)
