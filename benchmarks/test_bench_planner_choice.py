"""Acceptance benchmarks for cost-based physical planning.

For every committed division-benchmark scenario (and a clustered variant),
``db.sql(...).explain()`` must report a *cost-chosen* division algorithm
whose measured runtime is within 1.5× of the best forced-algorithm runtime
on the same inputs, and ``explain(analyze=True)`` must report estimated and
actual cardinality (with q-error) for every plan node.

Timings use the best of several runs so the assertions stay stable on
noisy machines; a small absolute floor shields the sub-millisecond
scenarios from scheduler jitter, and the wall-clock bound is skipped
entirely under ``--benchmark-disable`` (the CI smoke job on shared
runners) — the algorithm-choice and explain assertions still run there.
"""

import time

import pytest

from repro.api import connect
from repro.optimizer import PhysicalPlanner, PlannerOptions
from repro.physical import SMALL_DIVIDE_ALGORITHMS
from repro.physical.executor import execute_plan
from repro.workloads import make_division_workload

DIVIDE_SQL = "SELECT a FROM r1 AS x DIVIDE BY r2 AS y ON x.b = y.b"

#: Acceptance bound: chosen runtime ≤ max(1.5 × best forced, best + floor).
RELATIVE_BOUND = 1.5
ABSOLUTE_FLOOR_SECONDS = 0.003
REPEATS = 5


def _scenarios():
    small = make_division_workload(
        num_groups=400, divisor_size=8, containing_fraction=0.25, extra_values_per_group=6, seed=1
    )
    large = make_division_workload(
        num_groups=1200, divisor_size=10, containing_fraction=0.2, extra_values_per_group=6, seed=2
    )
    return {
        "bench-small": (small.dividend, small.divisor),
        "bench-large": (large.dividend, large.divisor),
        "bench-small-clustered": (small.dividend.clustered(["a"]), small.divisor),
    }


SCENARIOS = _scenarios()


def _best_time(plan_factory) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        plan = plan_factory()
        start = time.perf_counter()
        execute_plan(plan)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_cost_chosen_algorithm_is_competitive(benchmark, scenario):
    """The chosen algorithm runs within 1.5× of the best forced algorithm."""
    dividend, divisor = SCENARIOS[scenario]
    db = connect({"r1": dividend, "r2": divisor})
    query = db.sql(DIVIDE_SQL)

    explain_text = query.explain()
    assert "cost-based" in explain_text
    assert "algorithm=" in explain_text

    result = query.run()
    chosen = result.decisions[0].chosen.name
    catalog = db.catalog
    chosen_planner = PhysicalPlanner(catalog)
    chosen_time = benchmark(lambda: _best_time(lambda: chosen_planner.plan(query.expression)))
    if not benchmark.enabled:
        # --benchmark-disable (the CI smoke job): the plan-choice and explain
        # assertions above already ran; skip the wall-clock bound — and the
        # forced-algorithm timing sweeps feeding it — which are only
        # meaningful on an otherwise idle machine.
        return

    def forced_factory(algorithm):
        planner = PhysicalPlanner(catalog, PlannerOptions(small_divide_algorithm=algorithm))
        return lambda: planner.plan(query.expression)

    timings = {
        algorithm: _best_time(forced_factory(algorithm))
        for algorithm in SMALL_DIVIDE_ALGORITHMS
        if algorithm != "nested_loops"  # 40× slower at this size; skip the wait
    }
    best_forced = min(timings.values())
    bound = max(RELATIVE_BOUND * best_forced, best_forced + ABSOLUTE_FLOOR_SECONDS)
    assert chosen_time <= bound, (
        f"{scenario}: cost-chosen {chosen!r} took {chosen_time * 1000:.3f} ms, "
        f"best forced {min(timings, key=timings.get)!r} took {best_forced * 1000:.3f} ms "
        f"(bound {bound * 1000:.3f} ms); forced timings: "
        + ", ".join(f"{name}={value * 1000:.3f}ms" for name, value in sorted(timings.items()))
    )


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_explain_analyze_reports_q_error_for_every_node(benchmark, scenario):
    dividend, divisor = SCENARIOS[scenario]
    db = connect({"r1": dividend, "r2": divisor})
    text = benchmark(lambda: db.sql(DIVIDE_SQL).explain(analyze=True))
    physical = text.split("Physical plan")[1]
    node_lines = [line for line in physical.splitlines() if "[" in line and "rows]" in line]
    assert node_lines
    for line in node_lines:
        assert "est~" in line and "actual=" in line and "q=" in line, line


def test_clustered_scenario_picks_streaming_merge_sort():
    dividend, divisor = SCENARIOS["bench-small-clustered"]
    db = connect({"r1": dividend, "r2": divisor})
    result = db.sql(DIVIDE_SQL).run()
    decision = result.decisions[0]
    assert decision.chosen.name == "merge_sort"
    assert decision.chosen.clustered
    assert "sort waived" in decision.describe()
