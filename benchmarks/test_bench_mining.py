"""Benchmarks for Section 3: frequent itemset discovery via the great divide.

Compares classic in-memory Apriori with the query-based miner whose support
counting is one great divide per level, plus an isolated comparison of the
support-counting phase itself across the physical great-divide algorithms.
"""

import pytest

from repro.mining import (
    apriori,
    count_support_by_great_divide,
    frequent_itemsets_by_great_divide,
    generate_baskets,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_baskets(
        num_transactions=250,
        num_items=40,
        num_patterns=4,
        pattern_size=3,
        noise_items_per_transaction=5,
        seed=17,
    )


@pytest.fixture(scope="module")
def min_support(dataset):
    return max(2, int(0.2 * dataset.num_transactions))


@pytest.fixture(scope="module")
def reference_result(dataset, min_support):
    return apriori(dataset.baskets, min_support)


class TestEndToEndMining:
    def test_apriori_baseline(self, benchmark, dataset, min_support, reference_result):
        result = benchmark(apriori, dataset.baskets, min_support)
        assert result == reference_result

    @pytest.mark.parametrize("algorithm", ["hash", "groupwise", "nested_loops"])
    def test_great_divide_miner(self, benchmark, dataset, min_support, reference_result, algorithm):
        result = benchmark(
            frequent_itemsets_by_great_divide, dataset.relation, min_support, None, algorithm
        )
        assert result == reference_result


class TestSupportCountingPhase:
    """The phase the paper expresses as ``transactions ÷* candidates``."""

    @pytest.fixture(scope="class")
    def candidates(self, dataset, min_support, reference_result):
        from repro.mining import candidate_generation

        frequent_pairs = [itemset for itemset in reference_result if len(itemset) == 2]
        generated = candidate_generation(frequent_pairs, 3)
        return generated or list(dataset.patterns)

    @pytest.mark.parametrize("algorithm", [None, "hash", "groupwise"])
    def test_support_counting(self, benchmark, dataset, candidates, algorithm):
        supports = benchmark(count_support_by_great_divide, dataset.relation, candidates, algorithm)
        brute_force = {
            candidate: sum(1 for items in dataset.baskets.values() if candidate <= items)
            for candidate in candidates
        }
        assert supports == brute_force
