"""Shared workloads for the benchmark suite.

Sizes are chosen so the full suite runs in a few minutes on a laptop while
still showing the asymptotic effects the paper appeals to (quadratic
intermediate results, partitioning benefits, join-elimination savings).
"""

from __future__ import annotations

import os

import pytest

from repro.algebra.catalog import Catalog
from repro.workloads import (
    generate_catalog,
    make_division_workload,
    make_great_division_workload,
)


def pytest_addoption(parser):
    parser.addoption(
        "--workers",
        action="store",
        type=int,
        default=None,
        metavar="N",
        help="run the partition-parallel benchmarks with exactly N workers "
        "(default: 1, 2 and — on machines with ≥4 cores — 4)",
    )


def worker_counts(config) -> list[int]:
    """Worker counts the parallel benchmarks are parametrized over."""
    override = config.getoption("--workers")
    if override:
        return sorted({1, override})
    counts = [1, 2]
    if (os.cpu_count() or 1) >= 4:
        counts.append(4)
    return counts


def pytest_generate_tests(metafunc):
    if "exchange_workers" in metafunc.fixturenames:
        metafunc.parametrize("exchange_workers", worker_counts(metafunc.config))


@pytest.fixture(scope="session")
def small_divide_workload():
    """A medium small-divide workload: 400 groups, divisor of 8 values."""
    return make_division_workload(
        num_groups=400, divisor_size=8, containing_fraction=0.25, extra_values_per_group=6, seed=1
    )


@pytest.fixture(scope="session")
def large_divide_workload():
    """A larger workload used by the quadratic-intermediate benchmark."""
    return make_division_workload(
        num_groups=1200, divisor_size=10, containing_fraction=0.2, extra_values_per_group=6, seed=2
    )


@pytest.fixture(scope="session")
def huge_divide_workload():
    """A ≥100k-tuple dividend for the partition-parallel benchmarks."""
    workload = make_division_workload(
        num_groups=9000, divisor_size=10, containing_fraction=0.2, extra_values_per_group=6, seed=5
    )
    assert len(workload.dividend) >= 100_000
    return workload


@pytest.fixture(scope="session")
def great_divide_workload():
    """A great-divide workload: 200 dividend groups × 20 divisor groups."""
    return make_great_division_workload(
        dividend_groups=200,
        dividend_group_size=14,
        divisor_groups=20,
        divisor_group_size=5,
        domain_size=60,
        seed=3,
    )


@pytest.fixture(scope="session")
def division_catalog(small_divide_workload):
    """Catalog holding the small-divide workload under the names r1/r2."""
    catalog = Catalog()
    catalog.add_table("r1", small_divide_workload.dividend)
    catalog.add_table("r2", small_divide_workload.divisor)
    return catalog


@pytest.fixture(scope="session")
def suppliers_catalog():
    """A generated suppliers-and-parts database for the SQL benchmarks."""
    return generate_catalog(num_suppliers=120, num_parts=60, parts_per_supplier=18, seed=4)
