"""Shared workloads for the benchmark suite.

Sizes are chosen so the full suite runs in a few minutes on a laptop while
still showing the asymptotic effects the paper appeals to (quadratic
intermediate results, partitioning benefits, join-elimination savings).
"""

from __future__ import annotations

import pytest

from repro.algebra.catalog import Catalog
from repro.workloads import (
    generate_catalog,
    make_division_workload,
    make_great_division_workload,
)


@pytest.fixture(scope="session")
def small_divide_workload():
    """A medium small-divide workload: 400 groups, divisor of 8 values."""
    return make_division_workload(
        num_groups=400, divisor_size=8, containing_fraction=0.25, extra_values_per_group=6, seed=1
    )


@pytest.fixture(scope="session")
def large_divide_workload():
    """A larger workload used by the quadratic-intermediate benchmark."""
    return make_division_workload(
        num_groups=1200, divisor_size=10, containing_fraction=0.2, extra_values_per_group=6, seed=2
    )


@pytest.fixture(scope="session")
def great_divide_workload():
    """A great-divide workload: 200 dividend groups × 20 divisor groups."""
    return make_great_division_workload(
        dividend_groups=200,
        dividend_group_size=14,
        divisor_groups=20,
        divisor_group_size=5,
        domain_size=60,
        seed=3,
    )


@pytest.fixture(scope="session")
def division_catalog(small_divide_workload):
    """Catalog holding the small-divide workload under the names r1/r2."""
    catalog = Catalog()
    catalog.add_table("r1", small_divide_workload.dividend)
    catalog.add_table("r2", small_divide_workload.divisor)
    return catalog


@pytest.fixture(scope="session")
def suppliers_catalog():
    """A generated suppliers-and-parts database for the SQL benchmarks."""
    return generate_catalog(num_suppliers=120, num_parts=60, parts_per_supplier=18, seed=4)
