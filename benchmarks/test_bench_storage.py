"""Benchmarks for the persistent columnar store (zone maps + metadata).

The acceptance contract of the storage subsystem:

* a **selective scan over a clustered stored table** with a zone-map skip
  predicate beats the full stored scan by ≥5×, measured same-run (the
  zone maps prove most blocks cannot match, so they are never decoded);
* ``ANALYZE`` on a **cold-opened store** is a metadata read — save-time
  statistics from the table-file header — and beats a full statistics
  scan (decode every block + columnar pass) by ≥5×;
* ``explain(analyze=True)`` reports the skipped block count.

Wall-clock assertions use best-of-N timings and are skipped entirely
under ``--benchmark-disable`` (CI smoke on shared runners); the
result-equality assertions always run.  ``scripts/bench_compare.py
--storage`` runs this file once and applies the same gates to the
recorded JSON.
"""

import time

import pytest

import repro
from repro.algebra import predicates as P
from repro.algebra.catalog import Catalog
from repro.optimizer.statistics import TableStatistics
from repro.physical import Filter, execute_plan
from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.storage.scan import StoredScan

#: Zone-map skipping must beat the full stored scan by this factor.
SKIP_SPEEDUP_BOUND = 5.0
#: Metadata ANALYZE must beat the full statistics scan by this factor.
ANALYZE_SPEEDUP_BOUND = 5.0
REPEATS = 5

#: Stored-table shape: clustered on ``k`` so the zone maps partition the
#: key range cleanly across blocks.
ROWS = 160_000
BLOCK_SIZE = 2048
#: The selective predicate keeps one block's worth of keys.
SELECTIVE_HIGH = BLOCK_SIZE

SCAN_MODES = ("full", "skipping")
ANALYZE_MODES = ("fullscan", "metadata")


def _table_rows():
    return [(i, i % 97, f"s{i % 13}") for i in range(ROWS)]


@pytest.fixture(scope="session")
def store_path(tmp_path_factory):
    """A saved store with one big clustered table (``k`` ascending)."""
    schema = Schema.interned(("k", "g", "s"))
    relation = Relation.from_aligned(schema, _table_rows()).clustered(["k"])
    catalog = Catalog()
    catalog.add_table("big", relation, key=["k"])
    path = tmp_path_factory.mktemp("store") / "bench-db"
    repro.connect(catalog).save(path, block_size=BLOCK_SIZE)
    return str(path)


def _selective_predicate():
    return P.less_than(P.attr("k"), SELECTIVE_HIGH)


def _scan_plan(path: str, skipping: bool):
    """Filter over a cold StoredScan; ``skipping`` arms the zone maps."""
    stored = repro.connect(path).catalog["big"]
    scan = StoredScan(stored, "big")
    if skipping:
        scan.set_skip_predicate(_selective_predicate())
    return Filter(scan, _selective_predicate())


def _metadata_analyze(path: str):
    """Cold open + ANALYZE: reads save-time statistics, decodes no block."""
    return repro.connect(path).analyze()


def _fullscan_statistics(path: str):
    """Cold open + full statistics pass: decode every block, then scan.

    ``clustered(["k"])`` restores the stored scan order (``from_aligned``
    rebuilds it from a row set) so the sortedness figures are comparable.
    """
    stored = repro.connect(path).catalog["big"]
    relation = Relation.from_aligned(stored.schema, stored.aligned_tuples()).clustered(["k"])
    return TableStatistics.from_relation(relation)


def _best_time(thunk) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - start)
    return best


def _timing_enabled(request) -> bool:
    """False under ``--benchmark-disable`` (CI smoke on shared runners)."""
    return not request.config.getoption("--benchmark-disable")


@pytest.mark.parametrize(
    "mode", [pytest.param(mode, id=f"selective-{mode}") for mode in SCAN_MODES]
)
def test_selective_scan(benchmark, store_path, mode):
    """Selective filter over the stored table, with and without zone maps
    (same names feed ``scripts/bench_compare.py --storage``)."""
    skipping = mode == "skipping"
    result = benchmark(lambda: execute_plan(_scan_plan(store_path, skipping)))
    reference = execute_plan(_scan_plan(store_path, not skipping))
    assert result.relation == reference.relation
    assert len(result.relation) == SELECTIVE_HIGH


@pytest.mark.parametrize(
    "mode", [pytest.param(mode, id=f"cold-{mode}") for mode in ANALYZE_MODES]
)
def test_cold_analyze(benchmark, store_path, mode):
    """ANALYZE of a cold-opened store: metadata read vs full scan."""
    if mode == "metadata":
        report = benchmark(lambda: _metadata_analyze(store_path))
        statistics = report.tables["big"]
    else:
        statistics = benchmark(lambda: _fullscan_statistics(store_path))
    assert statistics.cardinality == ROWS
    assert statistics.minimum("k") == 0
    assert statistics.maximum("k") == ROWS - 1
    assert statistics.is_sorted("k")


def test_block_skipping_speedup_bound(request, store_path):
    """Same-run gate: zone-map skipping beats the full scan ≥5×, and the
    skipped block count shows up in ``explain(analyze=True)``."""
    full = execute_plan(_scan_plan(store_path, False))
    skipping = execute_plan(_scan_plan(store_path, True))
    assert full.relation == skipping.relation

    db = repro.connect(store_path, cost_based=True)
    text = db.sql(f"SELECT k, g FROM big WHERE k < {SELECTIVE_HIGH}").explain(analyze=True)
    assert "skipped=" in text, text
    skipped = int(text.split("skipped=", 1)[1].split()[0].rstrip(","))
    assert skipped > 0, text

    if not _timing_enabled(request):
        # --benchmark-disable (CI smoke): parity + explain markers only.
        return
    full_time = _best_time(lambda: execute_plan(_scan_plan(store_path, False)))
    skip_time = _best_time(lambda: execute_plan(_scan_plan(store_path, True)))
    speedup = full_time / skip_time
    assert speedup >= SKIP_SPEEDUP_BOUND, (
        f"zone-map skipping {skip_time * 1000:.1f} ms vs full scan "
        f"{full_time * 1000:.1f} ms — only {speedup:.2f}x "
        f"(need {SKIP_SPEEDUP_BOUND}x)"
    )


def test_metadata_analyze_speedup_bound(request, store_path):
    """Same-run gate: metadata ANALYZE beats the full statistics scan ≥5×
    and reports the same figures."""
    via_metadata = _metadata_analyze(store_path).tables["big"]
    via_fullscan = _fullscan_statistics(store_path)
    assert via_metadata.cardinality == via_fullscan.cardinality
    assert dict(via_metadata.distinct_values) == dict(via_fullscan.distinct_values)
    assert dict(via_metadata.minima) == dict(via_fullscan.minima)
    assert dict(via_metadata.maxima) == dict(via_fullscan.maxima)
    assert via_metadata.sorted_attributes == via_fullscan.sorted_attributes
    assert via_metadata.lexicographic_prefix == via_fullscan.lexicographic_prefix

    if not _timing_enabled(request):
        return
    metadata_time = _best_time(lambda: _metadata_analyze(store_path))
    fullscan_time = _best_time(lambda: _fullscan_statistics(store_path))
    speedup = fullscan_time / metadata_time
    assert speedup >= ANALYZE_SPEEDUP_BOUND, (
        f"metadata ANALYZE {metadata_time * 1000:.1f} ms vs full scan "
        f"{fullscan_time * 1000:.1f} ms — only {speedup:.2f}x "
        f"(need {ANALYZE_SPEEDUP_BOUND}x)"
    )
