"""Benchmarks for the fault-tolerance machinery's no-fault overhead.

The reliability layer must be close to free when nothing fails: per-block
CRC32 checksums on the storage read path, checksummed writes on the save
path, and the fault-point consultations sprinkled through pool/storage/
spill code (a single module-level ``None`` check with no plan armed).

Each scenario times a **same-run pair**: the ``plain`` arm uses the
checksum-free legacy v1 file format (and, for the query scenario, the same
engine with no plan armed — the fault points are always compiled in, which
is exactly the overhead being measured), the ``guarded`` arm the default
checksummed v2 format.  ``scripts/bench_compare.py --faults`` runs this
file once and gates ``guarded / plain`` at ≤5% overhead
(:data:`FAULTS_OVERHEAD_BOUND` there), with an absolute jitter floor so
micro-scenarios cannot trip the gate on scheduler noise.
"""

import pytest

from repro.faults import active_plan
from repro.physical import SMALL_DIVIDE_ALGORITHMS, RelationScan, execute_plan
from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.storage.format import TableReader, write_table_file

ROWS = 120_000
BLOCK_SIZE = 2048

MODES = ("plain", "guarded")

ATTRIBUTES = ("k", "g", "s")


def _table_rows():
    return [(i, i % 97, f"s{i % 13}") for i in range(ROWS)]


@pytest.fixture(scope="module")
def table_files(tmp_path_factory):
    """The same table written twice: legacy v1 (plain) and v2 (guarded)."""
    directory = tmp_path_factory.mktemp("fault-bench")
    rows = _table_rows()
    paths = {}
    for mode in MODES:
        path = directory / f"table-{mode}.rpb"
        write_table_file(
            path,
            "big",
            ATTRIBUTES,
            rows,
            block_size=BLOCK_SIZE,
            checksums=(mode == "guarded"),
        )
        paths[mode] = path
    return paths


def _decode_all(path):
    reader = TableReader(path)
    total = 0
    for _meta, block in reader.iter_blocks():
        total += len(block)
    return total


@pytest.mark.parametrize("mode", MODES)
def test_stored_read(benchmark, table_files, mode):
    """Full decode of every block: v2 pays one CRC32 per block payload."""
    assert active_plan() is None  # measuring the disarmed fast path
    total = benchmark(_decode_all, table_files[mode])
    assert total == ROWS


@pytest.mark.parametrize("mode", MODES)
def test_table_write(benchmark, tmp_path, mode):
    """Full table save: v2 pays CRC32 per block + header checksum + fsync
    discipline (both arms fsync, so the delta is the checksums)."""
    rows = _table_rows()
    counter = iter(range(1_000_000))

    def save():
        path = tmp_path / f"write-{mode}-{next(counter)}.rpb"
        write_table_file(
            path, "big", ATTRIBUTES, rows, block_size=BLOCK_SIZE,
            checksums=(mode == "guarded"),
        )
        return path

    benchmark(save)


def test_query_fault_points_disarmed(benchmark):
    """A serial division with no plan armed: every fault-point check on the
    execution path must amount to a module-load + ``None`` test.  There is
    no pairless gate for this scenario — it is recorded so the committed
    baseline tracks drift in the disarmed path itself."""
    assert active_plan() is None
    dividend = Relation(
        ("a", "b"), [(a, b) for a in range(2_000) for b in ((1, 2, 3) if a % 2 else (1, 3))]
    )
    divisor = Relation(("b",), [(1,), (2,), (3,)])

    def run():
        plan = SMALL_DIVIDE_ALGORITHMS["hash"](RelationScan(dividend), RelationScan(divisor))
        return len(execute_plan(plan).relation)

    assert benchmark(run) == 1_000
