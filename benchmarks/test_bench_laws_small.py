"""Benchmarks L1–L12 / E1–E3: the small-divide laws as execution strategies.

For every law the paper attaches an (informal) efficiency argument; each
benchmark here executes both sides of the equivalence on a synthetic
workload through the physical engine and measures them, so the paper-vs-
measured comparison in EXPERIMENTS.md can state whether the claimed winner
actually wins on this substrate.  Every benchmark also asserts that both
sides return identical relations.
"""

import pytest

from repro.algebra import builders as B
from repro.algebra import predicates as P
from repro.laws.small_divide import (
    Example1DividendRestriction,
    Example2CommonFactorCancellation,
    Example3JoinElimination,
    Law1DivisorUnionSplit,
    Law2DividendUnionSplit,
    Law3SelectionPushdown,
    Law4ReplicateSelection,
    Law5IntersectionPushdown,
    Law6DifferencePushdown,
    Law7DisjointDifferenceElimination,
    Law8ProductFactorOut,
    Law9ProductElimination,
    Law10SemiJoinCommute,
    law11_divide,
    law12_divide,
)
from repro.division import small_divide
from repro.physical import RelationScan, SMALL_DIVIDE_ALGORITHMS
from repro.optimizer import PhysicalPlanner
from repro.relation import Relation, aggregates
from repro.workloads import make_divisor, split_dividend_by_quotient, split_horizontal


def _execute(expression, catalog=None):
    planner = PhysicalPlanner(catalog or {})
    return planner.plan(expression).execute()


def _lit(relation, label="r"):
    return B.literal(relation, label=label)


@pytest.fixture(scope="module")
def workload(small_divide_workload):
    return small_divide_workload


# ----------------------------------------------------------------------
# Law 1 — divisor union split (pipelined two-stage division)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", ["original", "rewritten"])
def test_law01_divisor_union_split(benchmark, workload, side):
    part_a, part_b = split_horizontal(workload.divisor, fraction=0.5, seed=9)
    lhs, rhs = Law1DivisorUnionSplit.sides(_lit(workload.dividend), _lit(part_a), _lit(part_b))
    expression = lhs if side == "original" else rhs
    result = benchmark(_execute, expression)
    assert result == small_divide(workload.dividend, workload.divisor)


# ----------------------------------------------------------------------
# Law 2 — dividend partitioning (degree-2 parallel scan simulation)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", ["original", "rewritten"])
def test_law02_dividend_union_split(benchmark, workload, side):
    low, high = split_dividend_by_quotient(workload.dividend, "a")
    lhs, rhs = Law2DividendUnionSplit.sides(_lit(low), _lit(high), _lit(workload.divisor))
    expression = lhs if side == "original" else rhs
    result = benchmark(_execute, expression)
    assert result == small_divide(workload.dividend, workload.divisor)


# ----------------------------------------------------------------------
# Law 3 — selection push-down
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", ["original", "rewritten"])
def test_law03_selection_pushdown(benchmark, workload, side):
    predicate = P.less_than(P.attr("a"), 40)
    lhs, rhs = Law3SelectionPushdown.sides(_lit(workload.dividend), _lit(workload.divisor), predicate)
    expression = lhs if side == "original" else rhs
    result = benchmark(_execute, expression)
    assert result == small_divide(workload.dividend, workload.divisor).select(predicate)


# ----------------------------------------------------------------------
# Law 4 — replicate a divisor selection onto the dividend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", ["original", "rewritten"])
def test_law04_replicate_selection(benchmark, workload, side):
    predicate = P.less_than(P.attr("b"), 5)
    lhs, rhs = Law4ReplicateSelection.sides(_lit(workload.dividend), _lit(workload.divisor), predicate)
    expression = lhs if side == "original" else rhs
    result = benchmark(_execute, expression)
    assert result == small_divide(workload.dividend, workload.divisor.select(predicate))


# ----------------------------------------------------------------------
# Example 1 — dividend restriction on B (empty-result short-circuit)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", ["original", "rewritten"])
def test_example1_dividend_restriction(benchmark, workload, side):
    predicate = P.less_than(P.attr("b"), 5)
    lhs, rhs = Example1DividendRestriction.sides(
        _lit(workload.dividend), _lit(workload.divisor), predicate
    )
    expression = lhs if side == "original" else rhs
    result = benchmark(_execute, expression)
    assert result == small_divide(workload.dividend.select(predicate), workload.divisor)


# ----------------------------------------------------------------------
# Law 5 — intersection push-down
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", ["original", "rewritten"])
def test_law05_intersection_pushdown(benchmark, workload, side):
    other = workload.dividend.select(lambda row: row["a"] % 3 != 0)
    lhs, rhs = Law5IntersectionPushdown.sides(
        _lit(workload.dividend), _lit(other), _lit(workload.divisor)
    )
    expression = lhs if side == "original" else rhs
    result = benchmark(_execute, expression)
    assert result == small_divide(workload.dividend.intersection(other), workload.divisor)


# ----------------------------------------------------------------------
# Law 6 — difference of A-restrictions
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", ["original", "rewritten"])
def test_law06_difference_pushdown(benchmark, workload, side):
    outer = P.less_than(P.attr("a"), 300)
    inner = P.And(P.less_than(P.attr("a"), 300), P.greater_equal(P.attr("a"), 100))
    lhs, rhs = Law6DifferencePushdown.sides(
        _lit(workload.dividend), outer, inner, _lit(workload.divisor)
    )
    expression = lhs if side == "original" else rhs
    result = benchmark(_execute, expression)
    expected = small_divide(
        workload.dividend.select(outer).difference(workload.dividend.select(inner)),
        workload.divisor,
    )
    assert result == expected


# ----------------------------------------------------------------------
# Law 7 — the short-circuit: skip the second division entirely
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", ["original", "rewritten"])
def test_law07_disjoint_difference_elimination(benchmark, workload, side):
    low, high = split_dividend_by_quotient(workload.dividend, "a")
    lhs, rhs = Law7DisjointDifferenceElimination.sides(_lit(low), _lit(high), _lit(workload.divisor))
    expression = lhs if side == "original" else rhs
    result = benchmark(_execute, expression)
    assert result == small_divide(low, workload.divisor)


# ----------------------------------------------------------------------
# Law 8 — factor a product out of the divide
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", ["original", "rewritten"])
def test_law08_product_factor_out(benchmark, workload, side):
    factor = Relation(["k"], [(value,) for value in range(12)])
    lhs, rhs = Law8ProductFactorOut.sides(_lit(factor), _lit(workload.dividend), _lit(workload.divisor))
    expression = lhs if side == "original" else rhs
    result = benchmark(_execute, expression)
    assert len(result) == 12 * workload.expected_quotient_size


# ----------------------------------------------------------------------
# Law 9 — drop a factor that only carries divisor attributes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", ["original", "rewritten"])
def test_law09_product_elimination(benchmark, workload, side):
    drop = Relation(["b2"], [(value,) for value in range(6)])
    divisor = Relation(
        ["b", "b2"],
        [(row["b"], index % 6) for index, row in enumerate(workload.divisor.sorted_rows())],
    )
    keep = workload.dividend
    lhs, rhs = Law9ProductElimination.sides(_lit(keep), _lit(drop), _lit(divisor))
    expression = lhs if side == "original" else rhs
    result = benchmark(_execute, expression)
    assert result == small_divide(keep, divisor.project(["b"]))


# ----------------------------------------------------------------------
# Example 2 — cancel a shared product factor
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", ["original", "rewritten"])
def test_example2_common_factor(benchmark, workload, side):
    shared = Relation(["s"], [(value,) for value in range(8)])
    lhs, rhs = Example2CommonFactorCancellation.sides(
        _lit(workload.dividend), _lit(workload.divisor), _lit(shared)
    )
    expression = lhs if side == "original" else rhs
    result = benchmark(_execute, expression)
    assert result == small_divide(workload.dividend, workload.divisor)


# ----------------------------------------------------------------------
# Law 10 — semi-join commutation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", ["original", "rewritten"])
def test_law10_semijoin_commute(benchmark, workload, side):
    filter_relation = Relation(["a"], [(value,) for value in range(25)])
    lhs, rhs = Law10SemiJoinCommute.sides(
        _lit(workload.dividend), _lit(workload.divisor), _lit(filter_relation)
    )
    expression = lhs if side == "original" else rhs
    result = benchmark(_execute, expression)
    assert result == small_divide(workload.dividend, workload.divisor).semijoin(filter_relation)


# ----------------------------------------------------------------------
# Example 3 — join elimination (Figure 9 at workload scale)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", ["original", "rewritten"])
def test_example3_join_elimination(benchmark, side):
    keep = Relation(
        ["a", "b1"],
        [(group, value) for group in range(150) for value in range(group % 7 + 1)],
    )
    drop = Relation(["b2"], [(value,) for value in range(3, 9)])
    divisor = Relation(["b1", "b2"], [(value, value + 3) for value in range(5)])
    predicate = P.less_than(P.attr("b1"), P.attr("b2"))
    lhs, rhs = Example3JoinElimination.sides(_lit(keep), _lit(drop), _lit(divisor), predicate)
    expression = lhs if side == "original" else rhs
    result = benchmark(_execute, expression)
    reference = small_divide(keep.theta_join(drop, predicate), divisor)
    assert result == reference


# ----------------------------------------------------------------------
# Laws 11 and 12 — grouped dividends: semi-join replaces the divide
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strategy", ["small_divide", "law11_semijoin"])
def test_law11_grouped_dividend(benchmark, strategy):
    base = Relation(["a", "x"], [(group, value) for group in range(500) for value in range(4)])
    dividend = base.group_by(["a"], {"b": aggregates.sum_of("x")})
    divisor = Relation(["b"], [(6,)])
    runner = small_divide if strategy == "small_divide" else law11_divide
    result = benchmark(runner, dividend, divisor)
    assert result == small_divide(dividend, divisor)


@pytest.mark.parametrize("strategy", ["small_divide", "law12_semijoin"])
def test_law12_grouped_divisor_key(benchmark, strategy):
    base = Relation(["x", "b"], [(value, group) for group in range(500) for value in range(3)])
    dividend = base.group_by(["b"], {"a": aggregates.sum_of("x")})
    divisor = make_divisor(5, domain=range(500), seed=11)
    runner = small_divide if strategy == "small_divide" else law12_divide
    result = benchmark(runner, dividend, divisor)
    assert result == small_divide(dividend, divisor)
