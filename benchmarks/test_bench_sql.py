"""Benchmarks for the Section 4 SQL queries.

Compares three execution strategies for the same "for all" query:

* Q1 through the paper's ``DIVIDE BY`` syntax (first-class great divide);
* Q3 (double ``NOT EXISTS``) with the universal-quantification recognizer —
  the optimizer detects the pattern and still uses the divide;
* Q3 translated without the recognizer — the divide-less basic-algebra plan
  an RDBMS without a division operator has to run.

All three must return the same result; the timing difference is the paper's
motivation for a first-class operator plus the recognizer.
"""

import pytest

from repro.experiments import Q1, Q2, Q2_NOT_EXISTS, Q3
from repro.optimizer import PhysicalPlanner
from repro.sql import translate_sql


def _run(sql, catalog, recognize_division=True):
    expression = translate_sql(sql, catalog, recognize_division=recognize_division)
    return PhysicalPlanner(catalog).plan(expression).execute()


@pytest.fixture(scope="module")
def q1_result(suppliers_catalog):
    return _run(Q1, suppliers_catalog)


class TestGreatDivideQueries:
    def test_q1_divide_by(self, benchmark, suppliers_catalog, q1_result):
        result = benchmark(_run, Q1, suppliers_catalog)
        assert result == q1_result

    def test_q3_not_exists_recognized(self, benchmark, suppliers_catalog, q1_result):
        result = benchmark(_run, Q3, suppliers_catalog, True)
        assert result == q1_result

    def test_q3_not_exists_divide_less(self, benchmark, suppliers_catalog, q1_result):
        result = benchmark(_run, Q3, suppliers_catalog, False)
        assert result == q1_result


class TestSmallDivideQueries:
    def test_q2_divide_by(self, benchmark, suppliers_catalog):
        result = benchmark(_run, Q2, suppliers_catalog)
        reference = _run(Q2_NOT_EXISTS, suppliers_catalog)
        assert result == reference

    def test_q2_not_exists_recognized(self, benchmark, suppliers_catalog):
        result = benchmark(_run, Q2_NOT_EXISTS, suppliers_catalog, True)
        assert result == _run(Q2, suppliers_catalog)

    def test_q2_not_exists_divide_less(self, benchmark, suppliers_catalog):
        result = benchmark(_run, Q2_NOT_EXISTS, suppliers_catalog, False)
        assert result == _run(Q2, suppliers_catalog)


class TestTranslationOverhead:
    def test_parse_and_translate_q1(self, benchmark, suppliers_catalog):
        expression = benchmark(translate_sql, Q1, suppliers_catalog)
        assert expression.contains_division()

    def test_parse_and_translate_q3(self, benchmark, suppliers_catalog):
        expression = benchmark(translate_sql, Q3, suppliers_catalog)
        assert expression.contains_division()
