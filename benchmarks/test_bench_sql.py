"""Benchmarks for the Section 4 SQL queries.

Compares three execution strategies for the same "for all" query:

* Q1 through the paper's ``DIVIDE BY`` syntax (first-class great divide);
* Q3 (double ``NOT EXISTS``) with the universal-quantification recognizer —
  the optimizer detects the pattern and still uses the divide;
* Q3 translated without the recognizer — the divide-less basic-algebra plan
  an RDBMS without a division operator has to run.

All three must return the same result; the timing difference is the paper's
motivation for a first-class operator plus the recognizer.
"""

import pytest

from repro.api import Database
from repro.experiments import Q1, Q2, Q2_NOT_EXISTS, Q3
from repro.optimizer import PhysicalPlanner
from repro.sql import translate_sql


def _run(sql, catalog, recognize_division=True):
    expression = translate_sql(sql, catalog, recognize_division=recognize_division)
    return PhysicalPlanner(catalog).plan(expression).execute()


@pytest.fixture(scope="module")
def q1_result(suppliers_catalog):
    return _run(Q1, suppliers_catalog)


class TestGreatDivideQueries:
    def test_q1_divide_by(self, benchmark, suppliers_catalog, q1_result):
        result = benchmark(_run, Q1, suppliers_catalog)
        assert result == q1_result

    def test_q3_not_exists_recognized(self, benchmark, suppliers_catalog, q1_result):
        result = benchmark(_run, Q3, suppliers_catalog, True)
        assert result == q1_result

    def test_q3_not_exists_divide_less(self, benchmark, suppliers_catalog, q1_result):
        result = benchmark(_run, Q3, suppliers_catalog, False)
        assert result == q1_result


class TestSmallDivideQueries:
    def test_q2_divide_by(self, benchmark, suppliers_catalog):
        result = benchmark(_run, Q2, suppliers_catalog)
        reference = _run(Q2_NOT_EXISTS, suppliers_catalog)
        assert result == reference

    def test_q2_not_exists_recognized(self, benchmark, suppliers_catalog):
        result = benchmark(_run, Q2_NOT_EXISTS, suppliers_catalog, True)
        assert result == _run(Q2, suppliers_catalog)

    def test_q2_not_exists_divide_less(self, benchmark, suppliers_catalog):
        result = benchmark(_run, Q2_NOT_EXISTS, suppliers_catalog, False)
        assert result == _run(Q2, suppliers_catalog)


class TestTranslationOverhead:
    def test_parse_and_translate_q1(self, benchmark, suppliers_catalog):
        expression = benchmark(translate_sql, Q1, suppliers_catalog)
        assert expression.contains_division()

    def test_parse_and_translate_q3(self, benchmark, suppliers_catalog):
        expression = benchmark(translate_sql, Q3, suppliers_catalog)
        assert expression.contains_division()


class TestPlanCache:
    """The repeated-query scenario the prepared-plan cache exists for.

    Both benchmarks run the full session path (translate → canonicalize →
    rewrite → plan → execute) for the same query over and over; the cached
    session skips rewrite+planning on every round but the first.  The
    recorded ``cache_hits`` / ``cache_misses`` make the difference visible
    in the benchmark output (``--benchmark-columns`` aside, see
    ``extra_info`` in the JSON output).
    """

    def test_q1_repeated_without_plan_cache(self, benchmark, suppliers_catalog):
        database = Database(suppliers_catalog, cache_size=0)
        reference = database.sql(Q1).run().relation

        def round_trip():
            return database.sql(Q1).run()

        result = benchmark(round_trip)
        assert result.relation == reference
        assert not result.cache_hit
        benchmark.extra_info["cache_hits"] = database.cache_info().hits
        benchmark.extra_info["cache_misses"] = database.cache_info().misses
        assert database.cache_info().hits == 0

    def test_q1_repeated_with_plan_cache(self, benchmark, suppliers_catalog):
        database = Database(suppliers_catalog)
        reference = database.sql(Q1).run().relation  # warm the cache (1 miss)

        def round_trip():
            return database.sql(Q1).run()

        result = benchmark(round_trip)
        assert result.relation == reference
        assert result.cache_hit
        info = database.cache_info()
        benchmark.extra_info["cache_hits"] = info.hits
        benchmark.extra_info["cache_misses"] = info.misses
        assert info.misses == 1
        assert info.hits >= 1

    def test_prepared_query_repeated(self, benchmark, suppliers_catalog):
        database = Database(suppliers_catalog)
        query = database.prepare(Q2)

        result = benchmark(query.run)
        assert result.cache_hit
        info = database.cache_info()
        benchmark.extra_info["cache_hits"] = info.hits
        benchmark.extra_info["cache_misses"] = info.misses
        assert info.misses == 1
