"""Benchmarks for the great divide: Theorem 1 definitions and physical algorithms."""

import pytest

from repro.division import GREAT_DIVIDE_DEFINITIONS
from repro.physical import GREAT_DIVIDE_ALGORITHMS, RelationScan


@pytest.mark.parametrize("definition", sorted(GREAT_DIVIDE_DEFINITIONS))
def test_great_divide_definition(benchmark, great_divide_workload, definition):
    """Theorem 1: the three published definitions (plus the reference) agree —
    but their evaluation costs differ wildly, which is why the reference/
    physical algorithms exist."""
    divide = GREAT_DIVIDE_DEFINITIONS[definition]
    result = benchmark(divide, great_divide_workload.dividend, great_divide_workload.divisor)
    assert len(result) == great_divide_workload.expected_quotient_size


@pytest.mark.parametrize("algorithm", sorted(GREAT_DIVIDE_ALGORITHMS))
def test_great_divide_algorithm(benchmark, great_divide_workload, algorithm):
    """Physical algorithm comparison (hash vs group-wise vs nested loops)."""
    operator_class = GREAT_DIVIDE_ALGORITHMS[algorithm]
    dividend = great_divide_workload.dividend
    divisor = great_divide_workload.divisor

    def run():
        return operator_class(RelationScan(dividend), RelationScan(divisor)).execute()

    result = benchmark(run)
    assert len(result) == great_divide_workload.expected_quotient_size
