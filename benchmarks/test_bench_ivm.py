"""Benchmarks for incremental view maintenance (the churn workload).

The acceptance contract of the view subsystem: **1000 single-row edits
against a ≥100k-tuple dividend, reading the quotient view after every
edit, beat recompute-per-edit by ≥10× per edit**, measured same-run.
Both arms pay the same copy-on-write mutation cost; the difference is
the read after each edit — an O(delta) counter update plus a counter
scan for the maintained view, a full division of the 100k-tuple
dividend for the recompute baseline.

The edit stream is delete/re-insert pairs over existing dividend rows,
so every full pass restores the starting state (timed passes are
repeatable) while still flipping quotient membership whenever the
deleted row carries a divisor value.

**The recompute arm is subsampled**: replaying all 1000 edits through
full recomputes takes minutes, so it replays only the first
``RECOMPUTE_EDITS`` edits (complete pairs) and the comparison is
per-edit.  This cap is load-bearing for every consumer: the benchmark
ids ``test_churn[edits-maintained]`` / ``test_churn[edits-recompute]``
feed ``scripts/bench_compare.py --ivm``, which normalizes by the
mirrored edit counts before applying the ≥10× gate.

Wall-clock assertions use single timed passes (each runs seconds, far
above scheduler noise) and are skipped under ``--benchmark-disable``
(CI smoke on shared runners); the result-parity assertions always run.
"""

import random
import time

import pytest

from repro.api import connect
from repro.division import small_divide
from repro.workloads import make_division_workload

#: Maintained churn must beat recompute-per-edit by this factor, per edit.
IVM_SPEEDUP_BOUND = 10.0
#: Edits in one full churn pass (delete/re-insert pairs, state-restoring).
MAINTAINED_EDITS = 1000
#: The recompute arm replays only this prefix of the stream (whole pairs);
#: timings are compared per-edit.  Mirrored in scripts/bench_compare.py.
RECOMPUTE_EDITS = 20
#: The dividend must be at least this large for the contract to mean much.
ROWS_FLOOR = 100_000

CHURN_MODES = ("maintained", "recompute")

assert MAINTAINED_EDITS % 2 == 0 and RECOMPUTE_EDITS % 2 == 0


@pytest.fixture(scope="session")
def churn_workload():
    """A ≥100k-tuple small-divide workload plus its churn edit stream."""
    workload = make_division_workload(
        num_groups=9000,
        divisor_size=10,
        containing_fraction=0.2,
        extra_values_per_group=6,
        seed=11,
    )
    assert len(workload.dividend) >= ROWS_FLOOR
    rng = random.Random(17)
    rows = rng.sample(sorted(workload.dividend.aligned_tuples()), MAINTAINED_EDITS // 2)
    edits = []
    for row in rows:
        edits.append(("delete", row))
        edits.append(("insert", row))
    return workload, edits


def _view_session(workload):
    """A database with the workload under r1/r2 and a built maintained view."""
    db = connect()
    db.add_table("r1", workload.dividend)
    db.add_table("r2", workload.divisor)
    view = db.create_view("q", db.table("r1").divide(db.table("r2"), on=["b"]))
    view.run()
    assert view.maintained
    return db, view


def _recompute_session(workload):
    """The baseline database: same tables, no view, recompute on read."""
    db = connect()
    db.add_table("r1", workload.dividend)
    db.add_table("r2", workload.divisor)
    return db, db.table("r1").divide(db.table("r2"), on=["b"])


def _apply_edit(db, op, row):
    if op == "insert":
        db.insert("r1", [row])
    else:
        db.delete("r1", [row])


def _maintained_pass(db, view, edits):
    """Apply every edit and read the view after each one."""
    for op, row in edits:
        _apply_edit(db, op, row)
        view.relation()


def _recompute_pass(db, query, edits):
    """Apply each edit and recompute the division from scratch after it.

    ``clear_cache()`` makes "no incremental help" explicit — the mutation
    already invalidates the version-keyed result cache and the prepared
    plan, so this baseline is exactly the pay-full-price-per-edit path.
    """
    for op, row in edits:
        _apply_edit(db, op, row)
        db.clear_cache()
        query.run()


def _timing_enabled(request) -> bool:
    """False under ``--benchmark-disable`` (CI smoke on shared runners)."""
    return not request.config.getoption("--benchmark-disable")


@pytest.mark.parametrize(
    "mode", [pytest.param(mode, id=f"edits-{mode}") for mode in CHURN_MODES]
)
def test_churn(benchmark, churn_workload, mode):
    """The churn workload, maintained vs recompute-per-edit (same names
    feed ``scripts/bench_compare.py --ivm``, which divides each timing by
    its arm's edit count before gating).

    ``pedantic(rounds=1)``: a pass runs for seconds (far above jitter),
    and auto-calibrated rounds would replay the multi-second stateful
    stream dozens of times for no extra signal.
    """
    workload, edits = churn_workload
    if mode == "maintained":
        db, view = _view_session(workload)
        benchmark.pedantic(
            lambda: _maintained_pass(db, view, edits), rounds=1, iterations=1
        )
        result = view.relation()
        deltas = view.deltas_applied
        assert deltas >= MAINTAINED_EDITS
    else:
        db, query = _recompute_session(workload)
        benchmark.pedantic(
            lambda: _recompute_pass(db, query, edits[:RECOMPUTE_EDITS]),
            rounds=1,
            iterations=1,
        )
        result = query.run().relation
    # Every pass is made of delete/re-insert pairs: the state is restored,
    # so both arms must end at the workload's original quotient.
    expected = small_divide(db.relation("r1"), db.relation("r2"))
    assert result == expected
    assert len(result) == workload.expected_quotient_size


def test_ivm_speedup_bound(request, churn_workload):
    """Same-run gate: maintained churn beats recompute-per-edit ≥10×.

    Parity always: along the recompute prefix the maintained view and the
    from-scratch division must agree after **every** edit.  Timing only
    when enabled: one full maintained pass vs the subsampled recompute
    pass, compared per-edit.
    """
    workload, edits = churn_workload
    db, view = _view_session(workload)
    base, query = _recompute_session(workload)
    for op, row in edits[:RECOMPUTE_EDITS]:
        _apply_edit(db, op, row)
        _apply_edit(base, op, row)
        base.clear_cache()
        assert view.relation() == query.run().relation, (op, row)

    if not _timing_enabled(request):
        # --benchmark-disable (CI smoke): per-edit parity only.
        return
    start = time.perf_counter()
    _maintained_pass(db, view, edits)
    maintained_per_edit = (time.perf_counter() - start) / MAINTAINED_EDITS
    start = time.perf_counter()
    _recompute_pass(base, query, edits[:RECOMPUTE_EDITS])
    recompute_per_edit = (time.perf_counter() - start) / RECOMPUTE_EDITS
    speedup = recompute_per_edit / maintained_per_edit
    assert speedup >= IVM_SPEEDUP_BOUND, (
        f"maintained churn {maintained_per_edit * 1000:.2f} ms/edit "
        f"({MAINTAINED_EDITS} edits) vs recompute "
        f"{recompute_per_edit * 1000:.2f} ms/edit "
        f"({RECOMPUTE_EDITS}-edit subsample) — only {speedup:.2f}x "
        f"(need {IVM_SPEEDUP_BOUND}x)"
    )
