"""Ablation benchmarks: the optimizer on and off.

DESIGN.md calls out the design choice of applying the paper's laws as a
heuristic rewrite phase in front of the planner.  These benchmarks execute
the same queries with and without the rewrite phase (and with the cost-based
search), measuring end-to-end evaluation time, and assert the results never
change.
"""

import pytest

from repro.algebra import builders as B
from repro.algebra import predicates as P
from repro.optimizer import Optimizer
from repro.physical import execute_plan


def _law3_query(catalog):
    return B.select(
        B.divide(catalog.ref("r1"), catalog.ref("r2")), P.less_than(P.attr("a"), 50)
    )


def _law7_query(catalog):
    r1, r2 = catalog.ref("r1"), catalog.ref("r2")
    low = B.select(r1, P.less_than(P.attr("a"), 200))
    high = B.select(r1, P.greater_equal(P.attr("a"), 200))
    return B.difference(B.divide(low, r2), B.divide(high, r2))


QUERIES = {"law3_selection": _law3_query, "law7_difference": _law7_query}


@pytest.mark.parametrize("query_name", sorted(QUERIES))
@pytest.mark.parametrize("mode", ["unoptimized", "heuristic", "cost_based"])
def test_optimizer_ablation(benchmark, division_catalog, query_name, mode):
    query = QUERIES[query_name](division_catalog)
    optimizer = Optimizer(division_catalog, cost_based=(mode == "cost_based"))
    reference = query.evaluate(division_catalog)

    if mode == "unoptimized":
        runner = lambda: execute_plan(optimizer.plan_without_rewriting(query)).relation  # noqa: E731
    else:
        plan = optimizer.optimize(query).plan
        runner = lambda: execute_plan(plan).relation  # noqa: E731

    result = benchmark(runner)
    assert result == reference


@pytest.mark.parametrize("mode", ["heuristic", "cost_based"])
def test_optimization_time_itself(benchmark, division_catalog, mode):
    """How long the rewrite phase itself takes (it must stay negligible)."""
    query = _law7_query(division_catalog)
    optimizer = Optimizer(division_catalog, cost_based=(mode == "cost_based"))
    result = benchmark(optimizer.optimize, query)
    assert result.plan is not None
