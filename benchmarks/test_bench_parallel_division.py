"""Benchmarks for partition-parallel division on a ≥100k-tuple dividend.

The acceptance contract of the parallel subsystem:

* ``workers=1`` partitioned execution (one partition, no hash pass, no
  pool) stays within ~10% of the plain serial operator;
* on a machine with ≥4 cores, ``workers=4`` beats the serial path by
  ≥1.8× (asserted only when timing is enabled and the cores are there);
* the cost-based planner picks the partitioned plan for this workload and
  keeps the committed small scenarios serial (pinned in
  ``tests/optimizer/test_parallel_planning.py`` as well).

Wall-clock assertions use best-of-N timings and are skipped entirely under
``--benchmark-disable`` (CI smoke on shared runners); the result-equality
and plan-shape assertions always run.  ``--workers N`` (see
``benchmarks/conftest.py``) pins the parametrized worker counts, which is
how the CI perf-smoke job runs the suite once with ``--workers 2``.
"""

import os
import time

import pytest

from repro.api import connect
from repro.physical import HashDivision, PartitionedDivision, RelationScan, execute_plan
from repro.physical.parallel import shutdown_pool

DIVIDE_SQL = "SELECT a FROM r1 AS x DIVIDE BY r2 AS y ON x.b = y.b"

#: workers=1 partitioned must stay within this factor of plain serial.
SERIAL_OVERHEAD_BOUND = 1.10
#: workers=4 must beat plain serial by at least this factor (4+ cores).
PARALLEL_SPEEDUP_BOUND = 1.8
REPEATS = 5


def _serial_plan(workload):
    return HashDivision(RelationScan(workload.dividend), RelationScan(workload.divisor))


def _partitioned_plan(workload, workers, partitions=None):
    return PartitionedDivision(
        RelationScan(workload.dividend),
        RelationScan(workload.divisor),
        algorithm="hash",
        partitions=partitions if partitions is not None else workers,
        workers=workers,
    )


def _best_time(plan_factory) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        plan = plan_factory()
        start = time.perf_counter()
        execute_plan(plan)
        best = min(best, time.perf_counter() - start)
    return best


def test_serial_division(benchmark, huge_divide_workload):
    """Baseline: the plain serial hash division on the 100k dividend."""
    result = benchmark(lambda: execute_plan(_serial_plan(huge_divide_workload)))
    assert len(result.relation) == huge_divide_workload.expected_quotient_size


def test_partitioned_division(benchmark, huge_divide_workload, exchange_workers):
    """Partitioned execution at each benchmarked worker count."""
    result = benchmark(
        lambda: execute_plan(_partitioned_plan(huge_divide_workload, exchange_workers))
    )
    assert len(result.relation) == huge_divide_workload.expected_quotient_size
    serial = execute_plan(_serial_plan(huge_divide_workload))
    assert result.relation == serial.relation


def test_workers1_partitioned_is_near_serial(benchmark, huge_divide_workload):
    """The zero-overhead fallback: K=1 skips the hash pass and the pool."""
    partitioned_time = benchmark(
        lambda: _best_time(lambda: _partitioned_plan(huge_divide_workload, workers=1))
    )
    if not benchmark.enabled:
        # --benchmark-disable (CI smoke): plan shape + equality only.
        result = execute_plan(_partitioned_plan(huge_divide_workload, workers=1))
        assert len(result.relation) == huge_divide_workload.expected_quotient_size
        return
    serial_time = _best_time(lambda: _serial_plan(huge_divide_workload))
    assert partitioned_time <= serial_time * SERIAL_OVERHEAD_BOUND + 0.005, (
        f"workers=1 partitioned {partitioned_time * 1000:.1f} ms vs "
        f"serial {serial_time * 1000:.1f} ms"
    )


@pytest.mark.skipif((os.cpu_count() or 1) < 4, reason="needs ≥4 cores for the speedup bound")
def test_workers4_speedup_over_serial(benchmark, huge_divide_workload):
    """workers=4 must demonstrably beat the serial path on a 4-core runner."""
    shutdown_pool()
    # Warm the pool once so worker forking is not billed to the measurement
    # (a session reuses its pool across queries the same way).
    execute_plan(_partitioned_plan(huge_divide_workload, workers=4))
    parallel_time = benchmark(
        lambda: _best_time(lambda: _partitioned_plan(huge_divide_workload, workers=4))
    )
    if not benchmark.enabled:
        return
    serial_time = _best_time(lambda: _serial_plan(huge_divide_workload))
    speedup = serial_time / parallel_time
    assert speedup >= PARALLEL_SPEEDUP_BOUND, (
        f"workers=4 {parallel_time * 1000:.1f} ms vs serial {serial_time * 1000:.1f} ms "
        f"— only {speedup:.2f}x (need {PARALLEL_SPEEDUP_BOUND}x)"
    )


def test_planner_picks_partitioned_plan_for_large_dividend(huge_divide_workload):
    """End to end: the session's cost-based planner parallelizes this
    workload at workers=4 — and the committed small scenarios stay serial
    (pinned in tests/optimizer/test_parallel_planning.py)."""
    db = connect(
        {"r1": huge_divide_workload.dividend, "r2": huge_divide_workload.divisor}, workers=4
    )
    result = db.sql(DIVIDE_SQL).run()
    decision = result.decisions[0]
    assert decision.chosen.workers == 4
    assert len(result.relation) == huge_divide_workload.expected_quotient_size
