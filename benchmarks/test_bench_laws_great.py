"""Benchmarks L13–L17 / E4: the great-divide laws as execution strategies.

Same methodology as the small-divide law benchmarks: both sides of each
equivalence are executed through the physical engine; the timings back the
qualitative claims (parallelizable divisor partitioning, selection
push-downs, join push-down) recorded in EXPERIMENTS.md.
"""

import pytest

from repro.algebra import builders as B
from repro.algebra import predicates as P
from repro.division import great_divide
from repro.laws.great_divide import (
    Example4JoinPushdown,
    Law13DivisorPartitioning,
    Law14QuotientSelectionPushdown,
    Law15GroupSelectionPushdown,
    Law16SharedSelectionReplication,
    Law17ProductFactorOut,
)
from repro.optimizer import PhysicalPlanner
from repro.relation import Relation


def _execute(expression):
    return PhysicalPlanner({}).plan(expression).execute()


def _lit(relation, label="r"):
    return B.literal(relation, label=label)


@pytest.fixture(scope="module")
def workload(great_divide_workload):
    return great_divide_workload


# ----------------------------------------------------------------------
# Law 13 — divisor partitioning on C (the parallelization law)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", ["original", "rewritten"])
def test_law13_divisor_partitioning(benchmark, workload, side):
    part_a = workload.divisor.select(lambda row: row["c"] % 2 == 0)
    part_b = workload.divisor.select(lambda row: row["c"] % 2 == 1)
    lhs, rhs = Law13DivisorPartitioning.sides(_lit(workload.dividend), _lit(part_a), _lit(part_b))
    expression = lhs if side == "original" else rhs
    result = benchmark(_execute, expression)
    assert result == great_divide(workload.dividend, workload.divisor)


def test_law13_partition_into_four(benchmark, workload):
    """Higher-degree partitioning: four divisor partitions instead of two."""
    partitions = [
        workload.divisor.select(lambda row, k=k: row["c"] % 4 == k) for k in range(4)
    ]
    expressions = [
        B.great_divide(_lit(workload.dividend), _lit(partition)) for partition in partitions
    ]

    def run():
        pieces = [_execute(expression) for expression in expressions]
        merged = pieces[0]
        for piece in pieces[1:]:
            merged = merged.union(piece)
        return merged

    result = benchmark(run)
    assert result == great_divide(workload.dividend, workload.divisor)


# ----------------------------------------------------------------------
# Law 14 — selection on the dividend-only attributes A
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", ["original", "rewritten"])
def test_law14_quotient_selection_pushdown(benchmark, workload, side):
    predicate = P.less_than(P.attr("a"), 50)
    lhs, rhs = Law14QuotientSelectionPushdown.sides(
        _lit(workload.dividend), _lit(workload.divisor), predicate
    )
    expression = lhs if side == "original" else rhs
    result = benchmark(_execute, expression)
    assert result == great_divide(workload.dividend, workload.divisor).select(predicate)


# ----------------------------------------------------------------------
# Law 15 — selection on the divisor-only attributes C
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", ["original", "rewritten"])
def test_law15_group_selection_pushdown(benchmark, workload, side):
    predicate = P.less_than(P.attr("c"), 5)
    lhs, rhs = Law15GroupSelectionPushdown.sides(
        _lit(workload.dividend), _lit(workload.divisor), predicate
    )
    expression = lhs if side == "original" else rhs
    result = benchmark(_execute, expression)
    assert result == great_divide(workload.dividend, workload.divisor).select(predicate)


# ----------------------------------------------------------------------
# Law 16 — selection on the shared attributes B
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", ["original", "rewritten"])
def test_law16_shared_selection_replication(benchmark, workload, side):
    predicate = P.less_than(P.attr("b"), 40)
    lhs, rhs = Law16SharedSelectionReplication.sides(
        _lit(workload.dividend), _lit(workload.divisor), predicate
    )
    expression = lhs if side == "original" else rhs
    result = benchmark(_execute, expression)
    assert result == great_divide(workload.dividend, workload.divisor.select(predicate))


# ----------------------------------------------------------------------
# Law 17 — factor a product out of the great divide
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", ["original", "rewritten"])
def test_law17_product_factor_out(benchmark, workload, side):
    factor = Relation(["k"], [(value,) for value in range(6)])
    lhs, rhs = Law17ProductFactorOut.sides(_lit(factor), _lit(workload.dividend), _lit(workload.divisor))
    expression = lhs if side == "original" else rhs
    result = benchmark(_execute, expression)
    assert len(result) == 6 * workload.expected_quotient_size


# ----------------------------------------------------------------------
# Example 4 — push an equi-join below the great divide
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", ["original", "rewritten"])
def test_example4_join_pushdown(benchmark, workload, side):
    outer = Relation(["a1"], [(value,) for value in range(0, 200, 10)])
    dividend = workload.dividend.rename({"a": "a2"})
    predicate = P.equals(P.attr("a1"), P.attr("a2"))
    lhs, rhs = Example4JoinPushdown.sides(_lit(outer), _lit(dividend), _lit(workload.divisor), predicate)
    expression = lhs if side == "original" else rhs
    result = benchmark(_execute, expression)
    reference = great_divide(dividend, workload.divisor)
    expected = outer.theta_join(reference, predicate)
    assert result == expected
