"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` also works on environments without the
``wheel`` package (legacy editable installs).
"""

from setuptools import setup

setup()
