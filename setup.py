"""Setuptools shim.

There is no ``pyproject.toml`` yet; this file carries the minimal
packaging metadata so ``pip install -e .`` works and the ``py.typed``
marker (PEP 561) ships with the package.
"""

from setuptools import find_packages, setup

setup(
    name="repro-division-laws",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
)
