"""Fuzzy-relation extension: fuzzy relations, fuzzy division, Yager's quotient."""

from repro.fuzzy.quotient import IMPLICATIONS, fuzzy_divide, owa_weights_almost_all, yager_quotient
from repro.fuzzy.relation import FuzzyRelation

__all__ = [
    "FuzzyRelation",
    "fuzzy_divide",
    "yager_quotient",
    "owa_weights_almost_all",
    "IMPLICATIONS",
]
