"""Fuzzy relations (related-work extension, Section 6 of the paper).

A fuzzy relation weights every tuple with a membership degree in ``[0, 1]``.
The paper cites Buckles & Petry and the fuzzy-division literature
(Bosc et al., Yager); this module provides the substrate those operators
need: membership-graded tuples with max/min union/intersection and graded
projection.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Any

from repro.errors import RelationError
from repro.relation.row import Row
from repro.relation.schema import AttributeNames, Schema, as_schema

__all__ = ["FuzzyRelation"]


class FuzzyRelation:
    """A mapping from rows to membership degrees.

    Degrees must lie in ``[0, 1]``; a degree of 0 means the tuple is absent
    (such entries are dropped on construction).
    """

    def __init__(
        self,
        attributes: AttributeNames,
        memberships: Mapping[Any, float] | Iterable[tuple[Any, float]] = (),
    ) -> None:
        self._schema = Schema.interned(as_schema(attributes).names)
        entries = memberships.items() if isinstance(memberships, Mapping) else memberships
        self._memberships: dict[Row, float] = {}
        for raw_row, degree in entries:
            if not 0.0 <= degree <= 1.0:
                raise RelationError(f"membership degree {degree!r} outside [0, 1]")
            if degree == 0.0:
                continue
            row = self._coerce(raw_row)
            self._memberships[row] = max(degree, self._memberships.get(row, 0.0))

    def _coerce(self, raw_row: Any) -> Row:
        if isinstance(raw_row, Row):
            row = raw_row
        elif isinstance(raw_row, Mapping):
            row = Row(dict(raw_row))
        else:
            values = tuple(raw_row)
            if len(values) != len(self._schema):
                raise RelationError(
                    f"row {values!r} does not match schema {self._schema.names!r}"
                )
            return Row.from_schema(self._schema, values)
        if set(row.keys()) != set(self._schema.name_set):
            raise RelationError(
                f"row attributes {sorted(row.keys())!r} do not match schema {self._schema.names!r}"
            )
        return row

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    def membership(self, row: Any) -> float:
        """Membership degree of ``row`` (0.0 when absent)."""
        return self._memberships.get(self._coerce(row), 0.0)

    def rows(self) -> dict[Row, float]:
        """All rows with nonzero membership."""
        return dict(self._memberships)

    def support(self) -> set[Row]:
        """The crisp support: rows with membership > 0."""
        return set(self._memberships)

    def __len__(self) -> int:
        return len(self._memberships)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FuzzyRelation):
            return self._schema == other._schema and self._memberships == other._memberships
        return NotImplemented

    def __repr__(self) -> str:
        return f"FuzzyRelation(attributes={self._schema.names!r}, rows={len(self)})"

    # ------------------------------------------------------------------
    # operators (standard max/min fuzzy set semantics)
    # ------------------------------------------------------------------
    def union(self, other: "FuzzyRelation") -> "FuzzyRelation":
        """Fuzzy union (degree = max)."""
        self._require_same_schema(other)
        merged = dict(self._memberships)
        for row, degree in other._memberships.items():
            merged[row] = max(merged.get(row, 0.0), degree)
        return FuzzyRelation(self._schema, merged)

    def intersection(self, other: "FuzzyRelation") -> "FuzzyRelation":
        """Fuzzy intersection (degree = min)."""
        self._require_same_schema(other)
        merged = {
            row: min(degree, other._memberships[row])
            for row, degree in self._memberships.items()
            if row in other._memberships
        }
        return FuzzyRelation(self._schema, merged)

    def select(self, predicate) -> "FuzzyRelation":
        """Crisp selection: keep rows satisfying ``predicate`` with their degree."""
        return FuzzyRelation(
            self._schema,
            {row: degree for row, degree in self._memberships.items() if predicate(row)},
        )

    def project(self, attributes: AttributeNames) -> "FuzzyRelation":
        """Graded projection: the degree of an output row is the max over its preimages."""
        target = self._schema.project(attributes)
        merged: dict[Row, float] = {}
        for row, degree in self._memberships.items():
            projected = row.project(target)
            merged[projected] = max(merged.get(projected, 0.0), degree)
        return FuzzyRelation(target, merged)

    def _require_same_schema(self, other: "FuzzyRelation") -> None:
        if self._schema != other._schema:
            raise RelationError(
                f"fuzzy operation requires identical schemas: {self._schema.names!r} vs "
                f"{other._schema.names!r}"
            )

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_crisp(cls, relation, degree: float = 1.0) -> "FuzzyRelation":
        """Lift an ordinary relation to a fuzzy relation with constant degree."""
        return cls(relation.schema, {row: degree for row in relation})

    def alpha_cut(self, alpha: float):
        """The crisp relation of rows with membership ≥ ``alpha``."""
        from repro.relation.relation import Relation

        return Relation(
            self._schema,
            [row for row, degree in self._memberships.items() if degree >= alpha],
        )
