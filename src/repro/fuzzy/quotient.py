"""Fuzzy division and Yager's "almost all" quotient (Section 6 extension).

Two graded interpretations of "a is related to all elements of the divisor":

* :func:`fuzzy_divide` — the implication-based fuzzy division of Bosc et
  al.: ``μ(a) = min_{b ∈ r2} impl(μ_r2(b), μ_r1(a, b))`` for a chosen fuzzy
  implication (Gödel, Goguen or Łukasiewicz);
* :func:`yager_quotient` — Yager's fuzzy quotient based on the relaxed
  quantifier "almost all", realized by an ordered weighted average (OWA) of
  the per-element satisfaction degrees.

With crisp inputs and the strict quantifier both reduce to the ordinary
small divide, which the tests verify.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from repro.errors import DivisionError
from repro.fuzzy.relation import FuzzyRelation
from repro.relation.row import Row

__all__ = ["IMPLICATIONS", "fuzzy_divide", "yager_quotient", "owa_weights_almost_all"]


def _goedel(premise: float, conclusion: float) -> float:
    return 1.0 if premise <= conclusion else conclusion


def _goguen(premise: float, conclusion: float) -> float:
    if premise <= conclusion:
        return 1.0
    return conclusion / premise if premise > 0 else 1.0


def _lukasiewicz(premise: float, conclusion: float) -> float:
    return min(1.0, 1.0 - premise + conclusion)


#: Supported fuzzy implications, keyed by name.
IMPLICATIONS: dict[str, Callable[[float, float], float]] = {
    "goedel": _goedel,
    "goguen": _goguen,
    "lukasiewicz": _lukasiewicz,
}


def _split_schemas(dividend: FuzzyRelation, divisor: FuzzyRelation):
    b = divisor.schema
    if not b.is_subset(dividend.schema):
        raise DivisionError("fuzzy divide: divisor attributes must appear in the dividend")
    a = dividend.schema.difference(b)
    if len(a) == 0 or len(b) == 0:
        raise DivisionError("fuzzy divide: both A and B must be nonempty")
    return a, b


def fuzzy_divide(
    dividend: FuzzyRelation,
    divisor: FuzzyRelation,
    implication: str = "goedel",
) -> FuzzyRelation:
    """Implication-based fuzzy division ``dividend ÷ divisor``."""
    if implication not in IMPLICATIONS:
        raise DivisionError(f"unknown implication {implication!r}; choose from {sorted(IMPLICATIONS)}")
    impl = IMPLICATIONS[implication]
    a_schema, b_schema = _split_schemas(dividend, divisor)

    candidates: dict[Row, dict[tuple[Any, ...], float]] = {}
    for row, degree in dividend.rows().items():
        candidate = row.project(a_schema)
        candidates.setdefault(candidate, {})[row.values_for(b_schema)] = degree

    divisor_rows = divisor.rows()
    result: dict[Row, float] = {}
    for candidate, group in candidates.items():
        degree = 1.0
        for divisor_row, divisor_degree in divisor_rows.items():
            dividend_degree = group.get(divisor_row.values_for(b_schema), 0.0)
            degree = min(degree, impl(divisor_degree, dividend_degree))
        if degree > 0.0:
            result[candidate] = degree
    return FuzzyRelation(a_schema, result)


def owa_weights_almost_all(count: int, strictness: float = 2.0) -> list[float]:
    """OWA weights realizing the relaxed quantifier "almost all".

    The weights follow Yager's RIM quantifier ``Q(x) = x**strictness``:
    ``w_i = Q(i/n) − Q((i−1)/n)``.  ``strictness = 1`` gives the arithmetic
    mean ("most on average"); larger values approach the strict universal
    quantifier min.
    """
    if count <= 0:
        return []
    if strictness <= 0:
        raise DivisionError("strictness must be positive")
    quantifier = lambda x: x**strictness  # noqa: E731 - tiny local helper
    return [quantifier(i / count) - quantifier((i - 1) / count) for i in range(1, count + 1)]


def yager_quotient(
    dividend: FuzzyRelation,
    divisor: FuzzyRelation,
    weights: Sequence[float] | None = None,
    strictness: float = 2.0,
) -> FuzzyRelation:
    """Yager's fuzzy quotient: "a is related to *almost all* divisor elements".

    The per-divisor-element satisfaction degrees (via the Gödel implication)
    are sorted in descending order and aggregated by an ordered weighted
    average; by default the weights implement the "almost all" quantifier
    with the given ``strictness``.
    """
    a_schema, b_schema = _split_schemas(dividend, divisor)
    divisor_rows = divisor.rows()
    if weights is None:
        weights = owa_weights_almost_all(len(divisor_rows), strictness)
    if len(weights) != len(divisor_rows):
        raise DivisionError(
            f"need exactly {len(divisor_rows)} OWA weights, got {len(weights)}"
        )

    candidates: dict[Row, dict[tuple[Any, ...], float]] = {}
    for row, degree in dividend.rows().items():
        candidate = row.project(a_schema)
        candidates.setdefault(candidate, {})[row.values_for(b_schema)] = degree

    result: dict[Row, float] = {}
    for candidate, group in candidates.items():
        satisfactions = sorted(
            (
                _goedel(divisor_degree, group.get(divisor_row.values_for(b_schema), 0.0))
                for divisor_row, divisor_degree in divisor_rows.items()
            ),
            reverse=True,
        )
        degree = sum(weight * value for weight, value in zip(weights, satisfactions))
        if degree > 0.0:
            result[candidate] = degree
    return FuzzyRelation(a_schema, result)
