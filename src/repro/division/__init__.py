"""Division operators: small divide, great divide, set containment join.

The functions exported here are the *logical* (reference) evaluations used
throughout the library as ground truth; the physical algorithms live in
:mod:`repro.physical.division`.
"""

from repro.division.great import (
    GREAT_DIVIDE_DEFINITIONS,
    demolombe_divide,
    great_divide,
    set_containment_divide,
    todd_divide,
)
from repro.division.schemas import (
    DivisionSchemas,
    great_divide_schemas,
    small_divide_schemas,
)
from repro.division.set_containment_join import (
    containment_join_via_great_divide,
    nest,
    set_containment_join,
    unnest,
)
from repro.division.small import (
    SMALL_DIVIDE_DEFINITIONS,
    codd_divide,
    counting_divide,
    forall_divide,
    healy_divide,
    maier_divide,
    small_divide,
)

__all__ = [
    "DivisionSchemas",
    "small_divide_schemas",
    "great_divide_schemas",
    "small_divide",
    "codd_divide",
    "healy_divide",
    "maier_divide",
    "counting_divide",
    "forall_divide",
    "SMALL_DIVIDE_DEFINITIONS",
    "great_divide",
    "set_containment_divide",
    "demolombe_divide",
    "todd_divide",
    "GREAT_DIVIDE_DEFINITIONS",
    "nest",
    "unnest",
    "set_containment_join",
    "containment_join_via_great_divide",
]
