"""The set containment join and NF² (nested) relation helpers.

Section 2.2 of the paper compares the great divide with the *set containment
join* ``r1 ⋈_{b1 ⊇ b2} r2``, an operator over relations that are **not** in
first normal form: the join attributes ``b1`` and ``b2`` hold set values.

This module provides:

* :func:`nest` / :func:`unnest` — convert between the flat (1NF)
  representation used by division and the nested representation used by the
  set containment join (Figure 2 vs Figure 3 of the paper);
* :func:`set_containment_join` — the join itself;
* :func:`containment_join_via_great_divide` — the bridge the paper
  describes: solve the same pairs-of-sets problem with the great divide and
  compare the outputs, taking the documented semantic differences into
  account (empty sets, preservation of the set-valued attributes).
"""

from __future__ import annotations

from repro.division.great import great_divide
from repro.errors import SchemaError
from repro.relation import aggregates
from repro.relation.relation import Relation
from repro.relation.schema import AttributeNames, as_schema

__all__ = [
    "nest",
    "unnest",
    "set_containment_join",
    "containment_join_via_great_divide",
]


def nest(relation: Relation, element_attribute: str, set_attribute: str) -> Relation:
    """Nest a 1NF relation into an NF² relation.

    Groups ``relation`` on every attribute except ``element_attribute`` and
    collects the element values into a frozenset stored in
    ``set_attribute``.

    >>> flat = Relation(["a", "b"], [(1, 1), (1, 4), (2, 1)])
    >>> nested = nest(flat, "b", "b1")
    >>> sorted(nested.to_tuples(["a", "b1"]))
    [(1, frozenset({1, 4})), (2, frozenset({1}))]
    """
    relation.schema.require([element_attribute], "nest")
    if set_attribute in relation.schema and set_attribute != element_attribute:
        raise SchemaError(f"nest: target attribute {set_attribute!r} already exists")
    grouping = relation.schema.difference([element_attribute])
    return relation.group_by(grouping, {set_attribute: aggregates.collect_set(element_attribute)})


def unnest(relation: Relation, set_attribute: str, element_attribute: str) -> Relation:
    """Unnest an NF² relation back to 1NF (inverse of :func:`nest`).

    Tuples whose set value is empty disappear, mirroring the paper's remark
    that set containment division "does not have the notion of an empty
    set".
    """
    relation.schema.require([set_attribute], "unnest")
    if element_attribute in relation.schema and element_attribute != set_attribute:
        raise SchemaError(f"unnest: target attribute {element_attribute!r} already exists")
    other = relation.schema.difference([set_attribute])
    rows = []
    for row in relation:
        values = row[set_attribute]
        for element in values:
            flat = {name: row[name] for name in other}
            flat[element_attribute] = element
            rows.append(flat)
    return Relation(other.union([element_attribute]), rows)


def set_containment_join(
    left: Relation,
    right: Relation,
    left_set_attribute: str,
    right_set_attribute: str,
) -> Relation:
    """Set containment join ``left ⋈_{b1 ⊇ b2} right``.

    Combines every pair of tuples whose ``left_set_attribute`` value (a set)
    contains the ``right_set_attribute`` value (a set).  All attributes of
    both inputs are preserved, exactly as in Figure 3 of the paper.  The two
    relations must not share attribute names.
    """
    left.schema.require([left_set_attribute], "set containment join")
    right.schema.require([right_set_attribute], "set containment join")
    if not left.schema.is_disjoint(right.schema):
        shared = left.schema.intersection(right.schema).names
        raise SchemaError(f"set containment join: attribute sets must be disjoint, got {shared!r}")

    schema = left.schema.union(right.schema)
    rows = []
    for left_row in left:
        container = frozenset(left_row[left_set_attribute])
        for right_row in right:
            contained = frozenset(right_row[right_set_attribute])
            if contained <= container:
                rows.append(left_row.merge(right_row))
    return Relation(schema, rows)


def containment_join_via_great_divide(
    flat_dividend: Relation,
    flat_divisor: Relation,
    quotient_attributes: AttributeNames | None = None,
) -> Relation:
    """Solve the set-containment problem of Figure 3 with the great divide.

    ``flat_dividend`` and ``flat_divisor`` are the 1NF representations
    (Figure 2); the result is the great-divide quotient, i.e. the
    ``(A, C)`` pairs, *without* the set-valued join attributes — difference 2
    in the paper's list of subtle differences between the two operators.
    """
    result = great_divide(flat_dividend, flat_divisor)
    if quotient_attributes is not None:
        result = result.project(as_schema(quotient_attributes))
    return result
