"""Schema analysis for the division operators.

Both division operators are defined over a *dividend* relation ``r1`` and a
*divisor* relation ``r2``:

* **small divide** (Section 2.1): ``R1(A ∪ B)``, ``R2(B)`` with ``A`` and
  ``B`` nonempty and disjoint.  The quotient schema is ``R3(A)``.
* **great divide** (Section 2.2): ``R1(A ∪ B)``, ``R2(B ∪ C)`` with ``A``,
  ``B`` and ``C`` nonempty and pairwise disjoint.  The quotient schema is
  ``R3(A ∪ C)``.

This module computes and validates the ``(A, B, C)`` split from the two
schemas, so every definition and every physical operator shares one notion
of which attributes play which role.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DivisionError
from repro.relation.relation import Relation
from repro.relation.schema import Schema

__all__ = ["DivisionSchemas", "small_divide_schemas", "great_divide_schemas"]


@dataclass(frozen=True)
class DivisionSchemas:
    """The attribute split of a division: quotient-only ``A``, shared ``B``,
    divisor-only ``C`` (empty for the small divide), and the quotient schema.
    """

    a: Schema
    b: Schema
    c: Schema
    quotient: Schema

    @property
    def is_small(self) -> bool:
        """True when the divisor has no extra attributes (small divide)."""
        return len(self.c) == 0


def small_divide_schemas(dividend: Relation, divisor: Relation) -> DivisionSchemas:
    """Validate and split the schemas of a small divide ``dividend ÷ divisor``.

    Raises
    ------
    DivisionError
        If the divisor attributes are not a nonempty proper subset of the
        dividend attributes.
    """
    b = divisor.schema
    if len(b) == 0:
        raise DivisionError("small divide: the divisor schema must be nonempty")
    if not b.is_subset(dividend.schema):
        extra = b.difference(dividend.schema).names
        raise DivisionError(
            f"small divide: divisor attributes {extra!r} do not appear in the dividend schema "
            f"{dividend.schema.names!r}"
        )
    a = dividend.schema.difference(b)
    if len(a) == 0:
        raise DivisionError(
            "small divide: the dividend must have at least one attribute that is not a divisor "
            "attribute (the quotient schema A must be nonempty)"
        )
    return DivisionSchemas(a=a, b=dividend.schema.intersection(b), c=Schema(()), quotient=a)


def great_divide_schemas(dividend: Relation, divisor: Relation) -> DivisionSchemas:
    """Validate and split the schemas of a great divide ``dividend ÷* divisor``.

    The shared attributes ``B`` are inferred as the intersection of the two
    schemas.  ``C`` (divisor-only attributes) may be empty, in which case the
    great divide degenerates to the small divide as observed by Darwen and
    Date (Section 2.2 of the paper).
    """
    b = dividend.schema.intersection(divisor.schema)
    if len(b) == 0:
        raise DivisionError(
            "great divide: dividend and divisor must share at least one attribute (the set B)"
        )
    a = dividend.schema.difference(b)
    if len(a) == 0:
        raise DivisionError(
            "great divide: the dividend must have at least one attribute outside B "
            "(the quotient schema contains A)"
        )
    c = divisor.schema.difference(b)
    return DivisionSchemas(a=a, b=b, c=c, quotient=a.union(c))
