"""The small divide operator (relational division).

The paper uses three equivalent definitions in its proofs; this module
implements all of them, plus two further equivalent formulations from the
literature (footnote 1 of the paper), so that the test-suite can cross-check
them against each other:

* :func:`codd_divide` — Codd's tuple-calculus definition (Definition 1),
* :func:`healy_divide` — Healy's algebraic definition (Definition 2),
* :func:`maier_divide` — Maier's intersection definition (Definition 3),
* :func:`counting_divide` — the counting/grouping formulation,
* :func:`forall_divide` — the direct "for all divisor tuples" check.

:func:`small_divide` is the library's reference implementation (an indexed
variant of Codd's definition, linear in the dividend size for constant group
size).
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.division.schemas import DivisionSchemas, small_divide_schemas
from repro.relation import aggregates
from repro.relation.relation import Relation

__all__ = [
    "small_divide",
    "codd_divide",
    "healy_divide",
    "maier_divide",
    "counting_divide",
    "forall_divide",
    "SMALL_DIVIDE_DEFINITIONS",
]


def _group_dividend(
    dividend: Relation, schemas: DivisionSchemas
) -> dict[tuple[Any, ...], set[tuple[Any, ...]]]:
    """Group the dividend by its ``A``-values, collecting the ``B``-values."""
    groups: dict[tuple[Any, ...], set[tuple[Any, ...]]] = {}
    for row in dividend:
        groups.setdefault(row.values_for(schemas.a), set()).add(row.values_for(schemas.b))
    return groups


def small_divide(dividend: Relation, divisor: Relation) -> Relation:
    """Reference implementation of ``dividend ÷ divisor``.

    Groups the dividend on the quotient attributes ``A`` and keeps the groups
    whose set of ``B``-values is a superset of the divisor.  This is Codd's
    image-set definition evaluated with a single pass over the dividend.

    Examples
    --------
    >>> r1 = Relation(["a", "b"], [(1, 1), (1, 4), (2, 1), (2, 2), (2, 3), (2, 4),
    ...                            (3, 1), (3, 3), (3, 4)])
    >>> r2 = Relation(["b"], [(1,), (3,)])
    >>> sorted(small_divide(r1, r2).to_set("a"))
    [2, 3]
    """
    schemas = small_divide_schemas(dividend, divisor)
    divisor_values = {row.values_for(schemas.b) for row in divisor}
    groups = _group_dividend(dividend, schemas)
    quotient_rows = [
        dict(zip(schemas.a.names, key))
        for key, values in groups.items()
        if divisor_values <= values
    ]
    return Relation(schemas.quotient, quotient_rows)


def codd_divide(dividend: Relation, divisor: Relation) -> Relation:
    """Definition 1 (Codd): quotient tuples whose image set contains the divisor.

    ``r1 ÷ r2 = {t | t = t1.A ∧ t1 ∈ r1 ∧ r2 ⊆ i_r1(t)}`` where the image set
    ``i_r1(x) = {y | (x, y) ∈ r1}``.
    """
    schemas = small_divide_schemas(dividend, divisor)
    quotient_rows = []
    for candidate in dividend.project(schemas.a):
        image = dividend.image_set(candidate, schemas.b)
        if set(divisor.rows) <= set(image.rows):
            quotient_rows.append(candidate)
    return Relation(schemas.quotient, quotient_rows)


def healy_divide(dividend: Relation, divisor: Relation) -> Relation:
    """Definition 2 (Healy): ``π_A(r1) − π_A((π_A(r1) × r2) − r1)``."""
    schemas = small_divide_schemas(dividend, divisor)
    candidates = dividend.project(schemas.a)
    # Divisor rows restricted to B, as a relation over B only (they already are).
    missing = candidates.product(divisor.project(schemas.b)).difference(
        dividend.project(schemas.a.union(schemas.b))
    )
    return candidates.difference(missing.project(schemas.a))


def maier_divide(dividend: Relation, divisor: Relation) -> Relation:
    """Definition 3 (Maier): ``⋂_{t ∈ r2} π_A(σ_{B=t}(r1))``.

    For an empty divisor the intersection over zero relations is, by
    convention, ``π_A(r1)`` — the same result the other definitions produce.
    """
    schemas = small_divide_schemas(dividend, divisor)
    result = dividend.project(schemas.a)
    for divisor_row in divisor:
        values = divisor_row.values_for(schemas.b)
        matching = dividend.select(lambda row, v=values: row.values_for(schemas.b) == v)
        result = result.intersection(matching.project(schemas.a))
    return result


def counting_divide(dividend: Relation, divisor: Relation) -> Relation:
    """The counting formulation from footnote 1 of the paper.

    ``r1 ÷ r2 = π_A(Aγ_{count(B)→c}(r1 ⋉ r2) ⋈ γ_{count(B)→c}(r2))``:
    count, per quotient candidate, how many of its ``B``-values survive a
    semi-join with the divisor, and keep the candidates whose count equals
    the divisor cardinality.
    """
    schemas = small_divide_schemas(dividend, divisor)
    divisor_count = len(divisor.project(schemas.b))
    if divisor_count == 0:
        return dividend.project(schemas.a)
    restricted = dividend.semijoin(divisor)
    counts = restricted.group_by(schemas.a, {"__c": aggregates.count_distinct(schemas.b.names[0])})
    if len(schemas.b) > 1:
        # count distinct combinations of all B attributes, not just the first
        counts = restricted.group_by(
            schemas.a,
            {
                "__c": (
                    "count(distinct B)",
                    lambda rows: len({row.values_for(schemas.b) for row in rows}),
                )
            },
        )
    matching = counts.select(lambda row: row["__c"] == divisor_count)
    return matching.project(schemas.a)


def forall_divide(dividend: Relation, divisor: Relation) -> Relation:
    """Direct tuple-calculus reading: for every divisor tuple there is a
    dividend tuple with the candidate's ``A``-values and that ``B``-value.

    ``r1 ÷ r2 = {t | ∀t2 ∈ r2 ∃t1 ∈ r1 : t = t1.A ∧ t1.B = t2.B}`` restricted
    to candidates drawn from ``π_A(r1)`` (footnote 1 of the paper).
    """
    schemas = small_divide_schemas(dividend, divisor)
    dividend_pairs = {(row.values_for(schemas.a), row.values_for(schemas.b)) for row in dividend}
    divisor_values = [row.values_for(schemas.b) for row in divisor]
    quotient_rows = []
    for candidate in dividend.project(schemas.a):
        key = candidate.values_for(schemas.a)
        if all((key, value) in dividend_pairs for value in divisor_values):
            quotient_rows.append(candidate)
    return Relation(schemas.quotient, quotient_rows)


def divide_by_values(
    dividend: Relation, divisor_values: Mapping[str, Any] | None, divisor: Relation
) -> Relation:
    """Internal helper kept for symmetry with the great-divide module."""
    return small_divide(dividend, divisor)


#: All equivalent definitions, keyed by the name used in tests and benches.
SMALL_DIVIDE_DEFINITIONS = {
    "reference": small_divide,
    "codd": codd_divide,
    "healy": healy_divide,
    "maier": maier_divide,
    "counting": counting_divide,
    "forall": forall_divide,
}
