"""The great divide operator (generalized division / set containment division).

Section 2.2 of the paper discusses three independently proposed definitions
and Theorem 1 proves them equivalent.  All three are implemented here and
cross-checked by the test-suite:

* :func:`set_containment_divide` — Definition 4 (Rantzau et al., ``÷*1``),
* :func:`demolombe_divide` — Definition 5 (Demolombe's generalized
  division, ``÷*2``),
* :func:`todd_divide` — Definition 6 (Todd's great divide, ``÷*3``).

:func:`great_divide` is the library's reference implementation: it groups
the dividend by ``A`` and the divisor by ``C`` and emits every ``(A, C)``
combination whose divisor group is contained in the dividend group.  For a
divisor without ``C`` attributes and at least one tuple it coincides with
the small divide (Darwen & Date's degeneration remark); for an *empty*
divisor all definitions of the great divide yield an empty quotient, unlike
the small divide which yields ``π_A(r1)``.
"""

from __future__ import annotations

from typing import Any

from repro.division.schemas import great_divide_schemas
from repro.division.small import small_divide
from repro.relation.relation import Relation

__all__ = [
    "great_divide",
    "set_containment_divide",
    "demolombe_divide",
    "todd_divide",
    "GREAT_DIVIDE_DEFINITIONS",
]


def great_divide(dividend: Relation, divisor: Relation) -> Relation:
    """Reference implementation of ``dividend ÷* divisor``.

    Examples
    --------
    >>> r1 = Relation(["a", "b"], [(1, 1), (1, 4), (2, 1), (2, 2), (2, 3), (2, 4),
    ...                            (3, 1), (3, 3), (3, 4)])
    >>> r2 = Relation(["b", "c"], [(1, 1), (2, 1), (4, 1), (1, 2), (3, 2)])
    >>> sorted(great_divide(r1, r2).to_tuples(["a", "c"]))
    [(2, 1), (2, 2), (3, 2)]
    """
    schemas = great_divide_schemas(dividend, divisor)

    dividend_groups: dict[tuple[Any, ...], set[tuple[Any, ...]]] = {}
    for row in dividend:
        dividend_groups.setdefault(row.values_for(schemas.a), set()).add(
            row.values_for(schemas.b)
        )

    divisor_groups: dict[tuple[Any, ...], set[tuple[Any, ...]]] = {}
    for row in divisor:
        divisor_groups.setdefault(row.values_for(schemas.c), set()).add(
            row.values_for(schemas.b)
        )

    quotient_rows = []
    for c_key, needed in divisor_groups.items():
        for a_key, available in dividend_groups.items():
            if needed <= available:
                values = dict(zip(schemas.a.names, a_key))
                values.update(zip(schemas.c.names, c_key))
                quotient_rows.append(values)
    return Relation(schemas.quotient, quotient_rows)


def set_containment_divide(dividend: Relation, divisor: Relation) -> Relation:
    """Definition 4: ``⋃_{t ∈ π_C(r2)} (r1 ÷ π_B(σ_{C=t}(r2))) × (t)``."""
    schemas = great_divide_schemas(dividend, divisor)
    result = Relation.empty(schemas.quotient)
    for c_row in divisor.project(schemas.c):
        c_values = c_row.values_for(schemas.c)
        divisor_group = divisor.select(
            lambda row, v=c_values: row.values_for(schemas.c) == v
        ).project(schemas.b)
        quotient_group = small_divide(dividend, divisor_group)
        attached = quotient_group.product(Relation.singleton(dict(c_row)))
        # ``attached`` may order attributes differently; align with the
        # quotient schema before taking the union.
        result = result.union(Relation(schemas.quotient, attached.rows))
    return result


def demolombe_divide(dividend: Relation, divisor: Relation) -> Relation:
    """Definition 5 (Demolombe):
    ``(π_A(r1) × π_C(r2)) − π_{A∪C}((π_A(r1) × r2) − (r1 × π_C(r2)))``.
    """
    schemas = great_divide_schemas(dividend, divisor)
    candidates = dividend.project(schemas.a).product(divisor.project(schemas.c))
    full_schema = schemas.a.union(schemas.b).union(schemas.c)
    left = Relation(full_schema, dividend.project(schemas.a).product(divisor).rows)
    right = Relation(full_schema, dividend.product(divisor.project(schemas.c)).rows)
    missing = left.difference(right).project(schemas.a.union(schemas.c))
    result = candidates.difference(Relation(candidates.schema.names, missing.rows))
    return Relation(schemas.quotient, result.rows)


def todd_divide(dividend: Relation, divisor: Relation) -> Relation:
    """Definition 6 (Todd):
    ``(π_A(r1) × π_C(r2)) − π_{A∪C}((π_A(r1) × r2) − (r1 ⋈ r2))``.
    """
    schemas = great_divide_schemas(dividend, divisor)
    candidates = dividend.project(schemas.a).product(divisor.project(schemas.c))
    full_schema = schemas.a.union(schemas.b).union(schemas.c)
    left = Relation(full_schema, dividend.project(schemas.a).product(divisor).rows)
    joined = Relation(full_schema, dividend.natural_join(divisor).rows)
    missing = left.difference(joined).project(schemas.a.union(schemas.c))
    result = candidates.difference(Relation(candidates.schema.names, missing.rows))
    return Relation(schemas.quotient, result.rows)


#: All equivalent definitions, keyed by the name used in tests and benches.
GREAT_DIVIDE_DEFINITIONS = {
    "reference": great_divide,
    "set_containment": set_containment_divide,
    "demolombe": demolombe_divide,
    "todd": todd_divide,
}
