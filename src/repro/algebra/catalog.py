"""Catalog: named relations plus integrity constraints.

Several laws of the paper have preconditions that go beyond schemas:

* Law 9 and Example 3 need a *foreign key* / inclusion dependency
  ``π_{B2}(r2) ⊆ r1**``;
* Law 11 needs the dividend grouped such that each quotient candidate has a
  single tuple (guaranteed when ``A`` is a key, e.g. the output of a
  grouping);
* Law 12 additionally needs ``r2.B`` to be a foreign key referencing
  ``r1.B``.

The :class:`Catalog` records these constraints so that rewrite rules can
check them declaratively, and it doubles as the database (name → relation
mapping) the evaluator and the physical executor read from.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass

from repro.algebra.expressions import RelationRef
from repro.errors import SchemaError
from repro.relation.relation import Relation
from repro.relation.schema import AttributeNames, as_schema

__all__ = ["Catalog", "ForeignKey"]


@dataclass(frozen=True)
class ForeignKey:
    """An inclusion dependency: ``π_attrs(table) ⊆ π_ref_attrs(ref_table)``."""

    table: str
    attributes: tuple[str, ...]
    ref_table: str
    ref_attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.attributes) != len(self.ref_attributes):
            raise SchemaError(
                "foreign key: the referencing and referenced attribute lists must have "
                f"the same length, got {self.attributes!r} and {self.ref_attributes!r}"
            )


class Catalog(Mapping[str, Relation]):
    """A set of named relations with optional key and foreign-key constraints.

    The catalog implements the ``Mapping[str, Relation]`` protocol, so it can
    be passed directly to :meth:`Expression.evaluate`.
    """

    def __init__(self) -> None:
        self._tables: dict[str, Relation] = {}
        self._keys: dict[str, set[frozenset[str]]] = {}
        self._foreign_keys: list[ForeignKey] = []

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> Relation:
        return self._tables[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    def __len__(self) -> int:
        return len(self._tables)

    # ------------------------------------------------------------------
    # definition API
    # ------------------------------------------------------------------
    def add_table(
        self,
        name: str,
        relation: Relation,
        key: AttributeNames | None = None,
    ) -> RelationRef:
        """Register a relation and return a :class:`RelationRef` to it."""
        if name in self._tables:
            raise SchemaError(f"table {name!r} is already defined")
        self._tables[name] = relation
        if key is not None:
            self.declare_key(name, key)
        return RelationRef(name, relation.schema)

    def replace_table(self, name: str, relation: Relation) -> None:
        """Replace the contents of an existing table (same schema required)."""
        if name not in self._tables:
            raise SchemaError(f"table {name!r} is not defined")
        if self._tables[name].schema != relation.schema:
            raise SchemaError(
                f"replace_table: schema of {name!r} would change from "
                f"{self._tables[name].schema.names!r} to {relation.schema.names!r}"
            )
        self._tables[name] = relation

    def declare_key(self, name: str, attributes: AttributeNames) -> None:
        """Declare ``attributes`` as a candidate key of ``name``."""
        relation = self._require_table(name)
        schema = as_schema(attributes)
        relation.schema.require(schema, f"key of {name}")
        self._keys.setdefault(name, set()).add(frozenset(schema.name_set))

    def declare_foreign_key(
        self,
        table: str,
        attributes: AttributeNames,
        ref_table: str,
        ref_attributes: AttributeNames,
    ) -> None:
        """Declare the inclusion dependency ``table.attributes ⊆ ref_table.ref_attributes``."""
        source = self._require_table(table)
        target = self._require_table(ref_table)
        src_schema = as_schema(attributes)
        dst_schema = as_schema(ref_attributes)
        source.schema.require(src_schema, f"foreign key of {table}")
        target.schema.require(dst_schema, f"foreign key target of {ref_table}")
        self._foreign_keys.append(
            ForeignKey(table, tuple(src_schema.names), ref_table, tuple(dst_schema.names))
        )

    def ref(self, name: str) -> RelationRef:
        """A :class:`RelationRef` expression for a registered table."""
        return RelationRef(name, self._require_table(name).schema)

    # ------------------------------------------------------------------
    # constraint queries used by rewrite-rule preconditions
    # ------------------------------------------------------------------
    def has_key(self, name: str, attributes: AttributeNames) -> bool:
        """True if some declared key of ``name`` is a subset of ``attributes``.

        A superset of a key is itself a superkey, which is what the laws
        need ("each group defined by these attributes has one tuple").
        """
        candidate = frozenset(as_schema(attributes).name_set)
        return any(key <= candidate for key in self._keys.get(name, ()))

    def has_foreign_key(
        self,
        table: str,
        attributes: AttributeNames,
        ref_table: str,
        ref_attributes: AttributeNames,
    ) -> bool:
        """True if the given inclusion dependency has been declared."""
        probe = ForeignKey(
            table,
            tuple(as_schema(attributes).names),
            ref_table,
            tuple(as_schema(ref_attributes).names),
        )
        return probe in self._foreign_keys

    @property
    def foreign_keys(self) -> tuple[ForeignKey, ...]:
        """All declared foreign keys."""
        return tuple(self._foreign_keys)

    @property
    def declared_keys(self) -> dict[str, tuple[tuple[str, ...], ...]]:
        """Every declared candidate key per table, deterministically ordered.

        Used by :mod:`repro.storage` to persist the constraints alongside
        the data so that a reopened store keeps the same rewrite-law
        preconditions available.
        """
        return {
            name: tuple(tuple(sorted(key)) for key in sorted(keys, key=sorted))
            for name, keys in self._keys.items()
            if keys
        }

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check that the data satisfies every declared key and foreign key.

        Raises :class:`SchemaError` on the first violated constraint.  The
        checks are intentionally eager and simple; the catalog holds
        laptop-scale synthetic data.
        """
        for name, keys in self._keys.items():
            relation = self._tables[name]
            for key in keys:
                key_schema = as_schema(sorted(key))
                if len(relation.project(key_schema)) != len(relation):
                    raise SchemaError(f"key {sorted(key)!r} of table {name!r} is violated")
        for fk in self._foreign_keys:
            source = self._tables[fk.table]
            target = self._tables[fk.ref_table]
            source_values = {row.values_for(fk.attributes) for row in source}
            target_values = {row.values_for(fk.ref_attributes) for row in target}
            if not source_values <= target_values:
                raise SchemaError(
                    f"foreign key {fk.table}.{fk.attributes!r} -> "
                    f"{fk.ref_table}.{fk.ref_attributes!r} is violated"
                )

    def _require_table(self, name: str) -> Relation:
        if name not in self._tables:
            raise SchemaError(f"table {name!r} is not defined")
        return self._tables[name]
