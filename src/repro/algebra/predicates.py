"""Predicate abstract syntax for selections and theta-joins.

The rewrite laws reason about predicates *syntactically*: Law 3 applies only
to a predicate ``p(A)`` over quotient attributes, Law 4 to a predicate
``p(B)`` over divisor attributes, Example 1 needs the negation ``¬p(B)``.
Representing predicates as a small AST (instead of opaque Python callables)
gives the rules access to the referenced attribute set, to structural
equality, and to negation, while still being directly evaluable on rows.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Any, Callable

from repro.errors import PredicateError
from repro.relation.row import Row

__all__ = [
    "Predicate",
    "Comparison",
    "AttributeRef",
    "Literal",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "FalsePredicate",
    "TRUE",
    "FALSE",
    "attr",
    "lit",
    "equals",
    "not_equals",
    "less_than",
    "less_equal",
    "greater_than",
    "greater_equal",
    "conjunction",
    "disjunction",
]


# ----------------------------------------------------------------------
# scalar terms
# ----------------------------------------------------------------------
class Term:
    """A scalar term: an attribute reference or a literal constant."""

    def evaluate(self, row: Row) -> Any:
        raise NotImplementedError

    @property
    def attributes(self) -> frozenset[str]:
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Term":
        raise NotImplementedError


class AttributeRef(Term):
    """Reference to an attribute of the input row."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not isinstance(name, str) or not name:
            raise PredicateError(f"attribute reference must be a nonempty string, got {name!r}")
        self.name = name

    def evaluate(self, row: Row) -> Any:
        return row[self.name]

    @property
    def attributes(self) -> frozenset[str]:
        return frozenset({self.name})

    def rename(self, mapping: Mapping[str, str]) -> "AttributeRef":
        return AttributeRef(mapping.get(self.name, self.name))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AttributeRef) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("attr", self.name))

    def __repr__(self) -> str:
        return self.name


class Literal(Term):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, row: Row) -> Any:
        return self.value

    @property
    def attributes(self) -> frozenset[str]:
        return frozenset()

    def rename(self, mapping: Mapping[str, str]) -> "Literal":
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Literal) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("lit", self.value))

    def __repr__(self) -> str:
        return repr(self.value)


def attr(name: str) -> AttributeRef:
    """Shorthand for :class:`AttributeRef`."""
    return AttributeRef(name)


def lit(value: Any) -> Literal:
    """Shorthand for :class:`Literal`."""
    return Literal(value)


def _as_term(value: Any) -> Term:
    if isinstance(value, Term):
        return value
    return Literal(value)


# ----------------------------------------------------------------------
# predicates
# ----------------------------------------------------------------------
class Predicate:
    """Base class of the predicate AST.

    Predicates behave like callables on rows (so they can be passed straight
    to :meth:`Relation.select`), expose the set of referenced attributes,
    and support structural equality, renaming and negation.
    """

    def evaluate(self, row: Row) -> bool:
        raise NotImplementedError

    def __call__(self, row: Row) -> bool:
        return self.evaluate(row)

    @property
    def attributes(self) -> frozenset[str]:
        """The attribute names referenced by this predicate."""
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Predicate":
        """Return the predicate with attribute references renamed."""
        raise NotImplementedError

    def negate(self) -> "Predicate":
        """Return the logical negation (pushes through Not)."""
        return Not(self)

    def references_only(self, attributes: Iterable[str]) -> bool:
        """True if every referenced attribute is in ``attributes``."""
        return self.attributes <= frozenset(attributes)

    # convenience combinators -------------------------------------------------
    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return self.negate()


_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_NEGATED_OPERATOR = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


class Comparison(Predicate):
    """A binary comparison between two scalar terms."""

    __slots__ = ("left", "operator", "right")

    def __init__(self, left: Any, operator: str, right: Any) -> None:
        if operator not in _OPERATORS:
            raise PredicateError(f"unknown comparison operator {operator!r}")
        self.left = _as_term(left)
        self.operator = operator
        self.right = _as_term(right)

    def evaluate(self, row: Row) -> bool:
        return _OPERATORS[self.operator](self.left.evaluate(row), self.right.evaluate(row))

    @property
    def attributes(self) -> frozenset[str]:
        return self.left.attributes | self.right.attributes

    def rename(self, mapping: Mapping[str, str]) -> "Comparison":
        return Comparison(self.left.rename(mapping), self.operator, self.right.rename(mapping))

    def negate(self) -> "Comparison":
        return Comparison(self.left, _NEGATED_OPERATOR[self.operator], self.right)

    @property
    def is_equi_comparison(self) -> bool:
        """True for an equality between two attribute references."""
        return (
            self.operator == "="
            and isinstance(self.left, AttributeRef)
            and isinstance(self.right, AttributeRef)
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Comparison)
            and other.left == self.left
            and other.operator == self.operator
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash(("cmp", self.left, self.operator, self.right))

    def __repr__(self) -> str:
        return f"{self.left!r} {self.operator} {self.right!r}"


class And(Predicate):
    """Conjunction of two or more predicates."""

    __slots__ = ("operands",)

    def __init__(self, *operands: Predicate) -> None:
        if len(operands) < 2:
            raise PredicateError("And requires at least two operands")
        self.operands = tuple(operands)

    def evaluate(self, row: Row) -> bool:
        return all(operand.evaluate(row) for operand in self.operands)

    @property
    def attributes(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for operand in self.operands:
            result |= operand.attributes
        return result

    def rename(self, mapping: Mapping[str, str]) -> "And":
        return And(*(operand.rename(mapping) for operand in self.operands))

    def negate(self) -> Predicate:
        return Or(*(operand.negate() for operand in self.operands))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and other.operands == self.operands

    def __hash__(self) -> int:
        return hash(("and", self.operands))

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(op) for op in self.operands) + ")"


class Or(Predicate):
    """Disjunction of two or more predicates."""

    __slots__ = ("operands",)

    def __init__(self, *operands: Predicate) -> None:
        if len(operands) < 2:
            raise PredicateError("Or requires at least two operands")
        self.operands = tuple(operands)

    def evaluate(self, row: Row) -> bool:
        return any(operand.evaluate(row) for operand in self.operands)

    @property
    def attributes(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for operand in self.operands:
            result |= operand.attributes
        return result

    def rename(self, mapping: Mapping[str, str]) -> "Or":
        return Or(*(operand.rename(mapping) for operand in self.operands))

    def negate(self) -> Predicate:
        return And(*(operand.negate() for operand in self.operands))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and other.operands == self.operands

    def __hash__(self) -> int:
        return hash(("or", self.operands))

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(op) for op in self.operands) + ")"


class Not(Predicate):
    """Logical negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Predicate) -> None:
        self.operand = operand

    def evaluate(self, row: Row) -> bool:
        return not self.operand.evaluate(row)

    @property
    def attributes(self) -> frozenset[str]:
        return self.operand.attributes

    def rename(self, mapping: Mapping[str, str]) -> "Not":
        return Not(self.operand.rename(mapping))

    def negate(self) -> Predicate:
        return self.operand

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and other.operand == self.operand

    def __hash__(self) -> int:
        return hash(("not", self.operand))

    def __repr__(self) -> str:
        return f"NOT ({self.operand!r})"


class TruePredicate(Predicate):
    """The always-true predicate (θ ≡ true turns a theta-join into ×)."""

    def evaluate(self, row: Row) -> bool:
        return True

    @property
    def attributes(self) -> frozenset[str]:
        return frozenset()

    def rename(self, mapping: Mapping[str, str]) -> "TruePredicate":
        return self

    def negate(self) -> Predicate:
        return FALSE

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TruePredicate)

    def __hash__(self) -> int:
        return hash("true")

    def __repr__(self) -> str:
        return "TRUE"


class FalsePredicate(Predicate):
    """The always-false predicate."""

    def evaluate(self, row: Row) -> bool:
        return False

    @property
    def attributes(self) -> frozenset[str]:
        return frozenset()

    def rename(self, mapping: Mapping[str, str]) -> "FalsePredicate":
        return self

    def negate(self) -> Predicate:
        return TRUE

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FalsePredicate)

    def __hash__(self) -> int:
        return hash("false")

    def __repr__(self) -> str:
        return "FALSE"


TRUE = TruePredicate()
FALSE = FalsePredicate()


# ----------------------------------------------------------------------
# convenience constructors
# ----------------------------------------------------------------------
def equals(left: Any, right: Any) -> Comparison:
    """``left = right``."""
    return Comparison(left, "=", right)


def not_equals(left: Any, right: Any) -> Comparison:
    """``left != right``."""
    return Comparison(left, "!=", right)


def less_than(left: Any, right: Any) -> Comparison:
    """``left < right``."""
    return Comparison(left, "<", right)


def less_equal(left: Any, right: Any) -> Comparison:
    """``left <= right``."""
    return Comparison(left, "<=", right)


def greater_than(left: Any, right: Any) -> Comparison:
    """``left > right``."""
    return Comparison(left, ">", right)


def greater_equal(left: Any, right: Any) -> Comparison:
    """``left >= right``."""
    return Comparison(left, ">=", right)


def conjunction(predicates: Iterable[Predicate]) -> Predicate:
    """Combine predicates with AND (TRUE for an empty iterable)."""
    items = [p for p in predicates if not isinstance(p, TruePredicate)]
    if not items:
        return TRUE
    if len(items) == 1:
        return items[0]
    return And(*items)


def disjunction(predicates: Iterable[Predicate]) -> Predicate:
    """Combine predicates with OR (FALSE for an empty iterable)."""
    items = [p for p in predicates if not isinstance(p, FalsePredicate)]
    if not items:
        return FALSE
    if len(items) == 1:
        return items[0]
    return Or(*items)


def attribute_equality(pairs: Iterable[tuple[str, str]]) -> Predicate:
    """Conjunction of attribute equalities, e.g. the ON clause of DIVIDE BY."""
    return conjunction(equals(attr(left), attr(right)) for left, right in pairs)
