"""Concise constructors for algebra expressions.

The rewrite-rule implementations and the tests build a lot of trees; these
helpers keep that code close to the paper's notation::

    divide(r1, union(r2a, r2b))          # r1 ÷ (r2' ∪ r2'')
    project(select(r1, p), ["a"])        # π_a(σ_p(r1))
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from repro.algebra.expressions import (
    AggregateSpec,
    AntiJoin,
    Difference,
    Expression,
    GreatDivide,
    GroupBy,
    Intersection,
    LeftOuterJoin,
    LiteralRelation,
    NaturalJoin,
    Product,
    Project,
    RelationRef,
    Rename,
    Select,
    SemiJoin,
    SmallDivide,
    ThetaJoin,
    Union,
)
from repro.algebra.predicates import Predicate
from repro.relation.relation import Relation
from repro.relation.schema import AttributeNames

__all__ = [
    "ref",
    "literal",
    "project",
    "select",
    "rename",
    "group_by",
    "aggregate",
    "union",
    "intersection",
    "difference",
    "product",
    "theta_join",
    "natural_join",
    "semijoin",
    "antijoin",
    "outer_join",
    "divide",
    "great_divide",
]


def ref(name: str, attributes: AttributeNames) -> RelationRef:
    """A base-relation reference with a declared schema."""
    return RelationRef(name, attributes)


def literal(relation: Relation, label: str = "literal") -> LiteralRelation:
    """An inline constant relation."""
    return LiteralRelation(relation, label)


def project(child: Expression, attributes: AttributeNames) -> Project:
    """π_attributes(child)"""
    return Project(child, attributes)


def select(child: Expression, predicate: Predicate) -> Select:
    """σ_predicate(child)"""
    return Select(child, predicate)


def rename(child: Expression, mapping: Mapping[str, str]) -> Rename:
    """ρ_mapping(child)"""
    return Rename(child, mapping)


def aggregate(function: str, attribute: str | None, output: str) -> AggregateSpec:
    """An aggregate specification ``function(attribute) → output``."""
    return AggregateSpec(function, attribute, output)


def group_by(
    child: Expression, grouping: AttributeNames, aggregates: Sequence[AggregateSpec]
) -> GroupBy:
    """Gγ_F(child)"""
    return GroupBy(child, grouping, aggregates)


def union(left: Expression, right: Expression) -> Union:
    """left ∪ right"""
    return Union(left, right)


def intersection(left: Expression, right: Expression) -> Intersection:
    """left ∩ right"""
    return Intersection(left, right)


def difference(left: Expression, right: Expression) -> Difference:
    """left − right"""
    return Difference(left, right)


def product(left: Expression, right: Expression) -> Product:
    """left × right"""
    return Product(left, right)


def theta_join(left: Expression, right: Expression, predicate: Predicate) -> ThetaJoin:
    """left ⋈_θ right"""
    return ThetaJoin(left, right, predicate)


def natural_join(left: Expression, right: Expression) -> NaturalJoin:
    """left ⋈ right"""
    return NaturalJoin(left, right)


def semijoin(left: Expression, right: Expression) -> SemiJoin:
    """left ⋉ right"""
    return SemiJoin(left, right)


def antijoin(left: Expression, right: Expression) -> AntiJoin:
    """left ▷ right"""
    return AntiJoin(left, right)


def outer_join(left: Expression, right: Expression) -> LeftOuterJoin:
    """left ⟕ right"""
    return LeftOuterJoin(left, right)


def divide(dividend: Expression, divisor: Expression) -> SmallDivide:
    """dividend ÷ divisor"""
    return SmallDivide(dividend, divisor)


def great_divide(dividend: Expression, divisor: Expression) -> GreatDivide:
    """dividend ÷* divisor"""
    return GreatDivide(dividend, divisor)
