"""Testing-based equivalence checking for algebra expressions.

An algebraic law asserts that two expressions denote the same relation *for
every database*.  Exhaustive verification is impossible, so the library
offers the standard engineering substitute: evaluate both sides on one or
many (randomly generated) databases and compare.  The property-based tests
in ``tests/laws`` drive this with hypothesis-generated databases; the
optimizer uses it as a sanity check in its verification mode.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import Optional

from repro.algebra.expressions import DatabaseLike, Expression
from repro.relation.relation import Relation

__all__ = ["EquivalenceReport", "equivalent_on", "check_equivalence", "first_counterexample"]


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of comparing two expressions on a collection of databases."""

    equivalent: bool
    databases_checked: int
    counterexample: Optional[Mapping[str, Relation]] = None
    left_result: Optional[Relation] = None
    right_result: Optional[Relation] = None

    def __bool__(self) -> bool:
        return self.equivalent


def equivalent_on(left: Expression, right: Expression, database: DatabaseLike) -> bool:
    """Evaluate both expressions on one database and compare the results."""
    return left.evaluate(database) == right.evaluate(database)


def check_equivalence(
    left: Expression,
    right: Expression,
    databases: Iterable[DatabaseLike],
) -> EquivalenceReport:
    """Compare two expressions on every database in ``databases``.

    Returns a report carrying the first counterexample, if any.
    """
    checked = 0
    for database in databases:
        checked += 1
        left_result = left.evaluate(database)
        right_result = right.evaluate(database)
        if left_result != right_result:
            return EquivalenceReport(
                equivalent=False,
                databases_checked=checked,
                counterexample=dict(database),
                left_result=left_result,
                right_result=right_result,
            )
    return EquivalenceReport(equivalent=True, databases_checked=checked)


def first_counterexample(
    left: Expression,
    right: Expression,
    databases: Iterable[DatabaseLike],
) -> Optional[Mapping[str, Relation]]:
    """Return the first database on which the expressions differ, or None."""
    report = check_equivalence(left, right, databases)
    return None if report.equivalent else report.counterexample
