"""Logical algebra expression trees.

Queries are represented as immutable trees of operator nodes.  The rewrite
laws of the paper are implemented as transformations over these trees
(:mod:`repro.laws`), the optimizer searches over them
(:mod:`repro.optimizer`), and the evaluator interprets them directly against
a :class:`~repro.algebra.catalog.Catalog` or a plain mapping of relation
names to :class:`~repro.relation.relation.Relation` values.

Every node knows its output schema *statically* (leaf nodes carry their
schema), so rules can check their schema-level preconditions without
touching any data.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.algebra.predicates import Predicate
from repro.errors import ExpressionError, SchemaError
from repro.relation import aggregates as agg_functions
from repro.relation.relation import Relation
from repro.relation.schema import AttributeNames, Schema, as_schema

__all__ = [
    "Expression",
    "RelationRef",
    "LiteralRelation",
    "Project",
    "Select",
    "Rename",
    "GroupBy",
    "AggregateSpec",
    "Union",
    "Intersection",
    "Difference",
    "Product",
    "ThetaJoin",
    "NaturalJoin",
    "SemiJoin",
    "AntiJoin",
    "LeftOuterJoin",
    "SmallDivide",
    "GreatDivide",
]

DatabaseLike = Mapping[str, Relation]


class Expression:
    """Base class for all logical operator nodes.

    Subclasses are immutable; rewrites always build new trees via
    :meth:`with_children` or the node constructors.
    """

    #: Cached output schema, computed on first access.
    _schema: Optional[Schema] = None

    # ------------------------------------------------------------------
    # tree structure
    # ------------------------------------------------------------------
    @property
    def children(self) -> tuple["Expression", ...]:
        """The input expressions of this node (empty for leaves)."""
        raise NotImplementedError

    def with_children(self, *children: "Expression") -> "Expression":
        """Return a copy of this node with the given children."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # schema and evaluation
    # ------------------------------------------------------------------
    def _infer_schema(self) -> Schema:
        raise NotImplementedError

    @property
    def schema(self) -> Schema:
        """The output schema of this expression."""
        if self._schema is None:
            self._schema = self._infer_schema()
        return self._schema

    def evaluate(self, database: DatabaseLike) -> Relation:
        """Evaluate the expression against ``database`` (name → relation)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # traversal helpers used by the rewriter
    # ------------------------------------------------------------------
    def walk(self) -> Iterator["Expression"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def transform_bottom_up(self, fn) -> "Expression":
        """Rebuild the tree bottom-up, applying ``fn`` to every node.

        ``fn`` receives a node whose children have already been transformed
        and returns a replacement node (or the node unchanged).
        """
        new_children = tuple(child.transform_bottom_up(fn) for child in self.children)
        node = self if new_children == self.children else self.with_children(*new_children)
        return fn(node)

    def relation_names(self) -> frozenset[str]:
        """Names of all base relations referenced by the expression."""
        names = set()
        for node in self.walk():
            if isinstance(node, RelationRef):
                names.add(node.name)
        return frozenset(names)

    def size(self) -> int:
        """Number of operator nodes in the tree."""
        return sum(1 for _ in self.walk())

    def contains_division(self) -> bool:
        """True if a small or great divide occurs anywhere in the tree."""
        return any(isinstance(node, (SmallDivide, GreatDivide)) for node in self.walk())

    # ------------------------------------------------------------------
    # canonicalization and fingerprints (implemented in algebra.canonical)
    # ------------------------------------------------------------------
    def canonical(self) -> "Expression":
        """The rename-minimized canonical form of this expression.

        SQL-translated and fluent-built trees for the same query normalize
        to the same canonical tree; see :mod:`repro.algebra.canonical`.
        """
        from repro.algebra.canonical import canonicalize

        return canonicalize(self)

    def fingerprint(self) -> str:
        """Stable hex digest of the canonical form (prepared-plan cache key)."""
        from repro.algebra.canonical import expression_fingerprint

        return expression_fingerprint(self)

    # ------------------------------------------------------------------
    # value semantics and rendering
    # ------------------------------------------------------------------
    def _signature(self) -> tuple:
        """A hashable structural signature; subclasses extend it."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Expression):
            return self._signature() == other._signature()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._signature())

    def to_text(self) -> str:
        """Compact single-line rendering, e.g. ``project[a](divide(r1, r2))``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.to_text()

    def pretty(self, indent: int = 0) -> str:
        """Multi-line indented rendering of the operator tree."""
        pad = "  " * indent
        label = self._pretty_label()
        lines = [f"{pad}{label}"]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def _pretty_label(self) -> str:
        return self.to_text() if not self.children else self.__class__.__name__


# ----------------------------------------------------------------------
# leaves
# ----------------------------------------------------------------------
class RelationRef(Expression):
    """A reference to a named base relation with a declared schema."""

    def __init__(self, name: str, attributes: AttributeNames) -> None:
        if not name:
            raise ExpressionError("relation reference needs a nonempty name")
        self.name = name
        self._declared = as_schema(attributes)

    @property
    def children(self) -> tuple[Expression, ...]:
        return ()

    def with_children(self, *children: Expression) -> "RelationRef":
        if children:
            raise ExpressionError("RelationRef has no children")
        return self

    def _infer_schema(self) -> Schema:
        return self._declared

    def evaluate(self, database: DatabaseLike) -> Relation:
        try:
            relation = database[self.name]
        except KeyError:
            raise ExpressionError(f"unknown relation {self.name!r} in database") from None
        if relation.schema.name_set != self._declared.name_set:
            raise SchemaError(
                f"relation {self.name!r} has schema {relation.schema.names!r} but the query "
                f"declared {self._declared.names!r}"
            )
        return relation

    def _signature(self) -> tuple:
        return ("ref", self.name, self._declared.name_set)

    def to_text(self) -> str:
        return self.name

    def _pretty_label(self) -> str:
        return f"{self.name}{list(self._declared.names)}"


class LiteralRelation(Expression):
    """An inline constant relation (used for one-tuple relations ``(t)``)."""

    def __init__(self, relation: Relation, label: str = "literal") -> None:
        self.relation = relation
        self.label = label

    @property
    def children(self) -> tuple[Expression, ...]:
        return ()

    def with_children(self, *children: Expression) -> "LiteralRelation":
        if children:
            raise ExpressionError("LiteralRelation has no children")
        return self

    def _infer_schema(self) -> Schema:
        return self.relation.schema

    def evaluate(self, database: DatabaseLike) -> Relation:
        return self.relation

    def _signature(self) -> tuple:
        return ("literal", self.relation)

    def to_text(self) -> str:
        return f"{self.label}<{len(self.relation)}>"


# ----------------------------------------------------------------------
# unary operators
# ----------------------------------------------------------------------
class Project(Expression):
    """Projection ``π_A(child)``."""

    def __init__(self, child: Expression, attributes: AttributeNames) -> None:
        self.child = child
        self.attributes = as_schema(attributes)

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, *children: Expression) -> "Project":
        (child,) = children
        return Project(child, self.attributes)

    def _infer_schema(self) -> Schema:
        self.child.schema.require(self.attributes, "projection")
        return self.attributes

    def evaluate(self, database: DatabaseLike) -> Relation:
        return self.child.evaluate(database).project(self.attributes)

    def _signature(self) -> tuple:
        return ("project", self.attributes.name_set, self.child._signature())

    def to_text(self) -> str:
        return f"project[{', '.join(self.attributes.names)}]({self.child.to_text()})"

    def _pretty_label(self) -> str:
        return f"Project[{', '.join(self.attributes.names)}]"


class Select(Expression):
    """Selection ``σ_p(child)``."""

    def __init__(self, child: Expression, predicate: Predicate) -> None:
        if not isinstance(predicate, Predicate):
            raise ExpressionError(
                "Select requires a Predicate AST node (repro.algebra.predicates); "
                "plain callables cannot be analysed by the rewrite rules"
            )
        self.child = child
        self.predicate = predicate

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, *children: Expression) -> "Select":
        (child,) = children
        return Select(child, self.predicate)

    def _infer_schema(self) -> Schema:
        missing = self.predicate.attributes - self.child.schema.name_set
        if missing:
            raise SchemaError(
                f"selection predicate references unknown attributes {sorted(missing)!r}"
            )
        return self.child.schema

    def evaluate(self, database: DatabaseLike) -> Relation:
        return self.child.evaluate(database).select(self.predicate)

    def _signature(self) -> tuple:
        return ("select", self.predicate, self.child._signature())

    def to_text(self) -> str:
        return f"select[{self.predicate!r}]({self.child.to_text()})"

    def _pretty_label(self) -> str:
        return f"Select[{self.predicate!r}]"


class Rename(Expression):
    """Renaming ``ρ(child)``."""

    def __init__(self, child: Expression, mapping: Mapping[str, str]) -> None:
        self.child = child
        self.mapping = dict(mapping)

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, *children: Expression) -> "Rename":
        (child,) = children
        return Rename(child, self.mapping)

    def _infer_schema(self) -> Schema:
        return self.child.schema.rename(self.mapping)

    def evaluate(self, database: DatabaseLike) -> Relation:
        return self.child.evaluate(database).rename(self.mapping)

    def _signature(self) -> tuple:
        return ("rename", tuple(sorted(self.mapping.items())), self.child._signature())

    def to_text(self) -> str:
        renames = ", ".join(f"{old}->{new}" for old, new in sorted(self.mapping.items()))
        return f"rename[{renames}]({self.child.to_text()})"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate of a :class:`GroupBy`: ``function(attribute) → output``.

    ``function`` is one of ``count``, ``count_distinct``, ``sum``, ``min``,
    ``max``, ``avg``, ``collect_set``; ``attribute`` may be ``None`` only for
    ``count`` (meaning ``count(*)``).
    """

    function: str
    attribute: Optional[str]
    output: str

    _FACTORIES = {
        "count": agg_functions.count,
        "count_distinct": agg_functions.count_distinct,
        "sum": agg_functions.sum_of,
        "min": agg_functions.min_of,
        "max": agg_functions.max_of,
        "avg": agg_functions.avg_of,
        "collect_set": agg_functions.collect_set,
    }

    def __post_init__(self) -> None:
        if self.function not in self._FACTORIES:
            raise ExpressionError(f"unknown aggregate function {self.function!r}")
        if self.attribute is None and self.function != "count":
            raise ExpressionError(f"aggregate {self.function!r} requires an input attribute")

    def build(self):
        """Return the ``(label, fn)`` pair for :meth:`Relation.group_by`."""
        factory = self._FACTORIES[self.function]
        if self.function == "count" and self.attribute is None:
            return factory()
        return factory(self.attribute)

    def to_text(self) -> str:
        inner = "*" if self.attribute is None else self.attribute
        return f"{self.function}({inner})->{self.output}"


class GroupBy(Expression):
    """Grouping ``Gγ_F(child)`` with structural aggregate specifications."""

    def __init__(
        self,
        child: Expression,
        grouping: AttributeNames,
        aggregates: Sequence[AggregateSpec],
    ) -> None:
        self.child = child
        self.grouping = as_schema(grouping)
        self.aggregates = tuple(aggregates)
        if not self.aggregates:
            raise ExpressionError("GroupBy requires at least one aggregate")

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, *children: Expression) -> "GroupBy":
        (child,) = children
        return GroupBy(child, self.grouping, self.aggregates)

    def _infer_schema(self) -> Schema:
        self.child.schema.require(self.grouping, "group by")
        for spec in self.aggregates:
            if spec.attribute is not None:
                self.child.schema.require([spec.attribute], f"aggregate {spec.to_text()}")
        return Schema(self.grouping.names + tuple(spec.output for spec in self.aggregates))

    def evaluate(self, database: DatabaseLike) -> Relation:
        return self.child.evaluate(database).group_by(
            self.grouping, {spec.output: spec.build() for spec in self.aggregates}
        )

    def _signature(self) -> tuple:
        return ("group", self.grouping.name_set, self.aggregates, self.child._signature())

    def to_text(self) -> str:
        aggs = ", ".join(spec.to_text() for spec in self.aggregates)
        return f"group[{', '.join(self.grouping.names)}; {aggs}]({self.child.to_text()})"


# ----------------------------------------------------------------------
# binary operators
# ----------------------------------------------------------------------
class _Binary(Expression):
    """Common plumbing for binary operator nodes."""

    _symbol = "?"

    def __init__(self, left: Expression, right: Expression) -> None:
        self.left = left
        self.right = right

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def with_children(self, *children: Expression) -> "Expression":
        left, right = children
        return self.__class__(left, right)

    def _signature(self) -> tuple:
        return (self._symbol, self.left._signature(), self.right._signature())

    def to_text(self) -> str:
        return f"{self._symbol}({self.left.to_text()}, {self.right.to_text()})"

    def _pretty_label(self) -> str:
        return self.__class__.__name__


class _SameSchemaBinary(_Binary):
    """Binary operators that require identical attribute sets."""

    def _infer_schema(self) -> Schema:
        if self.left.schema != self.right.schema:
            raise SchemaError(
                f"{self._symbol}: schemas differ: {self.left.schema.names!r} vs "
                f"{self.right.schema.names!r}"
            )
        return self.left.schema


class Union(_SameSchemaBinary):
    """Set union."""

    _symbol = "union"

    def evaluate(self, database: DatabaseLike) -> Relation:
        return self.left.evaluate(database).union(self.right.evaluate(database))


class Intersection(_SameSchemaBinary):
    """Set intersection."""

    _symbol = "intersect"

    def evaluate(self, database: DatabaseLike) -> Relation:
        return self.left.evaluate(database).intersection(self.right.evaluate(database))


class Difference(_SameSchemaBinary):
    """Set difference."""

    _symbol = "difference"

    def evaluate(self, database: DatabaseLike) -> Relation:
        return self.left.evaluate(database).difference(self.right.evaluate(database))


class Product(_Binary):
    """Cartesian product (disjoint attribute sets)."""

    _symbol = "product"

    def _infer_schema(self) -> Schema:
        if not self.left.schema.is_disjoint(self.right.schema):
            shared = self.left.schema.intersection(self.right.schema).names
            raise SchemaError(f"product: both sides contain attributes {shared!r}")
        return self.left.schema.union(self.right.schema)

    def evaluate(self, database: DatabaseLike) -> Relation:
        return self.left.evaluate(database).product(self.right.evaluate(database))


class ThetaJoin(Expression):
    """Theta-join ``left ⋈_θ right`` over disjoint attribute sets."""

    def __init__(self, left: Expression, right: Expression, predicate: Predicate) -> None:
        if not isinstance(predicate, Predicate):
            raise ExpressionError("ThetaJoin requires a Predicate AST node")
        self.left = left
        self.right = right
        self.predicate = predicate

    @property
    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def with_children(self, *children: Expression) -> "ThetaJoin":
        left, right = children
        return ThetaJoin(left, right, self.predicate)

    def _infer_schema(self) -> Schema:
        if not self.left.schema.is_disjoint(self.right.schema):
            shared = self.left.schema.intersection(self.right.schema).names
            raise SchemaError(f"theta-join: both sides contain attributes {shared!r}")
        combined = self.left.schema.union(self.right.schema)
        missing = self.predicate.attributes - combined.name_set
        if missing:
            raise SchemaError(f"theta-join predicate references unknown attributes {sorted(missing)!r}")
        return combined

    def evaluate(self, database: DatabaseLike) -> Relation:
        return self.left.evaluate(database).theta_join(
            self.right.evaluate(database), self.predicate
        )

    def _signature(self) -> tuple:
        return ("theta_join", self.predicate, self.left._signature(), self.right._signature())

    def to_text(self) -> str:
        return f"theta_join[{self.predicate!r}]({self.left.to_text()}, {self.right.to_text()})"

    def _pretty_label(self) -> str:
        return f"ThetaJoin[{self.predicate!r}]"


class NaturalJoin(_Binary):
    """Natural join on the shared attributes."""

    _symbol = "join"

    def _infer_schema(self) -> Schema:
        return self.left.schema.union(self.right.schema)

    def evaluate(self, database: DatabaseLike) -> Relation:
        return self.left.evaluate(database).natural_join(self.right.evaluate(database))


class SemiJoin(_Binary):
    """Left semi-join ``left ⋉ right``."""

    _symbol = "semijoin"

    def _infer_schema(self) -> Schema:
        return self.left.schema

    def evaluate(self, database: DatabaseLike) -> Relation:
        return self.left.evaluate(database).semijoin(self.right.evaluate(database))


class AntiJoin(_Binary):
    """Left anti-semi-join ``left ▷ right``."""

    _symbol = "antijoin"

    def _infer_schema(self) -> Schema:
        return self.left.schema

    def evaluate(self, database: DatabaseLike) -> Relation:
        return self.left.evaluate(database).antijoin(self.right.evaluate(database))


class LeftOuterJoin(_Binary):
    """Left outer join padding missing partners with NULL."""

    _symbol = "outerjoin"

    def _infer_schema(self) -> Schema:
        return self.left.schema.union(self.right.schema)

    def evaluate(self, database: DatabaseLike) -> Relation:
        return self.left.evaluate(database).left_outer_join(self.right.evaluate(database))


class SmallDivide(_Binary):
    """Small divide ``dividend ÷ divisor`` (Section 2.1 of the paper)."""

    _symbol = "divide"

    def _infer_schema(self) -> Schema:
        dividend, divisor = self.left.schema, self.right.schema
        if len(divisor) == 0:
            raise SchemaError("small divide: divisor schema must be nonempty")
        if not divisor.is_subset(dividend):
            extra = divisor.difference(dividend).names
            raise SchemaError(
                f"small divide: divisor attributes {extra!r} missing from dividend schema"
            )
        quotient = dividend.difference(divisor)
        if len(quotient) == 0:
            raise SchemaError("small divide: quotient schema A must be nonempty")
        return quotient

    def evaluate(self, database: DatabaseLike) -> Relation:
        from repro.division.small import small_divide

        return small_divide(self.left.evaluate(database), self.right.evaluate(database))


class GreatDivide(_Binary):
    """Great divide ``dividend ÷* divisor`` (Section 2.2 of the paper)."""

    _symbol = "great_divide"

    def _infer_schema(self) -> Schema:
        dividend, divisor = self.left.schema, self.right.schema
        shared = dividend.intersection(divisor)
        if len(shared) == 0:
            raise SchemaError("great divide: dividend and divisor must share attributes (B)")
        quotient_a = dividend.difference(shared)
        if len(quotient_a) == 0:
            raise SchemaError("great divide: dividend-only attribute set A must be nonempty")
        return quotient_a.union(divisor.difference(shared))

    def evaluate(self, database: DatabaseLike) -> Relation:
        from repro.division.great import great_divide

        return great_divide(self.left.evaluate(database), self.right.evaluate(database))
