"""Canonicalization of logical expressions, and canonical fingerprints.

The SQL frontend qualifies every attribute with its correlation name
(``s_no`` → ``s.s_no``) by inserting :class:`~repro.algebra.expressions.Rename`
nodes around each table reference, and renames the outputs back at the very
end.  A hand-built fluent-algebra query for the *same* question carries none
of those bookkeeping renames, so the two trees — though equivalent — would
neither compare equal nor produce identical physical plans.

:func:`canonicalize` normalizes both to the same tree by *pulling renames up*:

* adjacent renames are composed, identity renames are dropped;
* a rename below a projection / selection / grouping is hoisted above it
  (the operator's attribute references are mapped back to the underlying
  names);
* a rename below a binary operator is hoisted above it, with a minimal
  compensating rename on the other input so that shared-attribute semantics
  (natural join, semi/anti join, division) are preserved exactly.

Renames therefore accumulate at the root, where the SQL translator's final
output rename cancels them; what remains is the bare algebraic skeleton.
Every step is validated — if hoisting a rename would change the attribute
set of the node (or is structurally unsafe, e.g. it would introduce an
accidental shared attribute), the node is left untouched.  Canonicalization
is best-effort but *always* semantics-preserving.

:func:`expression_fingerprint` derives a stable hex digest from the
canonical tree; the public API's prepared-plan cache uses it as its key, so
``db.sql(Q2)`` and the equivalent fluent query hit the same cache slot.
"""

from __future__ import annotations

import hashlib

from repro.algebra.expressions import (
    AggregateSpec,
    AntiJoin,
    Difference,
    Expression,
    GreatDivide,
    GroupBy,
    Intersection,
    LeftOuterJoin,
    NaturalJoin,
    Product,
    Project,
    Rename,
    Select,
    SemiJoin,
    SmallDivide,
    ThetaJoin,
    Union,
)
from repro.algebra.predicates import Predicate
from repro.errors import ExpressionError, PredicateError, SchemaError
from repro.relation.relation import Relation

__all__ = ["canonicalize", "expression_fingerprint"]

#: Upper bound on pull-up passes (each pass strictly shrinks or preserves
#: the number of Rename nodes; trees in practice settle in 2-3 passes).
_MAX_PASSES = 10

_SHARED_SEMANTICS = (NaturalJoin, SemiJoin, AntiJoin, LeftOuterJoin, SmallDivide, GreatDivide)
_SAME_SCHEMA = (Union, Intersection, Difference)
_TRANSFORM_ERRORS = (SchemaError, ExpressionError, PredicateError, KeyError)


def canonicalize(expression: Expression) -> Expression:
    """Return the canonical (rename-minimized) form of ``expression``."""
    current = expression
    for _ in range(_MAX_PASSES):
        rewritten = current.transform_bottom_up(_pull_up)
        if rewritten == current:
            break
        current = rewritten
    return current


def expression_fingerprint(expression: Expression, *, assume_canonical: bool = False) -> str:
    """A stable hex fingerprint of the canonical form of ``expression``.

    Structurally equal canonical trees — regardless of how they were built
    (SQL translation, fluent builder, hand-written algebra) — fingerprint
    identically; any semantic difference in operators, attributes,
    predicates or literal relations changes the digest.

    Pass ``assume_canonical=True`` when the caller already canonicalized
    the expression (canonicalization is idempotent, so this only skips a
    redundant pull-up pass — it cannot change the digest).
    """
    canonical = expression if assume_canonical else canonicalize(expression)
    encoded = _encode(canonical._signature())
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# the pull-up transformation
# ----------------------------------------------------------------------
def _pull_up(node: Expression) -> Expression:
    """One canonicalization step at ``node`` (children already canonical)."""
    try:
        if isinstance(node, Rename):
            return _simplify_rename(node)
        if isinstance(node, Project):
            return _hoist_through_project(node)
        if isinstance(node, Select):
            return _hoist_through_select(node)
        if isinstance(node, GroupBy):
            return _hoist_through_group_by(node)
        if isinstance(node, _SAME_SCHEMA + _SHARED_SEMANTICS + (Product, ThetaJoin)):
            return _hoist_through_binary(node)
    except _TRANSFORM_ERRORS:
        return node
    return node


def _split_rename(expression: Expression) -> tuple[Expression, dict[str, str]]:
    """Peel a Rename off ``expression``: (base, total old → new mapping)."""
    if isinstance(expression, Rename):
        base = expression.child
        return base, {name: expression.mapping.get(name, name) for name in base.schema.names}
    return expression, {name: name for name in expression.schema.names}


def _wrap(expression: Expression, mapping: dict[str, str], template: Expression) -> Expression:
    """Rename ``expression`` per ``mapping`` (identities stripped) and check
    that the result has exactly the attribute set of ``template``."""
    effective = {old: new for old, new in mapping.items() if old != new}
    result: Expression = Rename(expression, effective) if effective else expression
    if result.schema.name_set != template.schema.name_set:
        raise SchemaError("canonicalization would change the output attribute set")
    return result


def _simplify_rename(node: Rename) -> Expression:
    """Compose adjacent renames and drop identity entries."""
    base, inner = _split_rename(node.child)
    outer = node.mapping
    composed = {name: outer.get(mapped, mapped) for name, mapped in inner.items()}
    return _wrap(base, composed, node)


def _hoist_through_project(node: Project) -> Expression:
    child = node.child
    if isinstance(child, Project):
        # π_B(π_A(x)) = π_B(x) whenever B ⊆ A (guaranteed by schema checks).
        return Project(child.child, node.attributes)
    if node.attributes.name_set == child.schema.name_set:
        # Identity projection: under set semantics it changes nothing.
        return child
    if not isinstance(child, Rename):
        return node
    base, mapping = _split_rename(child)
    inverse = _invert(mapping)
    underlying = [inverse[name] for name in node.attributes.names]
    hoisted = {old: mapping[old] for old in underlying}
    return _wrap(Project(base, underlying), hoisted, node)


def _hoist_through_select(node: Select) -> Expression:
    base, mapping = _split_rename(node.child)
    if not isinstance(node.child, Rename):
        return node
    predicate = node.predicate.rename(_invert(mapping))
    return _wrap(Select(base, predicate), mapping, node)


def _hoist_through_group_by(node: GroupBy) -> Expression:
    base, mapping = _split_rename(node.child)
    if not isinstance(node.child, Rename):
        return node
    inverse = _invert(mapping)
    grouping = [inverse[name] for name in node.grouping.names]
    aggregate_outputs = {spec.output for spec in node.aggregates}
    if any(name in aggregate_outputs for name in grouping):
        return node  # hoisting would collide a grouping name with an aggregate output
    aggregates = tuple(
        AggregateSpec(
            spec.function,
            None if spec.attribute is None else inverse.get(spec.attribute, spec.attribute),
            spec.output,
        )
        for spec in node.aggregates
    )
    hoisted = {old: mapping[old] for old in grouping}
    return _wrap(GroupBy(base, grouping, aggregates), hoisted, node)


def _hoist_through_binary(node: Expression) -> Expression:
    left, right = node.children
    if not isinstance(left, Rename) and not isinstance(right, Rename):
        return node
    base_left, left_map = _split_rename(left)
    base_right, right_map = _split_rename(right)
    left_inverse = _invert(left_map)
    left_names = set(base_left.schema.names)
    left_effective = set(left_map.values())

    if isinstance(node, _SAME_SCHEMA):
        compensate = {old: left_inverse[new] for old, new in right_map.items()}
        rebuilt = type(node)(base_left, _wrap(base_right, compensate, base_left))
        return _wrap(rebuilt, dict(left_map), node)

    if isinstance(node, _SHARED_SEMANTICS):
        shared_effective = left_effective & set(right_map.values())
        compensate: dict[str, str] = {}
        taken = {left_inverse[name] for name in shared_effective}
        for old, new in right_map.items():
            if new in shared_effective:
                compensate[old] = left_inverse[new]
            else:
                # A right-only attribute: prefer its underlying name, but it
                # must neither capture a left attribute (which would create
                # an accidental shared attribute) nor collide on the right.
                for candidate in (old, new):
                    if candidate not in left_names and candidate not in taken:
                        compensate[old] = candidate
                        taken.add(candidate)
                        break
                else:
                    return node
        rebuilt = type(node)(base_left, _wrap_partial(base_right, compensate))
        output = dict(left_map)
        output.update({compensate[old]: new for old, new in right_map.items()})
        output = {old: new for old, new in output.items() if old in rebuilt.schema.name_set}
        return _wrap(rebuilt, output, node)

    # Product / ThetaJoin: disjoint schemas, no shared-attribute semantics.
    compensate = {}
    taken = set(left_names)
    for old, new in right_map.items():
        for candidate in (old, new):
            if candidate not in taken:
                compensate[old] = candidate
                taken.add(candidate)
                break
        else:
            return node
    new_right = _wrap_partial(base_right, compensate)
    if isinstance(node, ThetaJoin):
        effective_to_new = {new: old for old, new in left_map.items() if new != old}
        effective_to_new.update(
            {right_map[old]: new for old, new in compensate.items() if right_map[old] != new}
        )
        predicate = node.predicate.rename(effective_to_new) if effective_to_new else node.predicate
        rebuilt: Expression = ThetaJoin(base_left, new_right, predicate)
    else:
        rebuilt = Product(base_left, new_right)
    output = dict(left_map)
    output.update({compensate[old]: new for old, new in right_map.items()})
    return _wrap(rebuilt, output, node)


def _wrap_partial(expression: Expression, mapping: dict[str, str]) -> Expression:
    """Rename without the output-schema check (used for compensating sides)."""
    effective = {old: new for old, new in mapping.items() if old != new}
    return Rename(expression, effective) if effective else expression


def _invert(mapping: dict[str, str]) -> dict[str, str]:
    inverse = {new: old for old, new in mapping.items()}
    if len(inverse) != len(mapping):
        raise SchemaError(f"rename mapping {mapping!r} is not invertible")
    return inverse


# ----------------------------------------------------------------------
# stable encoding of expression signatures
# ----------------------------------------------------------------------
def _encode(value: object) -> str:
    """Deterministically encode a signature component as a string."""
    if isinstance(value, tuple):
        return "(" + ",".join(_encode(item) for item in value) + ")"
    if isinstance(value, (frozenset, set)):
        return "{" + ",".join(sorted(_encode(item) for item in value)) + "}"
    if isinstance(value, Relation):
        names = tuple(sorted(value.schema.names))
        rows = sorted(repr(row.values_for(names)) for row in value)
        return "rel(" + _encode(names) + ";" + ",".join(rows) + ")"
    if isinstance(value, AggregateSpec):
        return "agg(" + value.to_text() + ")"
    if isinstance(value, Predicate):
        return "pred(" + repr(value) + ")"
    if isinstance(value, (str, int, float, bool)) or value is None:
        return repr(value)
    return f"{type(value).__name__}:{value!r}"
