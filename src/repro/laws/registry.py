"""Registry of every rewrite rule in the library.

The optimizer's default rule set and the benchmark harness both draw from
this registry; tests use it to assert that every law of the paper has an
implementation.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import RewriteError
from repro.laws.base import RewriteRule
from repro.laws.delta import (
    DeltaRule,
    DividendDeleteDelta,
    DividendInsertDelta,
    DivisorDeleteDelta,
    DivisorInsertDelta,
)
from repro.laws.great_divide import (
    Example4JoinPushdown,
    Law13DivisorPartitioning,
    Law14QuotientSelectionPushdown,
    Law15GroupSelectionPushdown,
    Law16SharedSelectionReplication,
    Law17ProductFactorOut,
)
from repro.laws.small_divide import (
    Example1DividendRestriction,
    Example2CommonFactorCancellation,
    Example3JoinElimination,
    Law1DivisorUnionSplit,
    Law2DividendUnionSplit,
    Law3SelectionPushdown,
    Law4ReplicateSelection,
    Law5IntersectionPushdown,
    Law6DifferencePushdown,
    Law7DisjointDifferenceElimination,
    Law8ProductFactorOut,
    Law9ProductElimination,
    Law10SemiJoinCommute,
    Law11GroupedDividend,
    Law12GroupedDivisorKey,
)

__all__ = [
    "all_rules",
    "small_divide_rules",
    "great_divide_rules",
    "delta_rules",
    "pushdown_rules",
    "get_rule",
    "rules_by_reference",
]

_SMALL_DIVIDE_RULE_CLASSES = (
    Law1DivisorUnionSplit,
    Law2DividendUnionSplit,
    Law3SelectionPushdown,
    Law4ReplicateSelection,
    Example1DividendRestriction,
    Law5IntersectionPushdown,
    Law6DifferencePushdown,
    Law7DisjointDifferenceElimination,
    Law8ProductFactorOut,
    Law9ProductElimination,
    Example2CommonFactorCancellation,
    Law10SemiJoinCommute,
    Example3JoinElimination,
    Law11GroupedDividend,
    Law12GroupedDivisorKey,
)

_GREAT_DIVIDE_RULE_CLASSES = (
    Law13DivisorPartitioning,
    Law14QuotientSelectionPushdown,
    Law15GroupSelectionPushdown,
    Law16SharedSelectionReplication,
    Law17ProductFactorOut,
    Example4JoinPushdown,
)


def small_divide_rules() -> list[RewriteRule]:
    """Fresh instances of every small-divide rule, in paper order."""
    return [rule_class() for rule_class in _SMALL_DIVIDE_RULE_CLASSES]


def great_divide_rules() -> list[RewriteRule]:
    """Fresh instances of every great-divide rule, in paper order."""
    return [rule_class() for rule_class in _GREAT_DIVIDE_RULE_CLASSES]


_DELTA_RULE_CLASSES = (
    DividendInsertDelta,
    DividendDeleteDelta,
    DivisorInsertDelta,
    DivisorDeleteDelta,
)


def delta_rules() -> list[DeltaRule]:
    """Fresh instances of the four view-maintenance delta rules.

    Kept out of :func:`all_rules` on purpose: ``apply`` is the identity
    (the rule licenses a counter update, it does not rewrite the tree), so
    feeding them to the fixpoint rewriter would be pure noise.
    """
    return [rule_class() for rule_class in _DELTA_RULE_CLASSES]


def all_rules() -> list[RewriteRule]:
    """Fresh instances of every rule implemented by the library."""
    return small_divide_rules() + great_divide_rules()


def pushdown_rules() -> list[RewriteRule]:
    """The subset of rules that are pure static push-downs.

    These are always safe to apply without data access and form the
    optimizer's default heuristic rule set.
    """
    return [rule for rule in all_rules() if not rule.requires_data]


def get_rule(name: str) -> RewriteRule:
    """Look up a rule instance by its machine-readable name."""
    for rule in all_rules() + list(delta_rules()):
        if rule.name == name:
            return rule
    raise RewriteError(f"no rewrite rule named {name!r}")


def rules_by_reference() -> dict[str, RewriteRule]:
    """Map the paper's law/example labels (e.g. ``"Law 3"``) to rules."""
    return {rule.paper_reference: rule for rule in all_rules()}


def find_applicable(expression, rules: Optional[Iterable[RewriteRule]] = None, context=None):
    """Return the rules from ``rules`` (default: all) matching ``expression``."""
    candidates = list(rules) if rules is not None else all_rules()
    return [rule for rule in candidates if rule.matches(expression, context)]
