"""Rewrite rules for the great divide (Laws 13–17, Example 4)."""

from repro.laws.great_divide.join import Example4JoinPushdown
from repro.laws.great_divide.product import Law17ProductFactorOut
from repro.laws.great_divide.selection import (
    Law14QuotientSelectionPushdown,
    Law15GroupSelectionPushdown,
    Law16SharedSelectionReplication,
)
from repro.laws.great_divide.union import Law13DivisorPartitioning

__all__ = [
    "Law13DivisorPartitioning",
    "Law14QuotientSelectionPushdown",
    "Law15GroupSelectionPushdown",
    "Law16SharedSelectionReplication",
    "Law17ProductFactorOut",
    "Example4JoinPushdown",
]
