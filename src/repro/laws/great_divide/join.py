"""Example 4 — pushing an equi-join below the great divide (Section 5.2.4).

``r1* ⋈_{a1=a2} (r1** ÷* r2) = (r1* ⋈_{a1=a2} r1**) ÷* r2`` whenever the
join predicate references only attributes of ``r1*`` and dividend-only
attributes ``A`` of the great divide.  The paper derives it by composing
the definition of the theta-join with Laws 17 and 14; pushing the join
below the divide pays off when the join is selective, because far fewer
dividend groups have to be tested against the divisor.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.expressions import Expression, GreatDivide, ThetaJoin
from repro.algebra.predicates import Predicate
from repro.laws.base import RewriteContext, RewriteRule

__all__ = ["Example4JoinPushdown"]


class Example4JoinPushdown(RewriteRule):
    """Example 4: r1* ⋈_θ (r1** ÷* r2) = (r1* ⋈_θ r1**) ÷* r2."""

    name = "example_4_join_pushdown"
    paper_reference = "Example 4"
    description = "Push a theta-join on dividend-only attributes below the great divide."
    requires_data = False
    conditions = ("the join predicate references dividend-only (A) attributes",)

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        if not (isinstance(expression, ThetaJoin) and isinstance(expression.right, GreatDivide)):
            return False
        divide: GreatDivide = expression.right  # type: ignore[assignment]
        dividend_only = divide.left.schema.difference(divide.right.schema)
        allowed = expression.left.schema.name_set | dividend_only.name_set
        return expression.predicate.attributes <= allowed

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        if not self.matches(expression, context):
            raise self._reject(
                expression, "join predicate must reference only r1* and dividend-only attributes"
            )
        divide: GreatDivide = expression.right  # type: ignore[assignment]
        return GreatDivide(
            ThetaJoin(expression.left, divide.left, expression.predicate), divide.right
        )

    @staticmethod
    def sides(outer: Expression, dividend: Expression, divisor: Expression, predicate: Predicate):
        """r1* ⋈_θ (r1** ÷* r2)  vs  (r1* ⋈_θ r1**) ÷* r2."""
        lhs = ThetaJoin(outer, GreatDivide(dividend, divisor), predicate)
        rhs = GreatDivide(ThetaJoin(outer, dividend, predicate), divisor)
        return lhs, rhs
