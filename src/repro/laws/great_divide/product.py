"""Law 17 — great divide versus Cartesian product (Section 5.2.3).

``(r1* × r1**) ÷* r2 = r1* × (r1** ÷* r2)`` when the shared attributes
``B`` all come from ``r1**``.  Combined with Laws 15 and 16 it lets the
optimizer rewrite expressions mixing joins and the great divide
(Example 4).
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.expressions import Expression, GreatDivide, Product
from repro.laws.base import RewriteContext, RewriteRule

__all__ = ["Law17ProductFactorOut"]


class Law17ProductFactorOut(RewriteRule):
    """Law 17: factor the non-shared part of a product dividend out of ÷*."""

    name = "law_17_product_factor_out"
    paper_reference = "Law 17"
    description = "(r1* × r1**) ÷* r2 = r1* × (r1** ÷* r2) when B ⊆ attrs(r1**)"
    requires_data = False
    conditions = ("B \u2286 attrs(r1**)",)

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        if not (isinstance(expression, GreatDivide) and isinstance(expression.left, Product)):
            return False
        product: Product = expression.left  # type: ignore[assignment]
        divisor_schema = expression.right.schema
        factor_out, keep = product.left, product.right
        shared_with_keep = keep.schema.intersection(divisor_schema)
        return (
            factor_out.schema.is_disjoint(divisor_schema)
            and len(shared_with_keep) > 0
            and len(keep.schema.difference(divisor_schema)) > 0
        )

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        if not self.matches(expression, context):
            raise self._reject(expression, "shared attributes must come from the right factor")
        product: Product = expression.left  # type: ignore[assignment]
        return Product(product.left, GreatDivide(product.right, expression.right))

    @staticmethod
    def sides(factor: Expression, dividend_part: Expression, divisor: Expression):
        """(r1* × r1**) ÷* r2  vs  r1* × (r1** ÷* r2)."""
        lhs = GreatDivide(Product(factor, dividend_part), divisor)
        rhs = Product(factor, GreatDivide(dividend_part, divisor))
        return lhs, rhs
