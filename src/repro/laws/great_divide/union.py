"""Law 13 — great divide versus union (Section 5.2.1).

``r1 ÷* (r2' ∪ r2'') = (r1 ÷* r2') ∪ (r1 ÷* r2'')`` whenever the divisor
partitions do not share any group identifier:
``π_C(r2') ∩ π_C(r2'') = ∅``.  This is the law that lets an engine spread
the divisor groups over ``n`` nodes and merge the partial quotients.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.expressions import Expression, GreatDivide, Union
from repro.laws.base import RewriteContext, RewriteRule, ensure_context
from repro.laws.conditions import projections_disjoint

__all__ = ["Law13DivisorPartitioning"]


class Law13DivisorPartitioning(RewriteRule):
    """Law 13: distribute a great divide over divisor partitions disjoint on C."""

    name = "law_13_divisor_partitioning"
    paper_reference = "Law 13"
    description = "r1 ÷* (r2' ∪ r2'') = (r1 ÷* r2') ∪ (r1 ÷* r2'') when π_C are disjoint"
    requires_data = True
    conditions = ("\u03c0_C(r2') \u2229 \u03c0_C(r2'') = \u2205 (verified on data)",)

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        context = ensure_context(context)
        if not (isinstance(expression, GreatDivide) and isinstance(expression.right, Union)):
            return False
        union: Union = expression.right  # type: ignore[assignment]
        group_attributes = union.schema.difference(expression.left.schema)
        if len(group_attributes) == 0:
            # No C attributes: the operator degenerates to a small divide and
            # Law 13's precondition cannot be met by nonempty partitions.
            return False
        if not context.can_inspect_data:
            return False
        return projections_disjoint(
            context.evaluate(union.left), context.evaluate(union.right), group_attributes
        )

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        if not self.matches(expression, context):
            raise self._reject(expression, "divisor partitions must be disjoint on C")
        union: Union = expression.right  # type: ignore[assignment]
        return Union(GreatDivide(expression.left, union.left), GreatDivide(expression.left, union.right))

    @staticmethod
    def sides(dividend: Expression, divisor_a: Expression, divisor_b: Expression):
        """r1 ÷* (r2' ∪ r2'')  vs  (r1 ÷* r2') ∪ (r1 ÷* r2'')."""
        lhs = GreatDivide(dividend, Union(divisor_a, divisor_b))
        rhs = Union(GreatDivide(dividend, divisor_a), GreatDivide(dividend, divisor_b))
        return lhs, rhs
