"""Laws 14, 15 and 16 — great divide versus selection (Section 5.2.2).

* **Law 14**: push a predicate over the dividend-only attributes ``A`` into
  the dividend: ``σ_{p(A)}(r1 ÷* r2) = σ_{p(A)}(r1) ÷* r2``.
* **Law 15**: push a predicate over the divisor-only attributes ``C`` into
  the divisor: ``σ_{p(C)}(r1 ÷* r2) = r1 ÷* σ_{p(C)}(r2)``.
* **Law 16**: replicate a predicate over the shared attributes ``B``:
  ``r1 ÷* σ_{p(B)}(r2) = σ_{p(B)}(r1) ÷* σ_{p(B)}(r2)``.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.expressions import Expression, GreatDivide, Select
from repro.laws.base import RewriteContext, RewriteRule

__all__ = ["Law14QuotientSelectionPushdown", "Law15GroupSelectionPushdown", "Law16SharedSelectionReplication"]


class Law14QuotientSelectionPushdown(RewriteRule):
    """Law 14: σ_p(A)(r1 ÷* r2) = σ_p(A)(r1) ÷* r2."""

    name = "law_14_quotient_selection_pushdown"
    paper_reference = "Law 14"
    description = "Push a selection over dividend-only attributes into the dividend."
    requires_data = False
    conditions = ("the predicate references dividend-only (A) attributes",)

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        if not (isinstance(expression, Select) and isinstance(expression.child, GreatDivide)):
            return False
        divide: GreatDivide = expression.child  # type: ignore[assignment]
        a_attributes = divide.left.schema.difference(divide.right.schema)
        return expression.predicate.attributes <= a_attributes.name_set

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        if not self.matches(expression, context):
            raise self._reject(expression, "predicate must reference A attributes only")
        divide: GreatDivide = expression.child  # type: ignore[assignment]
        return GreatDivide(Select(divide.left, expression.predicate), divide.right)

    @staticmethod
    def sides(dividend: Expression, divisor: Expression, predicate):
        """σ_p(r1 ÷* r2)  vs  σ_p(r1) ÷* r2."""
        lhs = Select(GreatDivide(dividend, divisor), predicate)
        rhs = GreatDivide(Select(dividend, predicate), divisor)
        return lhs, rhs


class Law15GroupSelectionPushdown(RewriteRule):
    """Law 15: σ_p(C)(r1 ÷* r2) = r1 ÷* σ_p(C)(r2)."""

    name = "law_15_group_selection_pushdown"
    paper_reference = "Law 15"
    description = "Push a selection over divisor-only attributes into the divisor."
    requires_data = False
    conditions = ("the predicate references divisor-only (C) attributes",)

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        if not (isinstance(expression, Select) and isinstance(expression.child, GreatDivide)):
            return False
        divide: GreatDivide = expression.child  # type: ignore[assignment]
        c_attributes = divide.right.schema.difference(divide.left.schema)
        if len(c_attributes) == 0:
            return False
        return expression.predicate.attributes <= c_attributes.name_set

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        if not self.matches(expression, context):
            raise self._reject(expression, "predicate must reference C attributes only")
        divide: GreatDivide = expression.child  # type: ignore[assignment]
        return GreatDivide(divide.left, Select(divide.right, expression.predicate))

    @staticmethod
    def sides(dividend: Expression, divisor: Expression, predicate):
        """σ_p(r1 ÷* r2)  vs  r1 ÷* σ_p(r2)."""
        lhs = Select(GreatDivide(dividend, divisor), predicate)
        rhs = GreatDivide(dividend, Select(divisor, predicate))
        return lhs, rhs


class Law16SharedSelectionReplication(RewriteRule):
    """Law 16: r1 ÷* σ_p(B)(r2) = σ_p(B)(r1) ÷* σ_p(B)(r2).

    Unlike its small-divide counterpart (Law 4), no nonemptiness
    precondition is needed: the great divide iterates over divisor groups,
    each of which is nonempty by construction, so an empty selected divisor
    simply yields an empty quotient on both sides.
    """

    name = "law_16_shared_selection_replication"
    paper_reference = "Law 16"
    description = "Replicate a selection over the shared attributes B onto the dividend."
    requires_data = False
    conditions = ("the predicate ranges over the shared attributes B",)

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        if not (isinstance(expression, GreatDivide) and isinstance(expression.right, Select)):
            return False
        divisor_select: Select = expression.right  # type: ignore[assignment]
        shared = expression.left.schema.intersection(divisor_select.schema)
        if not divisor_select.predicate.attributes <= shared.name_set:
            return False
        # Idempotence guard: do not re-fire on our own output.
        return not (
            isinstance(expression.left, Select)
            and expression.left.predicate == divisor_select.predicate
        )

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        if not self.matches(expression, context):
            raise self._reject(expression, "predicate must reference shared attributes B only")
        divisor_select: Select = expression.right  # type: ignore[assignment]
        predicate = divisor_select.predicate
        return GreatDivide(Select(expression.left, predicate), divisor_select)

    @staticmethod
    def sides(dividend: Expression, divisor: Expression, predicate):
        """r1 ÷* σ_p(r2)  vs  σ_p(r1) ÷* σ_p(r2)."""
        lhs = GreatDivide(dividend, Select(divisor, predicate))
        rhs = GreatDivide(Select(dividend, predicate), Select(divisor, predicate))
        return lhs, rhs
