"""Delta rules: incremental maintenance of division under table mutations.

The paper's rewrite laws state how division commutes with selection and
set operations; read as *delta equations* they say exactly how a quotient
moves under a single-table delta.  With set semantics (multiplicities in
{0, 1}) and the dictionary encoding of divisor values, each rule reduces
to integer bitmask arithmetic on the per-quotient-key counter table
(:class:`repro.views.counters.CounterTable`):

* dividend insert:   ``(r1 ∪ Δ) ÷ r2``  — mask OR, subset re-check of the
  touched group only;
* dividend delete:   ``(r1 − Δ) ÷ r2``  — mask AND-NOT, eviction check of
  the touched group only;
* divisor grow:      ``r1 ÷ (r2 ∪ Δ)``  — the popcount threshold rises:
  only current members lacking the new bit can drop out;
* divisor shrink:    ``r1 ÷ (r2 − Δ)``  — the threshold falls: only
  non-members can join; one pass over counters, never over the data.

The rules are :class:`~repro.laws.base.RewriteRule` subclasses so they
live in the same registry, carry the same ``conditions`` contract (RP403),
and are checked by the same style of property tests as the 21 rewrite
laws — but ``apply`` is the identity: a delta rule does not rewrite the
tree, it licenses ``MaintainedView`` to update counters instead of
re-running the plan.  ``Database.create_view`` registers a view for
maintenance only when **all four** rules match; otherwise the view runs
in full-recompute fallback mode (RP602 verifies the coverage).
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.expressions import Expression
from repro.laws.base import RewriteContext, RewriteRule

__all__ = [
    "DeltaRule",
    "DividendInsertDelta",
    "DividendDeleteDelta",
    "DivisorInsertDelta",
    "DivisorDeleteDelta",
]


class DeltaRule(RewriteRule):
    """Base class for the four maintenance rules.

    Class attributes ``target`` (``"dividend"`` | ``"divisor"``) and
    ``operation`` (``"insert"`` | ``"delete"``) name the delta the rule
    handles; ``MaintainedView`` requires full {target} × {operation}
    coverage before switching a view to counter maintenance.
    """

    target: str = ""
    operation: str = ""
    requires_data = False
    conditions: tuple[str, ...] = ()

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        # Imported lazily: repro.views imports the laws package (registry),
        # so a module-level import here would be circular.
        from repro.views.shapes import UnsupportedViewShape, analyze_division

        try:
            analyze_division(expression)
        except UnsupportedViewShape:
            return False
        return True

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        if not self.matches(expression, context):
            raise self._reject(expression, "inputs are not base tables under selections/renames")
        # Identity on the tree: the rule's effect is the counter update.
        return expression


class DividendInsertDelta(DeltaRule):
    """``(r1 ∪ Δ) ÷ r2``: OR the new bits in, re-check the touched group."""

    name = "delta_dividend_insert"
    paper_reference = "Laws 5/7 read as delta equations"
    description = (
        "A dividend insert can only add quotient tuples; the touched group's "
        "bitmask grows monotonically, so one subset test per delta row suffices."
    )
    target = "dividend"
    operation = "insert"
    conditions = ("maintainable_inputs", "set_semantics")


class DividendDeleteDelta(DeltaRule):
    """``(r1 − Δ) ÷ r2``: AND the bits out, evict the group if it fails."""

    name = "delta_dividend_delete"
    paper_reference = "Laws 6/8 read as delta equations"
    description = (
        "A dividend delete can only remove quotient tuples; with set semantics "
        "the dropped bit was the group's only copy, so the mask update is exact."
    )
    target = "dividend"
    operation = "delete"
    conditions = ("maintainable_inputs", "set_semantics")


class DivisorInsertDelta(DeltaRule):
    """``r1 ÷ (r2 ∪ Δ)``: the popcount threshold rises for one group."""

    name = "delta_divisor_insert"
    paper_reference = "Law 4 read as a delta equation"
    description = (
        "Growing the divisor is anti-monotone: only current quotient members "
        "lacking the new bit can drop out — one pass over existing counters."
    )
    target = "divisor"
    operation = "insert"
    conditions = ("maintainable_inputs", "popcount_threshold")


class DivisorDeleteDelta(DeltaRule):
    """``r1 ÷ (r2 − Δ)``: the popcount threshold falls for one group."""

    name = "delta_divisor_delete"
    paper_reference = "Law 4 read as a delta equation"
    description = (
        "Shrinking the divisor is monotone: only non-members can join, so the "
        "re-check visits existing counters, never the dividend data."
    )
    target = "divisor"
    operation = "delete"
    conditions = ("maintainable_inputs", "popcount_threshold")
