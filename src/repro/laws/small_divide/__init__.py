"""Rewrite rules for the small divide (Laws 1–12, Examples 1–3)."""

from repro.laws.small_divide.difference import (
    Law6DifferencePushdown,
    Law7DisjointDifferenceElimination,
    predicate_implies,
)
from repro.laws.small_divide.grouping import (
    Law11GroupedDividend,
    Law12GroupedDivisorKey,
    law11_divide,
    law12_divide,
)
from repro.laws.small_divide.intersection import Law5IntersectionPushdown
from repro.laws.small_divide.join import Example3JoinElimination, Law10SemiJoinCommute
from repro.laws.small_divide.product import (
    Example2CommonFactorCancellation,
    Law8ProductFactorOut,
    Law9ProductElimination,
)
from repro.laws.small_divide.selection import (
    Example1DividendRestriction,
    Law3SelectionPushdown,
    Law4ReplicateSelection,
)
from repro.laws.small_divide.union import Law1DivisorUnionSplit, Law2DividendUnionSplit

__all__ = [
    "Law1DivisorUnionSplit",
    "Law2DividendUnionSplit",
    "Law3SelectionPushdown",
    "Law4ReplicateSelection",
    "Example1DividendRestriction",
    "Law5IntersectionPushdown",
    "Law6DifferencePushdown",
    "Law7DisjointDifferenceElimination",
    "Law8ProductFactorOut",
    "Law9ProductElimination",
    "Example2CommonFactorCancellation",
    "Law10SemiJoinCommute",
    "Example3JoinElimination",
    "Law11GroupedDividend",
    "Law12GroupedDivisorKey",
    "law11_divide",
    "law12_divide",
    "predicate_implies",
]
