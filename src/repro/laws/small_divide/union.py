"""Laws 1 and 2 — small divide versus union (Section 5.1.1).

* **Law 1** splits a union *divisor*: ``r1 ÷ (r2' ∪ r2'') =
  (r1 ⋉ (r1 ÷ r2')) ÷ r2''``.  It holds even for overlapping divisor
  partitions and enables pipeline parallelism for group-preserving
  division algorithms (Figure 4 of the paper).
* **Law 2** splits a union *dividend*: ``(r1' ∪ r1'') ÷ r2 =
  (r1' ÷ r2) ∪ (r1'' ÷ r2)``, but only under condition ``c1`` (Figure 5
  shows a violation).  The cheaper sufficient condition ``c2`` —
  disjoint quotient candidates — is what a partitioned table guarantees
  and what enables degree-n parallel scans.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.expressions import Expression, SemiJoin, SmallDivide, Union
from repro.laws.base import RewriteContext, RewriteRule, ensure_context
from repro.laws.conditions import condition_c1, condition_c2

__all__ = ["Law1DivisorUnionSplit", "Law2DividendUnionSplit"]


class Law1DivisorUnionSplit(RewriteRule):
    """Law 1: ``r1 ÷ (r2' ∪ r2'') = (r1 ⋉ (r1 ÷ r2')) ÷ r2''``."""

    name = "law_01_divisor_union_split"
    paper_reference = "Law 1"
    description = "Divide by a union of divisors in two pipelined stages."
    requires_data = False
    conditions = ()  # unconditional: any divisor union splits into pipelined stages

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        return isinstance(expression, SmallDivide) and isinstance(expression.right, Union)

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        if not self.matches(expression, context):
            raise self._reject(expression)
        dividend = expression.left
        divisor_union: Union = expression.right  # type: ignore[assignment]
        first, second = divisor_union.left, divisor_union.right
        return self.sides(dividend, first, second)[1]

    @staticmethod
    def sides(dividend: Expression, divisor_a: Expression, divisor_b: Expression):
        """Both sides of Law 1 built from the dividend and the two divisor parts."""
        lhs = SmallDivide(dividend, Union(divisor_a, divisor_b))
        rhs = SmallDivide(SemiJoin(dividend, SmallDivide(dividend, divisor_a)), divisor_b)
        return lhs, rhs


class Law2DividendUnionSplit(RewriteRule):
    """Law 2: ``(r1' ∪ r1'') ÷ r2 = (r1' ÷ r2) ∪ (r1'' ÷ r2)`` under ``c1``.

    The rule verifies condition ``c1`` against the database in the rewrite
    context; with ``prefer_c2=True`` it only accepts the stricter (cheaper)
    condition ``c2`` — disjoint quotient candidates — which is the condition
    a range- or hash-partitioned table satisfies by construction.
    """

    name = "law_02_dividend_union_split"
    paper_reference = "Law 2"
    description = "Distribute a small divide over a partitioned dividend."
    requires_data = True
    conditions = ("c1: the dividend parts share no quotient-candidate A-value",)

    def __init__(self, prefer_c2: bool = False) -> None:
        self.prefer_c2 = prefer_c2

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        context = ensure_context(context)
        if not (isinstance(expression, SmallDivide) and isinstance(expression.left, Union)):
            return False
        if not context.can_inspect_data:
            return False
        union: Union = expression.left  # type: ignore[assignment]
        part1 = context.evaluate(union.left)
        part2 = context.evaluate(union.right)
        divisor = context.evaluate(expression.right)
        quotient_attributes = expression.schema
        if self.prefer_c2:
            return condition_c2(part1, part2, quotient_attributes)
        return condition_c1(part1, part2, divisor)

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        if not self.matches(expression, context):
            raise self._reject(expression, "condition c1/c2 could not be established")
        union: Union = expression.left  # type: ignore[assignment]
        divisor = expression.right
        return Union(SmallDivide(union.left, divisor), SmallDivide(union.right, divisor))

    @staticmethod
    def sides(part1: Expression, part2: Expression, divisor: Expression):
        """Both sides of Law 2 (callers must ensure condition c1 themselves)."""
        lhs = SmallDivide(Union(part1, part2), divisor)
        rhs = Union(SmallDivide(part1, divisor), SmallDivide(part2, divisor))
        return lhs, rhs
