"""Laws 11 and 12 — small divide versus grouping (Section 5.1.7).

Both laws exploit dividends produced by a grouping operator, whose groups
are therefore singletons, and replace the divide by (at most) a semi-join
plus projection:

* **Law 11** — the dividend is ``Aγ_{f(X)→B}(r0)``: every quotient
  candidate owns exactly one tuple, so the quotient is decided purely by
  the divisor cardinality (Figure 10).
* **Law 12** — the dividend is ``Bγ_{f(X)→A}(r0)`` and ``r2.B`` is a
  foreign key referencing ``r1.B``: every divisor value matches exactly one
  dividend tuple, so the quotient is ``π_A(r1 ⋉ r2)`` when that relation
  has a single tuple and empty otherwise (Figure 11).

Because the right-hand side depends on a *cardinality* (of the divisor, or
of ``π_A(r1 ⋉ r2)``), the rewrite rules consult the context database and
produce the branch that applies — exactly what an optimizer armed with
statistics would do.  The case-analysis semantics themselves are available
as plain functions (:func:`law11_divide`, :func:`law12_divide`) and are what
the property-based tests check against the reference operator.

Deviation from the paper: Law 11's first case states ``r1 ÷ ∅ = r1``; the
quotient schema is ``A``, so we read this as ``π_A(r1)`` (the two have equal
cardinality because each group is a singleton).  Law 12's "otherwise ∅"
branch likewise assumes a nonempty divisor (an empty divisor yields
``π_A(r1)`` under Definition 1); the rule only fires for nonempty divisors.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.catalog import Catalog
from repro.algebra.expressions import (
    Expression,
    GroupBy,
    LiteralRelation,
    Project,
    RelationRef,
    SemiJoin,
    SmallDivide,
)
from repro.division.schemas import small_divide_schemas
from repro.laws.base import RewriteContext, RewriteRule, ensure_context
from repro.laws.conditions import attribute_is_key, inclusion_holds
from repro.relation.relation import Relation
from repro.relation.schema import Schema

__all__ = ["Law11GroupedDividend", "Law12GroupedDivisorKey", "law11_divide", "law12_divide"]


def law11_divide(dividend: Relation, divisor: Relation) -> Relation:
    """The right-hand side of Law 11, evaluated on relation values.

    Requires every quotient candidate of the dividend to own exactly one
    tuple (``A`` is a key of ``r1``).
    """
    schemas = small_divide_schemas(dividend, divisor)
    if len(divisor) == 0:
        return dividend.project(schemas.a)
    if len(divisor) == 1:
        return dividend.semijoin(divisor).project(schemas.a)
    return Relation.empty(schemas.a)


def law12_divide(dividend: Relation, divisor: Relation) -> Relation:
    """The right-hand side of Law 12, evaluated on relation values.

    Requires ``B`` to be a key of the dividend and ``r2.B ⊆ π_B(r1)``; the
    divisor must be nonempty (see the module docstring).
    """
    schemas = small_divide_schemas(dividend, divisor)
    candidates = dividend.semijoin(divisor).project(schemas.a)
    if len(candidates) == 1:
        return candidates
    return Relation.empty(schemas.a)


def _dividend_grouped_by(expression: Expression, attributes: Schema, catalog: Optional[Catalog]) -> bool:
    """Static check that ``attributes`` form a key of the dividend expression."""
    if isinstance(expression, GroupBy):
        return expression.grouping == attributes
    if isinstance(expression, RelationRef) and catalog is not None:
        return catalog.has_key(expression.name, attributes)
    return False


class Law11GroupedDividend(RewriteRule):
    """Law 11: dividend grouped on the quotient attributes ``A``."""

    name = "law_11_grouped_dividend"
    paper_reference = "Law 11"
    description = "r1 ÷ r2 with single-tuple quotient groups becomes a semi-join (or a constant)"
    requires_data = True
    conditions = ("every dividend A-group holds exactly one tuple (verified on data)",)

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        context = ensure_context(context)
        if not isinstance(expression, SmallDivide):
            return False
        quotient_attributes = expression.schema
        if not context.can_inspect_data:
            return _dividend_grouped_by(expression.left, quotient_attributes, context.catalog)
        if _dividend_grouped_by(expression.left, quotient_attributes, context.catalog):
            return True
        return attribute_is_key(context.evaluate(expression.left), quotient_attributes)

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        context = ensure_context(context)
        if not self.matches(expression, context):
            raise self._reject(expression, "quotient attributes must be a key of the dividend")
        if not context.can_inspect_data:
            raise self._reject(
                expression, "the divisor cardinality is needed to pick the Law 11 branch"
            )
        divide: SmallDivide = expression  # type: ignore[assignment]
        divisor_size = len(context.evaluate(divide.right))
        quotient_attributes = divide.schema
        if divisor_size == 0:
            return Project(divide.left, quotient_attributes)
        if divisor_size == 1:
            return Project(SemiJoin(divide.left, divide.right), quotient_attributes)
        empty = Relation.empty(quotient_attributes)
        return LiteralRelation(empty, label="empty_quotient")

    @staticmethod
    def sides(dividend: Expression, divisor: Expression):
        """LHS only; the RHS depends on the divisor cardinality (see law11_divide)."""
        return SmallDivide(dividend, divisor)


class Law12GroupedDivisorKey(RewriteRule):
    """Law 12: divisor attributes are a key of the dividend and a foreign key."""

    name = "law_12_grouped_divisor_key"
    paper_reference = "Law 12"
    description = "r1 ÷ r2 with single-tuple B-groups becomes π_A(r1 ⋉ r2) or ∅"
    requires_data = True
    conditions = ("every divisor B-group holds exactly one tuple (verified on data)",)

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        context = ensure_context(context)
        if not isinstance(expression, SmallDivide):
            return False
        if not context.can_inspect_data:
            return False
        divide: SmallDivide = expression  # type: ignore[assignment]
        divisor_schema = divide.right.schema
        dividend_value = context.evaluate(divide.left)
        divisor_value = context.evaluate(divide.right)
        if divisor_value.is_empty():
            return False
        if not attribute_is_key(dividend_value, divisor_schema):
            return False
        return inclusion_holds(divisor_value, dividend_value, divisor_schema)

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        context = ensure_context(context)
        if not self.matches(expression, context):
            raise self._reject(
                expression, "requires single-tuple B groups and the foreign key r2.B ⊆ π_B(r1)"
            )
        divide: SmallDivide = expression  # type: ignore[assignment]
        quotient_attributes = divide.schema
        candidate = Project(SemiJoin(divide.left, divide.right), quotient_attributes)
        if len(candidate.evaluate(context.database)) == 1:
            return candidate
        return LiteralRelation(Relation.empty(quotient_attributes), label="empty_quotient")

    @staticmethod
    def sides(dividend: Expression, divisor: Expression):
        """LHS only; the RHS depends on data (see law12_divide)."""
        return SmallDivide(dividend, divisor)
