"""Laws 6 and 7 — small divide versus difference (Section 5.1.4).

* **Law 6**: when the two dividends are restrictions of the *same* relation
  by predicates over the quotient attributes ``A`` only (so every quotient
  group is kept or dropped atomically) and ``r1' ⊇ r1''``, the divide
  distributes over the difference:
  ``(r1' − r1'') ÷ r2 = (r1' ÷ r2) − (r1'' ÷ r2)``.
* **Law 7**: when the quotient candidates of the two dividends are disjoint
  (``π_A(r1') ∩ π_A(r1'') = ∅``), the second divide is redundant:
  ``(r1' ÷ r2) − (r1'' ÷ r2) = r1' ÷ r2`` — the short-circuit the paper
  highlights as a large potential saving.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.expressions import Difference, Expression, Select, SmallDivide
from repro.algebra.predicates import And, Predicate
from repro.laws.base import RewriteContext, RewriteRule, ensure_context
from repro.laws.conditions import is_superset_of, projections_disjoint

__all__ = ["Law6DifferencePushdown", "Law7DisjointDifferenceElimination", "predicate_implies"]


def predicate_implies(stronger: Predicate, weaker: Predicate) -> bool:
    """Cheap syntactic implication test: ``stronger ⇒ weaker``.

    True when the predicates are equal or ``stronger`` is a conjunction
    containing ``weaker`` (or all of ``weaker``'s conjuncts).  This is the
    static fallback for Law 6's containment precondition; the data-level
    check in :func:`repro.laws.conditions.is_superset_of` is exact.
    """
    if stronger == weaker:
        return True
    stronger_parts = set(stronger.operands) if isinstance(stronger, And) else {stronger}
    weaker_parts = set(weaker.operands) if isinstance(weaker, And) else {weaker}
    return weaker_parts <= stronger_parts


class Law6DifferencePushdown(RewriteRule):
    """Law 6: distribute a small divide over a difference of A-restrictions."""

    name = "law_06_difference_pushdown"
    paper_reference = "Law 6"
    description = "(σ_p'(A)(r1) − σ_p''(A)(r1)) ÷ r2 = (σ_p'(A)(r1) ÷ r2) − (σ_p''(A)(r1) ÷ r2)"
    requires_data = False
    conditions = ("both operands select over A-attributes of the same dividend r1",)

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        context = ensure_context(context)
        if not (isinstance(expression, SmallDivide) and isinstance(expression.left, Difference)):
            return False
        diff: Difference = expression.left  # type: ignore[assignment]
        left, right = diff.left, diff.right
        if not (isinstance(left, Select) and isinstance(right, Select)):
            return False
        if left.child != right.child:
            return False
        quotient_attributes = expression.schema.name_set
        if not (
            left.predicate.attributes <= quotient_attributes
            and right.predicate.attributes <= quotient_attributes
        ):
            return False
        # containment r1' ⊇ r1'': syntactic implication or a data check
        if predicate_implies(right.predicate, left.predicate):
            return True
        if context.can_inspect_data:
            return is_superset_of(context.evaluate(left), context.evaluate(right))
        return False

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        if not self.matches(expression, context):
            raise self._reject(
                expression,
                "requires σ_p'(A)(r) − σ_p''(A)(r) over the same relation with p'' ⇒ p'",
            )
        diff: Difference = expression.left  # type: ignore[assignment]
        divisor = expression.right
        return Difference(SmallDivide(diff.left, divisor), SmallDivide(diff.right, divisor))

    @staticmethod
    def sides(relation: Expression, predicate_outer, predicate_inner, divisor: Expression):
        """Both sides for dividends ``σ_p'(relation)`` and ``σ_p''(relation)``.

        ``predicate_inner`` must imply ``predicate_outer`` so that the
        precondition ``r1' ⊇ r1''`` holds.
        """
        part_outer = Select(relation, predicate_outer)
        part_inner = Select(relation, predicate_inner)
        lhs = SmallDivide(Difference(part_outer, part_inner), divisor)
        rhs = Difference(SmallDivide(part_outer, divisor), SmallDivide(part_inner, divisor))
        return lhs, rhs


class Law7DisjointDifferenceElimination(RewriteRule):
    """Law 7: drop the subtrahend divide when quotient candidates are disjoint."""

    name = "law_07_disjoint_difference_elimination"
    paper_reference = "Law 7"
    description = "(r1' ÷ r2) − (r1'' ÷ r2) = r1' ÷ r2 when π_A(r1') ∩ π_A(r1'') = ∅"
    requires_data = True
    conditions = ("\u03c0_A(r1') \u2229 \u03c0_A(r1'') = \u2205 (verified on data)",)

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        context = ensure_context(context)
        if not isinstance(expression, Difference):
            return False
        left, right = expression.left, expression.right
        if not (isinstance(left, SmallDivide) and isinstance(right, SmallDivide)):
            return False
        if left.right != right.right:
            return False
        if left.schema != right.schema:
            return False
        if not context.can_inspect_data:
            return False
        return projections_disjoint(
            context.evaluate(left.left), context.evaluate(right.left), left.schema
        )

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        if not self.matches(expression, context):
            raise self._reject(expression, "π_A projections of the dividends must be disjoint")
        return expression.left  # type: ignore[union-attr]

    @staticmethod
    def sides(part1: Expression, part2: Expression, divisor: Expression):
        """(r1' ÷ r2) − (r1'' ÷ r2)  vs  r1' ÷ r2 (callers ensure disjointness)."""
        lhs = Difference(SmallDivide(part1, divisor), SmallDivide(part2, divisor))
        rhs = SmallDivide(part1, divisor)
        return lhs, rhs
