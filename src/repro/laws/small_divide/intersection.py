"""Law 5 — small divide versus intersection (Section 5.1.3).

``(r1' ∩ r1'') ÷ r2 = (r1' ÷ r2) ∩ (r1'' ÷ r2)``: the small divide can be
pushed into an intersection of dividend relations.

Like the paper's proof (which merges the two witnesses ``t1 ∈ r1'`` and
``t1 ∈ r1''`` into one), the equivalence relies on the divisor being
*nonempty*: any shared divisor element witnesses a shared dividend tuple.
For an empty divisor ``π_A(r1' ∩ r1'')`` can be a strict subset of
``π_A(r1') ∩ π_A(r1'')``.  The rule therefore checks divisor nonemptiness
against the context database (or accepts ``assume_nonempty_divisor=True``).
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.expressions import Expression, Intersection, SmallDivide
from repro.laws.base import RewriteContext, RewriteRule, ensure_context

__all__ = ["Law5IntersectionPushdown"]


class Law5IntersectionPushdown(RewriteRule):
    """Law 5: distribute a small divide over an intersection of dividends."""

    name = "law_05_intersection_pushdown"
    paper_reference = "Law 5"
    description = "(r1' ∩ r1'') ÷ r2 = (r1' ÷ r2) ∩ (r1'' ÷ r2)"
    requires_data = True
    conditions = ("both intersection operands share the dividend schema",)

    def __init__(self, assume_nonempty_divisor: bool = False) -> None:
        self.assume_nonempty_divisor = assume_nonempty_divisor

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        if not (isinstance(expression, SmallDivide) and isinstance(expression.left, Intersection)):
            return False
        if self.assume_nonempty_divisor:
            return True
        context = ensure_context(context)
        if not context.can_inspect_data:
            return False
        return not context.evaluate(expression.right).is_empty()

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        if not self.matches(expression, context):
            raise self._reject(expression)
        intersection: Intersection = expression.left  # type: ignore[assignment]
        divisor = expression.right
        return Intersection(
            SmallDivide(intersection.left, divisor), SmallDivide(intersection.right, divisor)
        )

    @staticmethod
    def sides(part1: Expression, part2: Expression, divisor: Expression):
        """(r1' ∩ r1'') ÷ r2  vs  (r1' ÷ r2) ∩ (r1'' ÷ r2)."""
        lhs = SmallDivide(Intersection(part1, part2), divisor)
        rhs = Intersection(SmallDivide(part1, divisor), SmallDivide(part2, divisor))
        return lhs, rhs
