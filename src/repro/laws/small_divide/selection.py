"""Laws 3, 4 and Example 1 — small divide versus selection (Section 5.1.2).

* **Law 3** ("selection push-down"): ``σ_{p(A)}(r1 ÷ r2) = σ_{p(A)}(r1) ÷ r2``.
* **Law 4** ("replicate selection"): ``r1 ÷ σ_{p(B)}(r2) =
  σ_{p(B)}(r1) ÷ σ_{p(B)}(r2)``.
* **Example 1**: a restriction on the *dividend's* ``B`` attributes —
  ``σ_{p(B)}(r1) ÷ r2 = (σ_{p(B)}(r1) ÷ σ_{p(B)}(r2)) −
  π_A(π_A(r1) × σ_{¬p(B)}(r2))`` (Figure 6 of the paper).
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.expressions import (
    Difference,
    Expression,
    Product,
    Project,
    Select,
    SmallDivide,
)
from repro.laws.base import RewriteContext, RewriteRule

__all__ = [
    "Law3SelectionPushdown",
    "Law4ReplicateSelection",
    "Example1DividendRestriction",
]


class Law3SelectionPushdown(RewriteRule):
    """Law 3: push a quotient-attribute selection below the small divide."""

    name = "law_03_selection_pushdown"
    paper_reference = "Law 3"
    description = "σ_p(A)(r1 ÷ r2) = σ_p(A)(r1) ÷ r2"
    requires_data = False
    conditions = ("the predicate references quotient (A) attributes only",)

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        if not (isinstance(expression, Select) and isinstance(expression.child, SmallDivide)):
            return False
        divide: SmallDivide = expression.child  # type: ignore[assignment]
        quotient_attributes = divide.schema.name_set
        return expression.predicate.attributes <= quotient_attributes

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        if not self.matches(expression, context):
            raise self._reject(expression, "predicate must reference quotient attributes only")
        divide: SmallDivide = expression.child  # type: ignore[assignment]
        return SmallDivide(Select(divide.left, expression.predicate), divide.right)

    @staticmethod
    def sides(dividend: Expression, divisor: Expression, predicate):
        """σ_p(r1 ÷ r2)  vs  σ_p(r1) ÷ r2."""
        lhs = Select(SmallDivide(dividend, divisor), predicate)
        rhs = SmallDivide(Select(dividend, predicate), divisor)
        return lhs, rhs


class Law4ReplicateSelection(RewriteRule):
    """Law 4: replicate a divisor selection onto the dividend.

    The paper's proof partitions the dividend into ``σ_p(r1) ∪ σ_¬p(r1)``
    and argues ``σ_¬p(r1) ÷ σ_p(r2) = ∅`` — which requires the *selected
    divisor to be nonempty* (an empty divisor makes every dividend group a
    quotient candidate).  The rule therefore verifies ``σ_p(r2) ≠ ∅``
    against the context database; set ``assume_nonempty_divisor=True`` to
    apply the rewrite without that check (e.g. when a NOT NULL/CHECK
    constraint already guarantees it).
    """

    name = "law_04_replicate_selection"
    paper_reference = "Law 4"
    description = "r1 ÷ σ_p(B)(r2) = σ_p(B)(r1) ÷ σ_p(B)(r2)"
    requires_data = True
    conditions = ("the predicate references divisor (B) attributes only",)

    def __init__(self, assume_nonempty_divisor: bool = False) -> None:
        self.assume_nonempty_divisor = assume_nonempty_divisor

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        from repro.laws.base import ensure_context

        if not (isinstance(expression, SmallDivide) and isinstance(expression.right, Select)):
            return False
        divisor_select: Select = expression.right  # type: ignore[assignment]
        divisor_attributes = divisor_select.schema.name_set
        # The predicate necessarily references divisor attributes only (they
        # are the only attributes in scope); we re-check for robustness.
        if not divisor_select.predicate.attributes <= divisor_attributes:
            return False
        # Idempotence guard: do not re-fire on our own output (the dividend
        # already carries the replicated selection).
        if (
            isinstance(expression.left, Select)
            and expression.left.predicate == divisor_select.predicate
        ):
            return False
        if self.assume_nonempty_divisor:
            return True
        context = ensure_context(context)
        if not context.can_inspect_data:
            return False
        return not context.evaluate(divisor_select).is_empty()

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        if not self.matches(expression, context):
            raise self._reject(expression)
        divisor_select: Select = expression.right  # type: ignore[assignment]
        predicate = divisor_select.predicate
        return SmallDivide(Select(expression.left, predicate), divisor_select)

    @staticmethod
    def sides(dividend: Expression, divisor: Expression, predicate):
        """r1 ÷ σ_p(r2)  vs  σ_p(r1) ÷ σ_p(r2)."""
        lhs = SmallDivide(dividend, Select(divisor, predicate))
        rhs = SmallDivide(Select(dividend, predicate), Select(divisor, predicate))
        return lhs, rhs


class Example1DividendRestriction(RewriteRule):
    """Example 1: a selection on the dividend's ``B`` attributes.

    ``σ_{p(B)}(r1) ÷ r2`` is empty as soon as ``σ_{¬p(B)}(r2)`` is nonempty
    (some required divisor value can never appear in the restricted
    dividend).  The rewrite makes this explicit:

    ``(σ_{p(B)}(r1) ÷ σ_{p(B)}(r2)) − π_A(π_A(r1) × σ_{¬p(B)}(r2))``

    where the second operand "switches off" the whole quotient whenever the
    rejected divisor part is nonempty.
    """

    name = "example_1_dividend_restriction"
    paper_reference = "Example 1"
    description = "σ_p(B)(r1) ÷ r2 rewritten to expose the empty-result short-circuit"
    requires_data = False
    conditions = ("the dividend restriction predicate ranges over B attributes",)

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        if not (isinstance(expression, SmallDivide) and isinstance(expression.left, Select)):
            return False
        dividend_select: Select = expression.left  # type: ignore[assignment]
        divisor_attributes = expression.right.schema.name_set
        if not dividend_select.predicate.attributes <= divisor_attributes:
            return False
        # Idempotence guard: the rewrite's own output has the divisor already
        # restricted by the same predicate — nothing left to expose there.
        return not (
            isinstance(expression.right, Select)
            and expression.right.predicate == dividend_select.predicate
        )

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        if not self.matches(expression, context):
            raise self._reject(expression, "predicate must reference divisor attributes only")
        dividend_select: Select = expression.left  # type: ignore[assignment]
        return self.sides(dividend_select.child, expression.right, dividend_select.predicate)[1]

    @staticmethod
    def sides(dividend: Expression, divisor: Expression, predicate):
        """σ_p(r1) ÷ r2  vs  (σ_p(r1) ÷ σ_p(r2)) − π_A(π_A(r1) × σ_¬p(r2))."""
        lhs = SmallDivide(Select(dividend, predicate), divisor)
        quotient_attributes = lhs.schema
        rhs = Difference(
            SmallDivide(Select(dividend, predicate), Select(divisor, predicate)),
            Project(
                Product(Project(dividend, quotient_attributes), Select(divisor, predicate.negate())),
                quotient_attributes,
            ),
        )
        return lhs, rhs
