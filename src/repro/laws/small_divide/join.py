"""Law 10 and Example 3 — small divide versus joins (Section 5.1.6).

* **Law 10**: a semi-join on quotient attributes commutes with the divide:
  ``(r1 ÷ r2) ⋉ r3 = (r1 ⋉ r3) ÷ r2`` — useful when ``r3`` is small and
  highly selective, so the dividend shrinks before the (expensive) divide.
* **Example 3**: a theta-join between the dividend and a relation that only
  carries divisor attributes can be *compiled away* entirely when the
  divisor references that relation through a foreign key (Figure 9):

  ``(r1* ⋈_θ r1**) ÷ r2 =
    (r1* ÷ π_{B1}(σ_θ(r2))) − π_A(π_A(r1*) × σ_{¬θ}(r2))``
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.expressions import (
    Difference,
    Expression,
    Product,
    Project,
    Select,
    SemiJoin,
    SmallDivide,
    ThetaJoin,
)
from repro.algebra.predicates import Predicate
from repro.laws.base import RewriteContext, RewriteRule, ensure_context
from repro.laws.conditions import inclusion_holds

__all__ = ["Law10SemiJoinCommute", "Example3JoinElimination"]


class Law10SemiJoinCommute(RewriteRule):
    """Law 10: push a quotient-attribute semi-join below the small divide."""

    name = "law_10_semijoin_commute"
    paper_reference = "Law 10"
    description = "(r1 ÷ r2) ⋉ r3 = (r1 ⋉ r3) ÷ r2"
    requires_data = False
    conditions = ("the semi-join key lies within the quotient (A) attributes",)

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        if not (isinstance(expression, SemiJoin) and isinstance(expression.left, SmallDivide)):
            return False
        divide: SmallDivide = expression.left  # type: ignore[assignment]
        filter_schema = expression.right.schema
        quotient_schema = divide.schema
        return len(filter_schema) > 0 and filter_schema.is_subset(quotient_schema)

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        if not self.matches(expression, context):
            raise self._reject(expression, "the filter relation must use quotient attributes only")
        divide: SmallDivide = expression.left  # type: ignore[assignment]
        return SmallDivide(SemiJoin(divide.left, expression.right), divide.right)

    @staticmethod
    def sides(dividend: Expression, divisor: Expression, filter_relation: Expression):
        """(r1 ÷ r2) ⋉ r3  vs  (r1 ⋉ r3) ÷ r2."""
        lhs = SemiJoin(SmallDivide(dividend, divisor), filter_relation)
        rhs = SmallDivide(SemiJoin(dividend, filter_relation), divisor)
        return lhs, rhs


class Example3JoinElimination(RewriteRule):
    """Example 3: eliminate the dividend-side join below a small divide.

    Pattern: ``(r1* ⋈_θ r1**) ÷ r2`` where

    * ``r1**``'s attributes are all divisor attributes (the set ``B2``),
    * the remaining divisor attributes ``B1`` belong to ``r1*``,
    * the join predicate θ references divisor attributes only, and
    * ``π_{B2}(r2) ⊆ r1**`` (foreign key / inclusion dependency).

    The rewrite avoids the join between ``r1*`` and ``r1**`` altogether —
    the paper motivates it with the case where only ``r2`` is indexed.
    """

    name = "example_3_join_elimination"
    paper_reference = "Example 3"
    description = "(r1* ⋈_θ r1**) ÷ r2 = (r1* ÷ π_B1(σ_θ(r2))) − π_A(π_A(r1*) × σ_¬θ(r2))"
    requires_data = True
    conditions = (
        "\u03b8 relates dividend-only to divisor attributes",
        "the \u03c3_\u00ac\u03b8 correction term is evaluated on data",
    )

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        context = ensure_context(context)
        if not (isinstance(expression, SmallDivide) and isinstance(expression.left, ThetaJoin)):
            return False
        join: ThetaJoin = expression.left  # type: ignore[assignment]
        divisor = expression.right
        keep, drop = join.left, join.right
        b2 = drop.schema
        if not b2.is_subset(divisor.schema):
            return False
        b1 = divisor.schema.difference(b2)
        if len(b1) == 0 or not b1.is_subset(keep.schema):
            return False
        if len(keep.schema.difference(divisor.schema)) == 0:
            return False
        if not join.predicate.attributes <= divisor.schema.name_set:
            return False
        if not context.can_inspect_data:
            return False
        divisor_value = context.evaluate(divisor)
        dropped_value = context.evaluate(drop)
        # An entirely empty divisor would turn the left-hand side into
        # π_A(r1* ⋈_θ r1**) but the right-hand side into π_A(r1*); the
        # derivation's Law 4 step needs a nonempty divisor.
        if divisor_value.is_empty():
            return False
        return inclusion_holds(divisor_value, dropped_value, b2)

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        if not self.matches(expression, context):
            raise self._reject(expression, "requires the Example 3 join/foreign-key pattern")
        join: ThetaJoin = expression.left  # type: ignore[assignment]
        return self.sides(join.left, join.right, expression.right, join.predicate)[1]

    @staticmethod
    def sides(keep: Expression, drop: Expression, divisor: Expression, predicate: Predicate):
        """Both sides of Example 3 (callers ensure the FK precondition)."""
        b2 = drop.schema
        b1 = divisor.schema.difference(b2)
        quotient = keep.schema.difference(divisor.schema)
        lhs = SmallDivide(ThetaJoin(keep, drop, predicate), divisor)
        rhs = Difference(
            SmallDivide(keep, Project(Select(divisor, predicate), b1)),
            Project(
                Product(Project(keep, quotient), Select(divisor, predicate.negate())),
                quotient,
            ),
        )
        return lhs, rhs
