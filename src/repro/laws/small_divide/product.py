"""Laws 8, 9 and Example 2 — small divide versus Cartesian product
(Section 5.1.5).

* **Law 8**: when the divisor attributes all come from one product factor,
  only that factor needs to be divided:
  ``(r1* × r1**) ÷ r2 = r1* × (r1** ÷ r2)`` (Figure 7).
* **Law 9**: when one product factor consists solely of divisor attributes
  ``B2`` and the divisor's ``B2``-projection is contained in it, the factor
  and those divisor attributes can be dropped:
  ``(r1* × r1**) ÷ r2 = r1* ÷ π_{B1}(r2)`` (Figure 8).
* **Example 2**: the cancellation ``(r1 × s) ÷ (r2 × s) = r1 ÷ r2`` derived
  from Law 9.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.expressions import Expression, Product, Project, SmallDivide
from repro.laws.base import RewriteContext, RewriteRule, ensure_context
from repro.laws.conditions import inclusion_holds

__all__ = ["Law8ProductFactorOut", "Law9ProductElimination", "Example2CommonFactorCancellation"]


class Law8ProductFactorOut(RewriteRule):
    """Law 8: factor the non-divisor part of a product dividend out of the divide."""

    name = "law_08_product_factor_out"
    paper_reference = "Law 8"
    description = "(r1* × r1**) ÷ r2 = r1* × (r1** ÷ r2) when B ⊆ attrs(r1**)"
    requires_data = False
    conditions = ("B \u2286 attrs(r1**)",)

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        if not (isinstance(expression, SmallDivide) and isinstance(expression.left, Product)):
            return False
        product: Product = expression.left  # type: ignore[assignment]
        divisor_schema = expression.right.schema
        factor_out, keep = product.left, product.right
        # The divisor attributes must all belong to the kept factor and the
        # kept factor must retain at least one non-divisor attribute so that
        # the inner divide has a nonempty quotient schema.
        return (
            divisor_schema.is_subset(keep.schema)
            and factor_out.schema.is_disjoint(divisor_schema)
            and len(keep.schema.difference(divisor_schema)) > 0
        )

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        if not self.matches(expression, context):
            raise self._reject(expression, "divisor attributes must come from the right factor")
        product: Product = expression.left  # type: ignore[assignment]
        return Product(product.left, SmallDivide(product.right, expression.right))

    @staticmethod
    def sides(factor: Expression, dividend_part: Expression, divisor: Expression):
        """(r1* × r1**) ÷ r2  vs  r1* × (r1** ÷ r2)."""
        lhs = SmallDivide(Product(factor, dividend_part), divisor)
        rhs = Product(factor, SmallDivide(dividend_part, divisor))
        return lhs, rhs


class Law9ProductElimination(RewriteRule):
    """Law 9: drop a product factor that only covers divisor attributes.

    Precondition ``π_{B2}(r2) ⊆ r1**`` is established either from a declared
    foreign key in the catalog (when both sides are base tables) or by a
    data check.  To avoid the degenerate corner where both the divisor and
    the dropped factor are empty (the two sides then disagree), the data
    check also requires that not both are empty.
    """

    name = "law_09_product_elimination"
    paper_reference = "Law 9"
    description = "(r1* × r1**) ÷ r2 = r1* ÷ π_B1(r2) when π_B2(r2) ⊆ r1**"
    requires_data = True
    conditions = ("\u03c0_B2(r2) \u2286 r1** (verified on data)",)

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        context = ensure_context(context)
        if not (isinstance(expression, SmallDivide) and isinstance(expression.left, Product)):
            return False
        product: Product = expression.left  # type: ignore[assignment]
        divisor = expression.right
        keep, drop = product.left, product.right
        b2 = drop.schema
        b1 = divisor.schema.difference(b2)
        if not b2.is_subset(divisor.schema):
            return False
        if len(b1) == 0 or not b1.is_subset(keep.schema):
            return False
        if len(keep.schema.difference(divisor.schema)) == 0:
            return False
        if not context.can_inspect_data:
            return False
        divisor_value = context.evaluate(divisor)
        dropped_value = context.evaluate(drop)
        if divisor_value.is_empty() and dropped_value.is_empty():
            return False
        return inclusion_holds(divisor_value, dropped_value, b2)

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        if not self.matches(expression, context):
            raise self._reject(expression, "requires π_B2(r2) ⊆ r1**")
        product: Product = expression.left  # type: ignore[assignment]
        divisor = expression.right
        b1 = divisor.schema.difference(product.right.schema)
        return SmallDivide(product.left, Project(divisor, b1))

    @staticmethod
    def sides(keep: Expression, drop: Expression, divisor: Expression):
        """(r1* × r1**) ÷ r2  vs  r1* ÷ π_B1(r2) (callers ensure the inclusion)."""
        b1 = divisor.schema.difference(drop.schema)
        lhs = SmallDivide(Product(keep, drop), divisor)
        rhs = SmallDivide(keep, Project(divisor, b1))
        return lhs, rhs


class Example2CommonFactorCancellation(RewriteRule):
    """Example 2: cancel a factor common to dividend and divisor.

    ``(r1 × s) ÷ (r2 × s) = r1 ÷ r2``.  Derived from Law 9 in the paper; the
    shared factor ``s`` must be nonempty (otherwise both products are empty
    while ``r1 ÷ r2`` need not be), which the rule checks against the
    context database.
    """

    name = "example_2_common_factor_cancellation"
    paper_reference = "Example 2"
    description = "(r1 × s) ÷ (r2 × s) = r1 ÷ r2"
    requires_data = True
    conditions = ("the factored relation s is identical on both sides (verified on data)",)

    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        context = ensure_context(context)
        if not isinstance(expression, SmallDivide):
            return False
        if not (isinstance(expression.left, Product) and isinstance(expression.right, Product)):
            return False
        dividend: Product = expression.left  # type: ignore[assignment]
        divisor: Product = expression.right  # type: ignore[assignment]
        if dividend.right != divisor.right:
            return False
        core_dividend, core_divisor = dividend.left, divisor.left
        if not core_divisor.schema.is_subset(core_dividend.schema):
            return False
        if len(core_dividend.schema.difference(core_divisor.schema)) == 0:
            return False
        if not context.can_inspect_data:
            return False
        return not context.evaluate(dividend.right).is_empty()

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        if not self.matches(expression, context):
            raise self._reject(expression, "requires a shared nonempty product factor")
        dividend: Product = expression.left  # type: ignore[assignment]
        divisor: Product = expression.right  # type: ignore[assignment]
        return SmallDivide(dividend.left, divisor.left)

    @staticmethod
    def sides(core_dividend: Expression, core_divisor: Expression, shared: Expression):
        """(r1 × s) ÷ (r2 × s)  vs  r1 ÷ r2 (callers ensure s is nonempty)."""
        lhs = SmallDivide(Product(core_dividend, shared), Product(core_divisor, shared))
        rhs = SmallDivide(core_dividend, core_divisor)
        return lhs, rhs
