"""Algebraic laws of the paper, packaged as rewrite rules.

* :mod:`repro.laws.small_divide` — Laws 1–12 and Examples 1–3
* :mod:`repro.laws.great_divide` — Laws 13–17 and Example 4
* :mod:`repro.laws.registry` — rule registry used by the optimizer
* :mod:`repro.laws.conditions` — the preconditions (c1, c2, disjointness,
  inclusion/foreign-key and key checks) as standalone functions
* :mod:`repro.laws.delta` — the laws read as *delta equations*: the four
  maintenance rules behind delta-maintained quotient views
"""

from repro.laws import conditions, delta, great_divide, registry, small_divide
from repro.laws.base import Rewrite, RewriteContext, RewriteRule
from repro.laws.delta import DeltaRule
from repro.laws.registry import (
    all_rules,
    delta_rules,
    find_applicable,
    get_rule,
    great_divide_rules,
    pushdown_rules,
    rules_by_reference,
    small_divide_rules,
)

__all__ = [
    "conditions",
    "small_divide",
    "great_divide",
    "delta",
    "registry",
    "Rewrite",
    "RewriteContext",
    "RewriteRule",
    "DeltaRule",
    "all_rules",
    "small_divide_rules",
    "great_divide_rules",
    "delta_rules",
    "pushdown_rules",
    "get_rule",
    "rules_by_reference",
    "find_applicable",
]
