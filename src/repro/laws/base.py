"""Rewrite-rule framework.

Every algebraic law of the paper is packaged as a :class:`RewriteRule`:

* ``matches(expression, context)`` — does the law's left-hand side pattern
  (including its preconditions) apply to this node?
* ``apply(expression, context)`` — produce the right-hand side.
* ``sides(...)`` — build *both* sides of the equivalence from its
  constituent parts; the property-based tests evaluate the two sides on
  random databases and require equality.

Some laws have **data-dependent preconditions** (e.g. condition ``c1`` of
Law 2 or the disjointness requirement of Law 7).  In a real optimizer these
would be established from constraints, partitioning metadata, or statistics;
here a rule may consult the :class:`RewriteContext`:

* ``context.catalog`` gives declared keys/foreign keys (Laws 9, 11, 12);
* ``context.database`` (if provided) lets the rule *verify* a semantic
  precondition by evaluating subexpressions — rules that need this return
  ``False`` from ``matches`` when no database is available, so the rewriter
  stays conservative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.algebra.catalog import Catalog
from repro.algebra.expressions import DatabaseLike, Expression
from repro.errors import RewriteError

__all__ = ["RewriteContext", "RewriteRule", "Rewrite"]


@dataclass
class RewriteContext:
    """Information a rule may use to establish its preconditions."""

    #: Relation contents, used to verify data-dependent preconditions.
    database: Optional[DatabaseLike] = None
    #: Declared constraints (keys, foreign keys).
    catalog: Optional[Catalog] = None
    #: When True, rules must not evaluate data even if a database is present.
    static_only: bool = False

    @classmethod
    def from_catalog(cls, catalog: Catalog, static_only: bool = False) -> "RewriteContext":
        """A context whose database *and* constraints come from one catalog."""
        return cls(database=catalog, catalog=catalog, static_only=static_only)

    @property
    def can_inspect_data(self) -> bool:
        """True if rules are allowed to evaluate subexpressions on data."""
        return self.database is not None and not self.static_only

    def evaluate(self, expression: Expression):
        """Evaluate a subexpression for a data-dependent precondition check."""
        if not self.can_inspect_data:
            raise RewriteError(
                "this precondition is data-dependent and the rewrite context has no database"
            )
        return expression.evaluate(self.database)


@dataclass(frozen=True)
class Rewrite:
    """The outcome of one successful rule application."""

    rule: str
    before: Expression
    after: Expression
    note: str = ""


class RewriteRule:
    """Base class for all law implementations.

    Class attributes
    ----------------
    name:
        Machine-readable identifier, e.g. ``"law_03_selection_pushdown"``.
    paper_reference:
        Where the equivalence appears in the paper, e.g. ``"Law 3"``.
    description:
        One-sentence statement of the equivalence.
    requires_data:
        True when ``matches`` may need to inspect relation contents.
    conditions:
        The paper's named applicability conditions this rule establishes
        before rewriting (e.g. ``("c1",)``), or an explanatory phrase for
        structural-only laws.  Every concrete law must declare it — an
        empty tuple means "unconditional", and leaving the attribute
        undeclared is an engine-contract violation (RP403) because the
        reader can no longer tell "unconditional" from "forgot to check".
    """

    name: str = "abstract_rule"
    paper_reference: str = ""
    description: str = ""
    requires_data: bool = False
    conditions: tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # interface
    # ------------------------------------------------------------------
    def matches(self, expression: Expression, context: Optional[RewriteContext] = None) -> bool:
        """Return True if the rule (pattern + preconditions) applies here."""
        raise NotImplementedError

    def apply(self, expression: Expression, context: Optional[RewriteContext] = None) -> Expression:
        """Rewrite ``expression``; raises :class:`RewriteError` if it does not match."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def try_apply(
        self, expression: Expression, context: Optional[RewriteContext] = None
    ) -> Optional[Expression]:
        """Apply the rule if it matches, else return None."""
        if self.matches(expression, context):
            return self.apply(expression, context)
        return None

    def _reject(self, expression: Expression, reason: str = "") -> RewriteError:
        detail = f": {reason}" if reason else ""
        return RewriteError(
            f"{self.name} ({self.paper_reference or 'no reference'}) does not apply to "
            f"{expression.to_text()}{detail}"
        )

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} {self.name!r} ({self.paper_reference})>"


def ensure_context(context: Optional[RewriteContext]) -> RewriteContext:
    """Normalize an optional context argument."""
    return context if context is not None else RewriteContext()
