"""Precondition predicates used by the laws (Section 5 of the paper).

These functions operate on *relation values*; the rewrite rules call them
through :class:`~repro.laws.base.RewriteContext` when they are allowed to
inspect data, and the tests call them directly to exercise both the
positive and the negative cases (e.g. Figure 5, where condition ``c1`` is
violated).
"""

from __future__ import annotations

from repro.division.schemas import small_divide_schemas
from repro.relation.relation import Relation
from repro.relation.schema import AttributeNames, as_schema

__all__ = [
    "condition_c1",
    "condition_c2",
    "projections_disjoint",
    "is_superset_of",
    "inclusion_holds",
    "attribute_is_key",
]


def condition_c1(part1: Relation, part2: Relation, divisor: Relation) -> bool:
    """Condition ``c1(r1', r1'')`` of Law 2.

    For every quotient candidate ``a`` appearing in *both* dividend
    partitions, either one of the partitions already contains the whole
    divisor in ``a``'s group, or even the union of the two groups does not —
    i.e. the quotient membership of ``a`` is decided identically with or
    without the union.
    """
    schemas = small_divide_schemas(part1, divisor)
    divisor_values = {row.values_for(schemas.b) for row in divisor}

    def group(relation: Relation, key: tuple) -> set[tuple]:
        return {
            row.values_for(schemas.b)
            for row in relation
            if row.values_for(schemas.a) == key
        }

    shared_candidates = {row.values_for(schemas.a) for row in part1} & {
        row.values_for(schemas.a) for row in part2
    }
    for key in shared_candidates:
        group1 = group(part1, key)
        group2 = group(part2, key)
        in_first = divisor_values <= group1
        in_second = divisor_values <= group2
        in_union = divisor_values <= (group1 | group2)
        if not (in_first or in_second or not in_union):
            return False
    return True


def condition_c2(part1: Relation, part2: Relation, quotient_attributes: AttributeNames) -> bool:
    """Condition ``c2(r1', r1'')`` of Law 2: disjoint quotient candidates.

    ``π_A(r1') ∩ π_A(r1'') = ∅`` — stricter than ``c1`` but cheap to check
    (and trivially guaranteed by range partitioning on ``A``).
    """
    schema = as_schema(quotient_attributes)
    return projections_disjoint(part1, part2, schema)


def projections_disjoint(left: Relation, right: Relation, attributes: AttributeNames) -> bool:
    """``π_attributes(left) ∩ π_attributes(right) = ∅`` (used by Laws 7 and 13)."""
    schema = as_schema(attributes)
    left_values = {row.values_for(schema) for row in left}
    right_values = {row.values_for(schema) for row in right}
    return left_values.isdisjoint(right_values)


def is_superset_of(left: Relation, right: Relation) -> bool:
    """``left ⊇ right`` over identical schemas (precondition of Law 6)."""
    if left.schema != right.schema:
        return False
    return set(right.rows) <= set(left.rows)


def inclusion_holds(source: Relation, target: Relation, attributes: AttributeNames) -> bool:
    """``π_attributes(source) ⊆ π_attributes(target)`` (Law 9 / Law 12 FK check)."""
    schema = as_schema(attributes)
    source_values = {row.values_for(schema) for row in source}
    target_values = {row.values_for(schema) for row in target}
    return source_values <= target_values


def attribute_is_key(relation: Relation, attributes: AttributeNames) -> bool:
    """True if ``attributes`` functionally determine the whole tuple.

    Laws 11 and 12 require the dividend to be the output of a grouping,
    which makes the grouping attributes a key; when the dividend is a base
    table this data-level check is the fallback for a missing declaration.
    """
    schema = as_schema(attributes)
    relation.schema.require(schema, "key check")
    return len(relation.project(schema)) == len(relation)
