"""Deterministic fault injection for the parallel and storage layers.

Public surface::

    from repro.faults import FaultPlan, FaultSpec

    db = repro.connect(catalog, faults=FaultPlan([
        FaultSpec("storage.block_read", "corrupt", limit=1),
    ]))

or, without touching code, ``REPRO_FAULTS="spill.write:raise:0.5"``.
See :mod:`repro.faults.plan` for the plan/spec value types and
:mod:`repro.faults.registry` for the armed-plan machinery and the list
of registered fault points.
"""

from repro.faults.plan import ACTIONS, FaultPlan, FaultSpec
from repro.faults.registry import (
    FAULT_POINTS,
    active_plan,
    clear_plan,
    draw,
    fire,
    injection_counters,
    install_plan,
    reset_counters,
)

__all__ = [
    "ACTIONS",
    "FAULT_POINTS",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "clear_plan",
    "draw",
    "fire",
    "injection_counters",
    "install_plan",
    "reset_counters",
]
