"""The fault-point registry: arming plans and firing decisions.

The engine's failure surfaces each declare one **fault point** — a stable
dotted name listed in :data:`FAULT_POINTS` — and consult this module at
that location.  With no plan installed every consultation is a cheap
``None``-check, so production paths pay one attribute load; with a plan
armed (``connect(faults=...)`` or ``REPRO_FAULTS``), the matching specs
decide deterministically whether to raise, sleep, corrupt a payload or
ask the call site to crash its worker.

Two consultation styles:

* :func:`fire` — for storage/spill call sites that can apply the effect
  in place: ``payload = fire("spill.write", payload)`` raises/sleeps
  here and returns a (possibly corrupted) payload.
* :func:`draw` — for the pool layer, which must *ship* effects to worker
  subprocesses rather than apply them in the coordinator; it returns the
  firing spec (already counted) and lets the caller act.

Injection counts are kept per point and surfaced through
``explain(analyze=True)`` — the executor snapshots
:func:`injection_counters` around each run and reports the delta.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import InjectedFaultError
from repro.faults.plan import FaultPlan, FaultSpec

__all__ = [
    "FAULT_POINTS",
    "active_plan",
    "clear_plan",
    "draw",
    "fire",
    "injection_counters",
    "install_plan",
    "reset_counters",
]

#: Every fault point the engine declares.  A plan naming anything else is
#: flagged by the RP704 verifier check (the registry itself stays lenient
#: so the typo is *reportable* rather than silently inert).
FAULT_POINTS = frozenset(
    {
        "pool.dispatch",  # run_tasks, before a wave of tasks is submitted
        "pool.worker",  # per task, applied inside the worker (or inline)
        "storage.block_read",  # TableReader, before a block payload is decoded
        "storage.manifest_load",  # load_store, before the manifest is parsed
        "storage.table_write",  # save_database, before each table file commit
        "storage.manifest_write",  # save_database, before the manifest replace
        "spill.write",  # SpillWriter.append, around the payload write
        "spill.read",  # SpilledPartition.iter_blocks, per block payload
    }
)

#: Environment variable holding a :meth:`FaultPlan.parse` plan string.
ENV_FAULTS = "REPRO_FAULTS"


@dataclass
class _ArmedSpec:
    """One spec plus its mutable firing state (rng stream, budget left)."""

    spec: FaultSpec
    rng: random.Random
    remaining: Optional[int]


_lock = threading.Lock()
_plan: Optional[FaultPlan] = None
_armed: dict[str, list[_ArmedSpec]] = {}
_counters: dict[str, int] = {}


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Arm ``plan`` process-wide (replacing any previous plan).

    ``None`` (or an empty plan) disarms injection entirely.  Counters
    are preserved across installs so an executor's before/after snapshot
    stays monotone.
    """
    global _plan, _armed
    if plan is not None and not isinstance(plan, FaultPlan):
        raise TypeError(f"expected a FaultPlan or None, got {plan!r}")
    with _lock:
        if plan is None or not plan.specs:
            _plan = None
            _armed = {}
            return
        armed: dict[str, list[_ArmedSpec]] = {}
        for spec in plan.specs:
            # One rng stream per (seed, point, action): decisions at one
            # point never depend on what other points drew.
            rng = random.Random(f"{plan.seed}:{spec.point}:{spec.action}")
            armed.setdefault(spec.point, []).append(
                _ArmedSpec(spec=spec, rng=rng, remaining=spec.limit)
            )
        _plan = plan
        _armed = armed


def clear_plan() -> None:
    """Disarm injection (equivalent to ``install_plan(None)``)."""
    install_plan(None)


def active_plan() -> Optional[FaultPlan]:
    """The currently armed plan, or ``None``."""
    return _plan


def injection_counters() -> dict[str, int]:
    """A snapshot of cumulative injections per point (this process)."""
    with _lock:
        return dict(_counters)


def reset_counters() -> None:
    """Zero the injection counters (tests)."""
    with _lock:
        _counters.clear()


def draw(point: str) -> Optional[FaultSpec]:
    """Decide whether ``point`` fires now; count and return the spec.

    The pool layer uses this to ship effects into worker subprocesses.
    Returns ``None`` with no plan armed or when every matching spec
    declines (probability miss or exhausted limit).
    """
    if _plan is None:
        return None
    with _lock:
        for armed in _armed.get(point, ()):
            if armed.remaining is not None and armed.remaining <= 0:
                continue
            if armed.spec.probability < 1.0 and armed.rng.random() >= armed.spec.probability:
                continue
            if armed.remaining is not None:
                armed.remaining -= 1
            _counters[point] = _counters.get(point, 0) + 1
            return armed.spec
    return None


def fire(point: str, payload: Any = None) -> Any:
    """Consult ``point`` and apply the effect in place.

    * no firing → ``payload`` unchanged;
    * ``delay`` → sleep, then ``payload`` unchanged;
    * ``corrupt`` with a ``bytes`` payload → the payload with one byte
      flipped (so downstream checksums must catch it);
    * anything else (``raise``, ``crash`` outside a worker, ``corrupt``
      without a payload) → :class:`InjectedFaultError`.
    """
    spec = draw(point)
    if spec is None:
        return payload
    if spec.action == "delay":
        time.sleep(spec.delay_seconds)
        return payload
    if spec.action == "corrupt" and isinstance(payload, (bytes, bytearray)) and payload:
        # Flip one bit mid-payload — position chosen from the payload
        # alone so the corruption reproduces across processes and runs.
        corrupted = bytearray(payload)
        corrupted[len(corrupted) // 2] ^= 0x01
        return bytes(corrupted)
    raise InjectedFaultError(f"injected fault at {point}", point=point)


def plan_from_environment() -> Optional[FaultPlan]:
    """The plan described by ``REPRO_FAULTS``, or ``None`` when unset."""
    text = os.environ.get(ENV_FAULTS, "").strip()
    if not text:
        return None
    return FaultPlan.parse(text)


# Arm the environment plan at import time, mirroring REPRO_VERIFY: setting
# REPRO_FAULTS makes *every* run in the process subject to the plan without
# touching call sites.  connect(faults=...) overrides it per install.
_environment_plan = plan_from_environment()
if _environment_plan is not None:
    install_plan(_environment_plan)
