"""Fault plans: the declarative half of the fault-injection harness.

A :class:`FaultPlan` is a value — a seed plus a tuple of
:class:`FaultSpec` entries, each naming a **fault point** (a labelled
location in the engine, e.g. ``storage.block_read``), an **action**
(``raise``, ``delay``, ``corrupt`` or ``crash``), and how often/how many
times it fires.  Plans do nothing by themselves; they are armed through
:func:`repro.faults.registry.install_plan`, typically via
``connect(faults=FaultPlan(...))`` or the ``REPRO_FAULTS`` environment
variable.

Determinism is the whole point: a given ``(plan, seed)`` fires the same
faults at the same decision points on every run, so a chaos failure seen
in CI reproduces locally from the plan string alone.  Each spec draws
from its own :class:`random.Random` seeded from ``(plan seed, point,
action)``, so adding a spec for one point never shifts another point's
decision sequence.

Point names are deliberately **not** validated here: a plan naming an
unregistered point is constructible (and installable) so the RP704
static-analysis check can catch the typo and report it with the list of
registered points — failing loudly at ``verify`` time instead of
silently never firing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ReproError

__all__ = ["ACTIONS", "FaultPlan", "FaultSpec"]

#: The injection actions a spec may request.  ``raise`` throws a typed
#: :class:`~repro.errors.InjectedFaultError`; ``delay`` sleeps
#: ``delay_seconds``; ``corrupt`` flips a byte in the payload at points
#: that carry one (elsewhere it degrades to ``raise``); ``crash`` kills
#: the worker process at ``pool.worker`` (elsewhere it degrades to
#: ``raise`` — the coordinator process is never killed).
ACTIONS = frozenset({"raise", "delay", "corrupt", "crash"})

#: Default sleep for ``delay`` specs parsed from ``REPRO_FAULTS`` (the
#: env syntax has no delay field; programmatic plans set their own).
DEFAULT_DELAY_SECONDS = 0.05


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: at ``point``, perform ``action``.

    ``probability`` is the per-decision firing chance (1.0 = always);
    ``limit`` caps the total number of firings (``None`` = unbounded);
    ``delay_seconds`` is the sleep applied by ``delay`` actions.
    """

    point: str
    action: str = "raise"
    probability: float = 1.0
    limit: Optional[int] = None
    delay_seconds: float = DEFAULT_DELAY_SECONDS

    def __post_init__(self) -> None:
        if not self.point or not isinstance(self.point, str):
            raise ReproError("fault spec needs a non-empty point name")
        if self.action not in ACTIONS:
            raise ReproError(
                f"unknown fault action {self.action!r}; expected one of {sorted(ACTIONS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ReproError(f"fault probability must be in [0, 1], got {self.probability!r}")
        if self.limit is not None and self.limit < 1:
            raise ReproError(f"fault limit must be positive or None, got {self.limit!r}")
        if self.delay_seconds < 0:
            raise ReproError(f"fault delay must be non-negative, got {self.delay_seconds!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the fault specs to arm together."""

    specs: tuple[FaultSpec, ...] = field(default=())
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ReproError(f"fault plan entries must be FaultSpec, got {spec!r}")

    def points(self) -> tuple[str, ...]:
        """The distinct point names this plan touches, sorted."""
        return tuple(sorted({spec.point for spec in self.specs}))

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` environment syntax into a plan.

        Entries are separated by ``;`` or ``,``; each entry is
        ``point[:action[:probability[:limit]]]`` — for example::

            REPRO_FAULTS="storage.block_read:corrupt:0.5;pool.worker:crash:1:1"

        arms a 50%-probability block corruption plus exactly one worker
        crash.  The action defaults to ``raise``, probability to 1.0 and
        the limit to unbounded.
        """
        specs: list[FaultSpec] = []
        for entry in text.replace(";", ",").split(","):
            entry = entry.strip()
            if not entry:
                continue
            parts = entry.split(":")
            if len(parts) > 4:
                raise ReproError(
                    f"malformed REPRO_FAULTS entry {entry!r}; "
                    "expected point[:action[:probability[:limit]]]"
                )
            point = parts[0].strip()
            action = parts[1].strip() if len(parts) > 1 else "raise"
            try:
                probability = float(parts[2]) if len(parts) > 2 else 1.0
                limit = int(parts[3]) if len(parts) > 3 else None
            except ValueError as error:
                raise ReproError(f"malformed REPRO_FAULTS entry {entry!r}: {error}") from None
            specs.append(
                FaultSpec(point=point, action=action, probability=probability, limit=limit)
            )
        return cls(specs=tuple(specs), seed=seed)
