"""Spill-to-disk partitions for the hash-partition exchange.

When an exchange runs under a memory budget
(``connect(memory_budget_mb=...)``), buffered partitions that outgrow it
are flushed to per-partition spill files and the task builders receive a
:class:`SpilledPartition` handle instead of an in-memory tuple list.  The
handle is picklable (it ships to pool workers), sized (``len``/``bool``
behave like the list they replace), and streams its tuples back block by
block — a worker re-reading a spilled partition never holds more than one
block of it in memory.

Spill files reuse the stored-table block encoding
(:func:`repro.storage.format.encode_block` — column-major blocks of
:data:`SPILL_BLOCK_TUPLES` tuples), just without dictionary pages: spills
are written mid-stream, before any table-wide value dictionary could
exist.

Every spill block carries a CRC32, verified on re-read: a spill file a
worker re-streams is the *only* copy of that partition's data, so a torn
or bit-flipped block must surface as a typed
:class:`~repro.errors.StorageCorruptionError` rather than wrong tuples.
A full disk mid-write raises :class:`~repro.errors.StorageError` from
:meth:`SpillWriter.append` (the exchange aborts the writer and the
operator tears the spill directory down), and the ``spill.write`` /
``spill.read`` fault points (:mod:`repro.faults`) hook both directions.
"""

from __future__ import annotations

import zlib
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro.errors import StorageCorruptionError, StorageError
from repro.faults import registry as fault_registry
from repro.storage.format import PathLike, decode_block, encode_block

__all__ = ["SPILL_BLOCK_TUPLES", "SpillWriter", "SpilledPartition"]

#: Tuples per spill block — the unit the peak-buffered-blocks counters and
#: the re-streaming granularity are measured in.
SPILL_BLOCK_TUPLES = 4096

#: No table-wide dictionaries exist for spill blocks.
_NO_DICTIONARIES: dict[str, list[Any]] = {}

#: Block index entry: (offset, payload length, tuple count, payload CRC32).
BlockEntry = tuple[int, int, int, int]


class SpillWriter:
    """Append-only writer for one partition's spill file."""

    __slots__ = ("path", "attributes", "_stream", "_blocks", "tuple_count")

    def __init__(self, directory: PathLike, label: str, attributes: Sequence[str]) -> None:
        self.path = Path(directory) / f"{label}.spill"
        self.attributes = tuple(attributes)
        try:
            self._stream = open(self.path, "wb")
        except OSError as error:
            raise StorageError(f"cannot create spill file {self.path}: {error}") from None
        self._blocks: list[BlockEntry] = []
        self.tuple_count = 0

    @property
    def spilled_blocks(self) -> int:
        return len(self._blocks)

    def append(self, tuples: Sequence[tuple[Any, ...]]) -> None:
        """Write one block of aligned tuples (at most the caller's slice).

        A failed write (disk full, quota, revoked mount) raises a typed
        :class:`StorageError`; the file is in an undefined state after
        that, so callers must :meth:`abort` the writer, never
        :meth:`finish` it.
        """
        if not tuples:
            return
        payload = encode_block(self.attributes, tuples, {})
        # The checksum is taken before the fault point so an injected
        # corruption of the bytes that reach disk is caught on re-read.
        crc = zlib.crc32(payload)
        payload = fault_registry.fire("spill.write", payload)
        try:
            offset = self._stream.tell()
            self._stream.write(payload)
        except OSError as error:
            raise StorageError(
                f"cannot write spill file {self.path} (disk full?): {error}"
            ) from None
        self._blocks.append((offset, len(payload), len(tuples), crc))
        self.tuple_count += len(tuples)

    def spill(self, tuples: Sequence[tuple[Any, ...]]) -> None:
        """Write a buffered partition, sliced into spill blocks."""
        for start in range(0, len(tuples), SPILL_BLOCK_TUPLES):
            self.append(tuples[start : start + SPILL_BLOCK_TUPLES])

    def finish(self) -> "SpilledPartition":
        """Close the file and return the re-streamable handle."""
        self._stream.close()
        return SpilledPartition(str(self.path), self.attributes, tuple(self._blocks))

    def abort(self) -> None:
        """Close and delete a half-written spill file (error unwind)."""
        try:
            self._stream.close()
        except OSError:
            pass
        try:
            self.path.unlink()
        except OSError:
            pass


class SpilledPartition:
    """A picklable, sized, block-streaming handle to one spilled partition.

    Drop-in for the in-memory tuple list a bucket would otherwise be: the
    task builders' ``len(bucket)`` / ``if bucket`` checks work unchanged,
    and :class:`~repro.physical.parallel.exchange.PartitionSource` streams
    :meth:`iter_blocks` instead of slicing a list.
    """

    __slots__ = ("path", "attributes", "blocks", "_count")

    def __init__(
        self,
        path: str,
        attributes: tuple[str, ...],
        blocks: tuple[BlockEntry, ...],
    ) -> None:
        self.path = path
        self.attributes = attributes
        self.blocks = blocks
        self._count = sum(entry[2] for entry in blocks)

    def __reduce__(self):
        return (SpilledPartition, (self.path, self.attributes, self.blocks))

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __repr__(self) -> str:
        return (
            f"<SpilledPartition {self.path} {self._count} tuples "
            f"in {len(self.blocks)} block(s)>"
        )

    def iter_blocks(self) -> Iterator[list[tuple[Any, ...]]]:
        """Stream the spilled tuples back, one checksummed block at a time."""
        if not self.blocks:
            return
        try:
            with open(self.path, "rb") as stream:
                for number, (offset, length, _count, expected) in enumerate(self.blocks):
                    stream.seek(offset)
                    payload = stream.read(length)
                    payload = fault_registry.fire("spill.read", payload)
                    actual = zlib.crc32(payload)
                    if len(payload) != length or actual != expected:
                        raise StorageCorruptionError(
                            f"spill file {self.path} block {number} checksum mismatch "
                            f"(expected {expected:#010x}, got {actual:#010x})",
                            file=self.path,
                            block=number,
                            expected=expected,
                            actual=actual,
                        )
                    yield decode_block(payload, self.attributes, _NO_DICTIONARIES)
        except OSError as error:
            raise StorageError(f"cannot read spill file {self.path}: {error}") from None

    def read_all(self) -> list[tuple[Any, ...]]:
        """Materialize the whole partition (tests and small consumers)."""
        return [values for block in self.iter_blocks() for values in block]
