"""Directory stores: save a catalog to disk, reopen it lazily.

A *store* is a directory holding one block file per table (see
:mod:`repro.storage.format`) plus a small JSON manifest mapping table names
to files and recording the catalog's declared keys and foreign keys, so a
reopened store keeps the same rewrite-law preconditions available.

Saves are **crash-safe**: table files are written under fresh
generation-suffixed names (never overwriting the files the current
manifest references), fsynced, and the manifest — carrying a SHA-256
content digest — is committed last via an atomic ``os.replace``.  A save
interrupted at any point (see the ``storage.table_write`` and
``storage.manifest_write`` fault points) leaves the previous manifest and
its files untouched, so the store reopens at its pre-save state; files a
failed or superseded save left behind are swept opportunistically after
the next successful commit.

Reopening yields :class:`StoredRelation` values: schema, cardinality and
statistics come straight from the file headers (no data read), and the
tuples materialize only if something actually asks for rows — the planner
routes stored tables through :class:`~repro.storage.scan.StoredScan`,
which streams blocks, so ordinary query execution never materializes them.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import re
from pathlib import Path
from typing import Any, Optional

from repro.algebra.catalog import Catalog
from repro.errors import StorageCorruptionError, StorageError
from repro.faults import registry as fault_registry
from repro.optimizer.statistics import TableStatistics
from repro.relation.relation import Relation
from repro.relation.row import Row
from repro.relation.schema import Schema
from repro.storage.format import DEFAULT_BLOCK_SIZE, PathLike, TableReader, write_table_file

__all__ = [
    "MANIFEST_NAME",
    "StoredRelation",
    "load_catalog",
    "load_store",
    "save_database",
    "statistics_from_payload",
    "statistics_payload",
]

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1


# ----------------------------------------------------------------------
# statistics payload <-> TableStatistics
# ----------------------------------------------------------------------
def statistics_payload(statistics: TableStatistics) -> dict[str, Any]:
    """A plain-dict rendering of exact table statistics for the file header."""
    return {
        "cardinality": statistics.cardinality,
        "distinct_values": dict(statistics.distinct_values),
        "minima": dict(statistics.minima),
        "maxima": dict(statistics.maxima),
        "sorted_attributes": sorted(statistics.sorted_attributes),
        "lexicographic_prefix": list(statistics.lexicographic_prefix),
        "top_frequencies": dict(statistics.top_frequencies),
    }


def statistics_from_payload(payload: dict[str, Any]) -> TableStatistics:
    """Inverse of :func:`statistics_payload`."""
    try:
        return TableStatistics(
            cardinality=payload["cardinality"],
            distinct_values=dict(payload["distinct_values"]),
            minima=dict(payload["minima"]),
            maxima=dict(payload["maxima"]),
            sorted_attributes=frozenset(payload["sorted_attributes"]),
            lexicographic_prefix=tuple(payload["lexicographic_prefix"]),
            top_frequencies=dict(payload["top_frequencies"]),
        )
    except (KeyError, TypeError) as error:
        raise StorageError(f"malformed statistics payload in stored table: {error}") from None


# ----------------------------------------------------------------------
# lazy stored relations
# ----------------------------------------------------------------------
class StoredRelation(Relation):
    """A relation backed by a stored table file, materialized on demand.

    The subclass shadows the ``_rows``/``_tuples`` slots with properties,
    so every inherited algebra method works unchanged — the first one that
    actually touches rows triggers a full block read.  Length, schema and
    :meth:`stored_statistics` are answered from the header alone, which is
    what keeps ``repro.connect(path)`` and ``db.analyze()`` metadata-only.

    Derived relations (projections, quotients, …) are always plain
    in-memory :class:`Relation` values: the base class builds results via
    ``Relation._from_parts`` explicitly.
    """

    __slots__ = ("_reader", "_cached_rows", "_cached_tuples")

    def __init__(self, reader: TableReader) -> None:
        self._schema = Schema.interned(reader.attributes)
        self._reader = reader
        self._cached_rows: Optional[frozenset[Row]] = None
        self._cached_tuples: Optional[list[tuple[Any, ...]]] = None

    # -- lazy materialization ------------------------------------------
    @property
    def _rows(self) -> frozenset[Row]:
        rows = self._cached_rows
        if rows is None:
            schema = self._schema
            from_schema = Row.from_schema
            rows = frozenset(from_schema(schema, values) for values in self.aligned_tuples())
            self._cached_rows = rows
        return rows

    @property
    def _tuples(self) -> Optional[list[tuple[Any, ...]]]:
        return self._cached_tuples

    @_tuples.setter
    def _tuples(self, value: Optional[list[tuple[Any, ...]]]) -> None:
        self._cached_tuples = value

    def aligned_tuples(self) -> list[tuple[Any, ...]]:
        """All tuples in stored (block) order — reads every block, cached."""
        tuples = self._cached_tuples
        if tuples is None:
            tuples = [values for _meta, block in self._reader.iter_blocks() for values in block]
            self._cached_tuples = tuples
        return tuples

    # -- metadata-only answers -----------------------------------------
    def __len__(self) -> int:
        return self._reader.tuple_count

    def __bool__(self) -> bool:
        return self._reader.tuple_count > 0

    @property
    def reader(self) -> TableReader:
        """The underlying block-file reader."""
        return self._reader

    @property
    def is_loaded(self) -> bool:
        """Whether the tuples have been materialized into memory."""
        return self._cached_rows is not None or self._cached_tuples is not None

    def stored_statistics(self) -> TableStatistics:
        """Exact statistics from the file header — a metadata read.

        :meth:`TableStatistics.from_relation` dispatches here for stored
        relations, so ``ANALYZE`` on a stored table touches no block.
        """
        payload = self._reader.statistics_payload
        if payload is None:
            # Saved without statistics (foreign writer): one full read.
            plain = Relation.from_aligned(self.attributes, self.aligned_tuples())
            return TableStatistics.from_relation(plain)
        return statistics_from_payload(payload)

    def sample_tuples(self, limit: int) -> list[tuple[Any, ...]]:
        """Up to ``limit`` leading tuples without materializing the table."""
        if self._cached_tuples is not None:
            return self._cached_tuples[:limit]
        return self._reader.sample_tuples(limit)

    def __repr__(self) -> str:
        state = "loaded" if self.is_loaded else "on disk"
        return (
            f"<StoredRelation {self._reader.table!r} {self._schema.names!r} "
            f"{len(self)} tuples, {len(self._reader.blocks)} blocks, {state}>"
        )


# ----------------------------------------------------------------------
# save / open
# ----------------------------------------------------------------------
#: Monotone per-process save counter; with the pid it forms a generation
#: tag that keeps every save's files distinct from the committed ones.
_generation_counter = itertools.count(1)


def _table_filename(index: int, name: str, generation: str) -> str:
    safe = re.sub(r"[^A-Za-z0-9_.-]", "_", name) or "table"
    return f"{index:04d}-{safe}.g{generation}.rpb"


def _manifest_digest(manifest: dict[str, Any]) -> str:
    """SHA-256 over the manifest's canonical JSON (minus the digest itself)."""
    body = {key: value for key, value in manifest.items() if key != "digest"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _fsync_directory(path: Path) -> None:
    """Flush a directory's entry table; best-effort (not all OSes allow it)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _sweep_orphans(path: Path, keep: "set[str]") -> None:
    """Remove block/temp files no manifest references (failed saves).

    Runs only after a successful commit, so anything matching the store's
    file patterns but absent from the just-committed manifest is debris
    from an interrupted or superseded save.  Best-effort: a file that
    vanishes or resists deletion is simply left for the next sweep.
    """
    for candidate in itertools.chain(path.glob("*.rpb"), path.glob(f"{MANIFEST_NAME}.g*.tmp")):
        if candidate.name in keep:
            continue
        try:
            candidate.unlink()
        except OSError:
            continue


def save_database(
    path: PathLike,
    catalog: Catalog,
    block_size: int = DEFAULT_BLOCK_SIZE,
    table_versions: "dict[str, int] | None" = None,
    views: "list[dict[str, object]] | None" = None,
) -> Path:
    """Save every table of ``catalog`` to the store directory ``path``.

    Tuples are written in each relation's scan order (so a pre-clustered
    relation gets tight, disjoint zone maps), exact statistics are gathered
    once and embedded in each file header, and the manifest — written last
    — records the table files plus declared keys and foreign keys.

    The save is atomic at the manifest boundary: every table file goes to
    a fresh generation-suffixed name and is fsynced, the manifest (with
    its content digest) is staged to a temp file and committed with
    ``os.replace``, and any failure before the commit deletes this save's
    files and leaves the previously committed store byte-identical.

    ``table_versions`` and ``views`` are the session layer's mutation
    counters and maintained-view payloads (:mod:`repro.views.persist`);
    both are optional manifest keys, so stores written by older code load
    fine (``load_store`` defaults them) and the manifest format number is
    unchanged.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    generation = f"{os.getpid():x}-{next(_generation_counter):04x}"
    staged_manifest = path / f"{MANIFEST_NAME}.g{generation}.tmp"
    tables: dict[str, str] = {}
    written: list[Path] = []
    try:
        for index, name in enumerate(sorted(catalog)):
            relation = catalog[name]
            statistics = TableStatistics.from_relation(relation)
            filename = _table_filename(index, name, generation)
            fault_registry.fire("storage.table_write")
            written.append(path / filename)
            write_table_file(
                path / filename,
                name,
                relation.schema.names,
                relation.aligned_tuples(),
                block_size=block_size,
                statistics=statistics_payload(statistics),
            )
            tables[name] = filename
        manifest: dict[str, Any] = {
            "format": MANIFEST_VERSION,
            "tables": tables,
            "keys": {
                name: [list(key) for key in keys]
                for name, keys in catalog.declared_keys.items()
            },
            "foreign_keys": [
                {
                    "table": fk.table,
                    "attributes": list(fk.attributes),
                    "ref_table": fk.ref_table,
                    "ref_attributes": list(fk.ref_attributes),
                }
                for fk in catalog.foreign_keys
            ],
        }
        if table_versions:
            unknown = sorted(set(table_versions) - set(catalog))
            if unknown:
                raise StorageError(f"table_versions names unknown table(s) {unknown!r}")
            manifest["table_versions"] = {
                name: int(version) for name, version in table_versions.items()
            }
        if views:
            manifest["views"] = list(views)
        manifest["digest"] = _manifest_digest(manifest)
        with open(staged_manifest, "w", encoding="utf-8") as stream:
            stream.write(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
            stream.flush()
            os.fsync(stream.fileno())
        fault_registry.fire("storage.manifest_write")
        os.replace(staged_manifest, path / MANIFEST_NAME)
        _fsync_directory(path)
    except BaseException:
        # Undo this save's files; the committed store is untouched.
        for file in written:
            try:
                file.unlink()
            except OSError:
                pass
        try:
            staged_manifest.unlink()
        except OSError:
            pass
        raise
    _sweep_orphans(path, keep=set(tables.values()))
    return path


def load_catalog(path: PathLike) -> Catalog:
    """Reopen a store directory as a catalog of lazy stored relations."""
    catalog, _versions, _views = load_store(path)
    return catalog


def load_store(
    path: PathLike,
) -> "tuple[Catalog, dict[str, int], list[dict[str, object]]]":
    """Reopen a store: (catalog, table versions, maintained-view payloads).

    ``table_versions`` and ``views`` are optional manifest keys (written
    by sessions that mutated tables or registered views); stores from
    older writers yield ``{}`` and ``[]``.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise StorageError(f"{path} is not a saved store (no {MANIFEST_NAME})")
    try:
        raw = manifest_path.read_bytes()
    except OSError as error:
        raise StorageError(f"cannot read store manifest {manifest_path}: {error}") from None
    raw = fault_registry.fire("storage.manifest_load", raw)
    try:
        manifest = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise StorageError(f"cannot read store manifest {manifest_path}: {error}") from None
    if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_VERSION:
        raise StorageError(f"{manifest_path} has an unsupported manifest format")
    # Structural checks first — a hand-edited manifest gets the precise
    # field-level error; the digest check then catches any other content
    # change *before* a single table file is opened.
    versions_raw = manifest.get("table_versions", {})
    if not isinstance(versions_raw, dict):
        raise StorageError(f"{manifest_path}: table_versions must be an object")
    views_raw = manifest.get("views", [])
    if not isinstance(views_raw, list):
        raise StorageError(f"{manifest_path}: views must be a list")
    recorded = manifest.get("digest")
    if recorded is not None:
        recomputed = _manifest_digest(manifest)
        if recorded != recomputed:
            raise StorageCorruptionError(
                f"{manifest_path} digest mismatch: manifest records {recorded}, "
                f"content hashes to {recomputed}",
                file=str(manifest_path),
                expected=recorded,
                actual=recomputed,
            )
    catalog = Catalog()
    for name, filename in manifest.get("tables", {}).items():
        reader = TableReader(path / filename)
        catalog.add_table(name, StoredRelation(reader))
    for name, keys in manifest.get("keys", {}).items():
        for key in keys:
            catalog.declare_key(name, key)
    for fk in manifest.get("foreign_keys", []):
        catalog.declare_foreign_key(
            fk["table"], fk["attributes"], fk["ref_table"], fk["ref_attributes"]
        )
    versions = {str(name): int(version) for name, version in versions_raw.items()}
    return catalog, versions, list(views_raw)
