"""On-disk columnar block format for stored tables.

A table file mirrors the in-memory :class:`~repro.physical.base.Chunk`
layout: the tuples of one relation, in their saved (typically clustered)
order, cut into fixed-size blocks.  Each block is stored column-major with
per-column **dictionary pages** — a column whose values are hashable is
encoded as integer codes into a table-wide value dictionary, exactly like
the PR 3 dictionary-encoded chunk format — so repeated values cost one
integer per occurrence.

File layout (format 2, magic ``RPROBLK2``)::

    MAGIC (8 bytes)
    header length (8 bytes, big-endian)
    header CRC32 (4 bytes, big-endian, over the pickled header)
    header (pickled dict: attributes, block index, dictionary pages,
            zone maps, per-block CRC32 checksums, statistics payload)
    block payloads, concatenated (offsets in the header are relative
    to the first payload byte)

Format-1 files (magic ``RPROBLK1``, no header CRC, no block checksums)
remain fully readable; the header CRC sits *before* the pickled header so
a torn header is rejected by checksum — never fed to ``pickle.loads`` —
and a corrupted format field cannot masquerade as the other version
(the magic, outside the checksummed region, picks the layout).  Block
payload checksums are verified on every read; a mismatch raises
:class:`~repro.errors.StorageCorruptionError` naming the file, block
number and expected-vs-actual CRC.  The ``storage.block_read`` fault
point (:mod:`repro.faults`) hooks each payload read.

Every block's header entry carries a per-attribute ``(min, max)`` **zone
map**, computed at save time; attributes whose block values are not
mutually comparable are simply omitted from that block's zones, which keeps
pruning conservative.  :func:`block_may_match` is the matching side: it
walks a predicate structurally and answers "could any tuple in a block with
these zones satisfy it?", defaulting to ``True`` whenever it cannot tell.

This module is deliberately free of optimizer/physical imports — the
statistics payload stays a plain dict here and is converted by
:mod:`repro.storage.store`.
"""

from __future__ import annotations

import os
import pickle
import zlib
from pathlib import Path
from typing import Any, Callable, Iterator, Optional, Sequence, Union

from repro.algebra.predicates import (
    And,
    AttributeRef,
    Comparison,
    FalsePredicate,
    Literal,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.errors import StorageCorruptionError, StorageError
from repro.faults import registry as fault_registry

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "FORMAT_VERSION",
    "LEGACY_FORMAT_VERSION",
    "LEGACY_MAGIC",
    "MAGIC",
    "TableReader",
    "block_may_match",
    "block_zones",
    "build_dictionaries",
    "decode_block",
    "encode_block",
    "write_table_file",
]

#: Format 1 (PR 8): no header CRC, no block checksums.  Still readable.
LEGACY_MAGIC = b"RPROBLK1"
LEGACY_FORMAT_VERSION = 1

MAGIC = b"RPROBLK2"
FORMAT_VERSION = 2

#: Tuples per block.  4096 aligned tuples keeps a block in the hundreds of
#: kilobytes for typical schemas — large enough that the per-block pickle
#: overhead vanishes, small enough that zone maps prune at useful
#: granularity on clustered tables.
DEFAULT_BLOCK_SIZE = 4096

_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Keys every header must carry; a file missing one is malformed.
_HEADER_KEYS = ("format", "table", "attributes", "block_size", "tuple_count", "dictionaries", "blocks")

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def build_dictionaries(
    attributes: Sequence[str], tuples: Sequence[tuple[Any, ...]]
) -> dict[str, dict[Any, int]]:
    """Value → code mapping per dictionary-encodable column.

    A column qualifies when every value is hashable; columns with an
    unhashable value anywhere are stored raw.  Codes are assigned in first
    appearance order, so the page round-trips deterministically.
    """
    encodings: dict[str, dict[Any, int]] = {}
    for position, name in enumerate(attributes):
        mapping: dict[Any, int] = {}
        try:
            for values in tuples:
                value = values[position]
                if value not in mapping:
                    mapping[value] = len(mapping)
        except TypeError:
            continue
        encodings[name] = mapping
    return encodings


def encode_block(
    attributes: Sequence[str],
    tuples: Sequence[tuple[Any, ...]],
    encodings: dict[str, dict[Any, int]],
) -> bytes:
    """One block, column-major, dictionary codes where a page exists."""
    columns: list[list[Any]] = []
    for position, name in enumerate(attributes):
        mapping = encodings.get(name)
        if mapping is None:
            columns.append([values[position] for values in tuples])
        else:
            columns.append([mapping[values[position]] for values in tuples])
    return pickle.dumps(columns, protocol=_PROTOCOL)


def decode_block(
    payload: bytes,
    attributes: Sequence[str],
    dictionaries: dict[str, list[Any]],
) -> list[tuple[Any, ...]]:
    """Inverse of :func:`encode_block`: payload bytes → aligned tuples."""
    columns = pickle.loads(payload)
    decoded: list[list[Any]] = []
    for name, column in zip(attributes, columns):
        page = dictionaries.get(name)
        if page is not None:
            column = [page[code] for code in column]
        decoded.append(column)
    return list(zip(*decoded))


def block_zones(
    attributes: Sequence[str], tuples: Sequence[tuple[Any, ...]]
) -> dict[str, tuple[Any, Any]]:
    """Per-attribute ``(min, max)`` over one block.

    Attributes whose values are not mutually comparable (mixed types,
    ``None``) are omitted — absence means "no pruning", never wrong
    pruning.
    """
    zones: dict[str, tuple[Any, Any]] = {}
    for position, name in enumerate(attributes):
        column = [values[position] for values in tuples]
        try:
            zones[name] = (min(column), max(column))
        except (TypeError, ValueError):
            continue
    return zones


def write_table_file(
    path: PathLike,
    table: str,
    attributes: Sequence[str],
    tuples: Sequence[tuple[Any, ...]],
    block_size: int = DEFAULT_BLOCK_SIZE,
    statistics: Optional[dict[str, Any]] = None,
    checksums: bool = True,
    fsync: bool = True,
) -> Path:
    """Write one table to ``path`` in the block format described above.

    ``tuples`` are written in the order given — save a clustered relation
    and the zone maps become disjoint ranges that prune hard.

    ``checksums=False`` writes the legacy format-1 layout (no header CRC,
    no per-block checksums) — kept as the no-overhead baseline for the
    ``--faults`` benchmark gate and to exercise the legacy read path;
    ``fsync=False`` skips the flush-to-disk barrier (spill-grade scratch
    data that never outlives the process).
    """
    if block_size < 1:
        raise StorageError(f"block size must be at least 1, got {block_size}")
    attributes = tuple(attributes)
    encodings = build_dictionaries(attributes, tuples)
    payloads: list[bytes] = []
    index: list[dict[str, Any]] = []
    offset = 0
    for start in range(0, len(tuples), block_size):
        block = tuples[start : start + block_size]
        payload = encode_block(attributes, block, encodings)
        entry = {
            "offset": offset,
            "length": len(payload),
            "count": len(block),
            "zones": block_zones(attributes, block),
        }
        if checksums:
            entry["crc"] = zlib.crc32(payload)
        index.append(entry)
        payloads.append(payload)
        offset += len(payload)
    header = {
        "format": FORMAT_VERSION if checksums else LEGACY_FORMAT_VERSION,
        "table": table,
        "attributes": attributes,
        "block_size": block_size,
        "tuple_count": len(tuples),
        "dictionaries": {name: list(mapping) for name, mapping in encodings.items()},
        "blocks": index,
        "statistics": statistics,
    }
    header_bytes = pickle.dumps(header, protocol=_PROTOCOL)
    path = Path(path)
    with open(path, "wb") as stream:
        stream.write(MAGIC if checksums else LEGACY_MAGIC)
        stream.write(len(header_bytes).to_bytes(8, "big"))
        if checksums:
            stream.write(zlib.crc32(header_bytes).to_bytes(4, "big"))
        stream.write(header_bytes)
        for payload in payloads:
            stream.write(payload)
        if fsync:
            stream.flush()
            os.fsync(stream.fileno())
    return path


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
class TableReader:
    """Metadata-first reader for one table file.

    Construction reads only the header (attributes, block index, zone
    maps, dictionary pages, statistics payload); block payloads are
    decoded on demand by :meth:`iter_blocks` / :meth:`read_block`.
    """

    __slots__ = ("_path", "_header", "_data_start", "_format_version")

    def __init__(self, path: PathLike) -> None:
        self._path = Path(path)
        try:
            with open(self._path, "rb") as stream:
                magic = stream.read(len(MAGIC))
                if magic == MAGIC:
                    version = FORMAT_VERSION
                elif magic == LEGACY_MAGIC:
                    version = LEGACY_FORMAT_VERSION
                else:
                    raise StorageError(f"{self._path} is not a stored table file (bad magic)")
                header_length = int.from_bytes(stream.read(8), "big")
                expected_crc: Optional[int] = None
                if version == FORMAT_VERSION:
                    crc_bytes = stream.read(4)
                    if len(crc_bytes) != 4:
                        raise StorageError(f"{self._path} is truncated (header incomplete)")
                    expected_crc = int.from_bytes(crc_bytes, "big")
                header_bytes = stream.read(header_length)
                if len(header_bytes) != header_length:
                    raise StorageError(f"{self._path} is truncated (header incomplete)")
                if expected_crc is not None:
                    # Verified *before* unpickling: a torn header never
                    # reaches pickle.loads, and the error names the CRCs.
                    actual_crc = zlib.crc32(header_bytes)
                    if actual_crc != expected_crc:
                        raise StorageCorruptionError(
                            f"{self._path} header checksum mismatch "
                            f"(expected {expected_crc:#010x}, got {actual_crc:#010x})",
                            file=str(self._path),
                            expected=expected_crc,
                            actual=actual_crc,
                        )
                try:
                    header = pickle.loads(header_bytes)
                except Exception as error:
                    raise StorageError(f"{self._path} has an unreadable header: {error}") from None
                self._data_start = (
                    len(MAGIC) + 8 + (4 if expected_crc is not None else 0) + header_length
                )
        except OSError as error:
            raise StorageError(f"cannot open stored table file {self._path}: {error}") from None
        if not isinstance(header, dict) or any(key not in header for key in _HEADER_KEYS):
            raise StorageError(f"{self._path} has a malformed header")
        if header["format"] != version:
            raise StorageError(
                f"{self._path} declares format version {header['format']}, "
                f"but its magic says {version}"
            )
        self._format_version = version
        self._header = header

    # -- metadata (no block reads) -------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def format_version(self) -> int:
        """1 for legacy checksum-free files, 2 for checksummed files."""
        return self._format_version

    @property
    def table(self) -> str:
        return self._header["table"]

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(self._header["attributes"])

    @property
    def tuple_count(self) -> int:
        return self._header["tuple_count"]

    @property
    def block_size(self) -> int:
        return self._header["block_size"]

    @property
    def blocks(self) -> list[dict[str, Any]]:
        """The block index: offset/length/count/zones per block."""
        return self._header["blocks"]

    @property
    def dictionaries(self) -> dict[str, list[Any]]:
        return self._header["dictionaries"]

    @property
    def statistics_payload(self) -> Optional[dict[str, Any]]:
        return self._header.get("statistics")

    # -- block access ---------------------------------------------------
    def read_block(self, meta: dict[str, Any]) -> list[tuple[Any, ...]]:
        """Decode one block given its index entry."""
        with open(self._path, "rb") as stream:
            stream.seek(self._data_start + meta["offset"])
            payload = stream.read(meta["length"])
        return self._decode(meta, payload)

    def _decode(self, meta: dict[str, Any], payload: bytes) -> list[tuple[Any, ...]]:
        payload = fault_registry.fire("storage.block_read", payload)
        if len(payload) != meta["length"]:
            raise StorageError(f"{self._path} is truncated (block payload incomplete)")
        expected = meta.get("crc")
        if expected is not None:
            actual = zlib.crc32(payload)
            if actual != expected:
                block = self._block_number(meta)
                raise StorageCorruptionError(
                    f"{self._path} block {block} checksum mismatch "
                    f"(expected {expected:#010x}, got {actual:#010x})",
                    file=str(self._path),
                    block=block,
                    expected=expected,
                    actual=actual,
                )
        try:
            return decode_block(payload, self.attributes, self.dictionaries)
        except Exception as error:
            raise StorageError(f"{self._path} has an unreadable block: {error}") from None

    def _block_number(self, meta: dict[str, Any]) -> Optional[int]:
        """Zero-based index of ``meta`` in the block index (error paths)."""
        for number, entry in enumerate(self.blocks):
            if entry is meta:
                return number
        return None

    def iter_blocks(
        self, should_read: Optional[Callable[[dict[str, Any]], bool]] = None
    ) -> Iterator[tuple[dict[str, Any], list[tuple[Any, ...]]]]:
        """Yield ``(index_entry, tuples)`` per block, in file order.

        ``should_read`` sees each index entry (with its zone maps) before
        the payload is touched; returning ``False`` skips the block
        without any disk read beyond the already-loaded header.
        """
        with open(self._path, "rb") as stream:
            for meta in self.blocks:
                if should_read is not None and not should_read(meta):
                    continue
                stream.seek(self._data_start + meta["offset"])
                payload = stream.read(meta["length"])
                yield meta, self._decode(meta, payload)

    def sample_tuples(self, limit: int) -> list[tuple[Any, ...]]:
        """Up to ``limit`` tuples from the leading blocks (for type checks)."""
        sample: list[tuple[Any, ...]] = []
        for _meta, block in self.iter_blocks():
            sample.extend(block[: limit - len(sample)])
            if len(sample) >= limit:
                break
        return sample


# ----------------------------------------------------------------------
# zone-map matching
# ----------------------------------------------------------------------
def block_may_match(predicate: Predicate, zones: dict[str, tuple[Any, Any]]) -> bool:
    """Could any tuple in a block with these zone maps satisfy ``predicate``?

    Structural and conservative: unknown predicate shapes, missing zones
    and incomparable values all answer ``True`` (read the block); only a
    provably empty match answers ``False`` (skip it).
    """
    if isinstance(predicate, TruePredicate):
        return True
    if isinstance(predicate, FalsePredicate):
        return False
    if isinstance(predicate, And):
        return all(block_may_match(operand, zones) for operand in predicate.operands)
    if isinstance(predicate, Or):
        return any(block_may_match(operand, zones) for operand in predicate.operands)
    if isinstance(predicate, Not):
        return block_may_match(predicate.operand.negate(), zones)
    if isinstance(predicate, Comparison):
        return _comparison_may_match(predicate, zones)
    return True


_MIRRORED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


def _comparison_may_match(predicate: Comparison, zones: dict[str, tuple[Any, Any]]) -> bool:
    left, right = predicate.left, predicate.right
    operator = predicate.operator
    if isinstance(left, AttributeRef) and isinstance(right, Literal):
        attribute, value = left.name, right.value
    elif isinstance(left, Literal) and isinstance(right, AttributeRef):
        attribute, value = right.name, left.value
        operator = _MIRRORED[operator]
    else:
        return True
    bounds = zones.get(attribute)
    if bounds is None:
        return True
    low, high = bounds
    try:
        if operator == "=":
            return low <= value <= high
        if operator == "!=":
            return not (low == high == value)
        if operator == "<":
            return low < value
        if operator == "<=":
            return low <= value
        if operator == ">":
            return high > value
        if operator == ">=":
            return high >= value
    except TypeError:
        return True
    return True
