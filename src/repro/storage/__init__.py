"""Persistent columnar storage: block files, stored scans, spill partitions.

The out-of-core layer of the library (ROADMAP item 3):

* :mod:`repro.storage.format` — the on-disk block format: per-table files
  of fixed-size column-major blocks with per-column dictionary pages and
  per-block min/max zone maps.
* :mod:`repro.storage.store` — directory stores (``Database.save(path)`` /
  ``repro.connect(path)``) and the lazy :class:`StoredRelation`.
* :mod:`repro.storage.scan` — the :class:`StoredScan` physical operator
  streaming blocks straight into the chunk pipeline, skipping blocks whose
  zone maps rule out the pushed-down predicate.
* :mod:`repro.storage.spill` — spill-to-disk partitions for the exchange
  layer's memory budget (``connect(memory_budget_mb=...)``).
"""

from repro.storage.format import (
    DEFAULT_BLOCK_SIZE,
    TableReader,
    block_may_match,
    write_table_file,
)
from repro.storage.scan import StoredScan
from repro.storage.spill import SPILL_BLOCK_TUPLES, SpilledPartition, SpillWriter
from repro.storage.store import (
    StoredRelation,
    load_catalog,
    load_store,
    save_database,
    statistics_from_payload,
    statistics_payload,
)

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "SPILL_BLOCK_TUPLES",
    "SpilledPartition",
    "SpillWriter",
    "StoredRelation",
    "StoredScan",
    "TableReader",
    "block_may_match",
    "load_catalog",
    "load_store",
    "save_database",
    "statistics_from_payload",
    "statistics_payload",
    "write_table_file",
]
