"""``StoredScan``: stream a stored table's blocks into the chunk pipeline.

The stored counterpart of ``TableScan``: instead of slicing a
materialized relation's cached tuple list, it decodes the table file block
by block and re-slices into chunks — the backing
:class:`~repro.storage.store.StoredRelation` stays on disk.

With a *skip predicate* attached (the optimizer pushes a query's leaf
predicate down when its attributes are covered by the scan schema), each
block's zone maps are tested first and provably non-matching blocks are
never read.  The predicate is advisory: the plan keeps its ``Filter``, so
skipping only ever removes whole blocks the filter would have emptied
anyway, and the ``blocks_skipped`` counter it maintains is surfaced by
``explain(analyze=True)``.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.algebra.predicates import Predicate, conjunction
from repro.errors import ExecutionError
from repro.physical.base import Chunk, PhysicalOperator, PhysicalProperties
from repro.storage.format import block_may_match
from repro.storage.store import StoredRelation

__all__ = ["StoredScan"]


class StoredScan(PhysicalOperator):
    """Leaf operator streaming blocks of a stored table."""

    name = "stored_scan"

    #: Same pricing as the in-memory scans: no input side, cheap streaming
    #: emission, and the stored block order is the save-time scan order, so
    #: order-exploiting consumers may rely on it.
    properties = PhysicalProperties(
        per_input_cost=0.0,
        per_output_cost=0.5,
        preserves_order=True,
    )

    def __init__(
        self,
        relation: StoredRelation,
        table: Optional[str] = None,
        predicate: Optional[Predicate] = None,
    ) -> None:
        super().__init__(relation.schema)
        self.relation = relation
        self.table = table if table is not None else relation.reader.table
        self.skip_predicate: Optional[Predicate] = None
        self.blocks_total = len(relation.reader.blocks)
        self.blocks_skipped = 0
        if predicate is not None:
            self.set_skip_predicate(predicate)

    def set_skip_predicate(self, predicate: Predicate) -> None:
        """Attach (or AND onto) the zone-map pruning predicate."""
        missing = predicate.attributes - self._schema.name_set
        if missing:
            raise ExecutionError(
                f"skip predicate references attributes {sorted(missing)!r} "
                f"outside the stored table's schema {self._schema.names!r}"
            )
        if self.skip_predicate is None:
            self.skip_predicate = predicate
        else:
            self.skip_predicate = conjunction([self.skip_predicate, predicate])

    def _produce_chunks(self) -> Iterator[Chunk]:
        schema = self._schema
        size = self.batch_size
        predicate = self.skip_predicate
        reader = self.relation.reader
        self.blocks_total = len(reader.blocks)
        self.blocks_skipped = 0

        if predicate is None:
            selector = None
        else:

            def selector(meta: dict[str, Any]) -> bool:
                if block_may_match(predicate, meta.get("zones") or {}):
                    return True
                self.blocks_skipped += 1
                return False

        for _meta, tuples in reader.iter_blocks(selector):
            for start in range(0, len(tuples), size):
                yield Chunk(schema, tuples[start : start + size])

    def describe(self) -> str:
        description = (
            f"StoredScan({self.table}, {self.relation.reader.tuple_count} tuples, "
            f"{self.blocks_total} blocks)"
        )
        if self.skip_predicate is not None:
            description += f" skip:{self.skip_predicate!r}"
        return description
