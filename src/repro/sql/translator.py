"""Translation of parsed SQL into the logical algebra.

Two features matter for the paper:

* the ``DIVIDE BY … ON …`` table reference (query Q1/Q2) is translated to a
  :class:`~repro.algebra.expressions.SmallDivide` when every divisor
  attribute appears in the ON clause, and to a
  :class:`~repro.algebra.expressions.GreatDivide` otherwise — exactly the
  rule stated in Section 4 of the paper;
* the double-``NOT EXISTS`` formulation (query Q3) is detected by
  :mod:`repro.sql.universal` and translated either to a first-class divide
  (``recognize_division=True``, the divide-aware optimizer) or to the
  equivalent basic-algebra expression of Definitions 2/6
  (``recognize_division=False``, the divide-less baseline the benchmarks
  compare against).
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Optional, Union

from repro.algebra import builders as B
from repro.algebra import predicates as P
from repro.algebra.expressions import Expression
from repro.errors import SQLTranslationError
from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.sql import ast
from repro.sql.parser import parse
from repro.sql.universal import UniversalQuantificationPattern, match_universal_quantification

__all__ = ["SQLTranslator", "translate_sql"]


def _conjuncts(condition: ast.Condition) -> list[ast.Condition]:
    """Flatten a condition into its top-level AND conjuncts."""
    if isinstance(condition, ast.BooleanOp) and condition.operator == "AND":
        result: list[ast.Condition] = []
        for operand in condition.operands:
            result.extend(_conjuncts(operand))
        return result
    return [condition]


class SQLTranslator:
    """Translate SQL text or parsed statements into logical expressions."""

    def __init__(
        self,
        catalog: Mapping[str, Relation],
        recognize_division: bool = True,
    ) -> None:
        self.catalog = catalog
        self.recognize_division = recognize_division

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def translate(self, query: Union[str, ast.SelectStatement]) -> Expression:
        """Translate a query (text or AST) into a logical expression."""
        statement = parse(query) if isinstance(query, str) else query
        pattern = match_universal_quantification(statement)
        if pattern is not None:
            return self._translate_universal(statement, pattern)
        expression, scope = self._translate_statement(statement)
        return expression

    # ------------------------------------------------------------------
    # ordinary statements
    # ------------------------------------------------------------------
    def _translate_statement(self, statement: ast.SelectStatement) -> tuple[Expression, dict[str, str]]:
        """Translate a statement; returns the expression and its scope.

        The scope maps qualified attribute names (``alias.column``) to the
        attribute names used in the expression (identical strings here, kept
        as a mapping for clarity and future extension).
        """
        if statement.where is not None and self._contains_exists(statement.where):
            raise SQLTranslationError(
                "correlated EXISTS subqueries are only supported in the universal-quantification "
                "pattern of query Q3 (see repro.sql.universal)"
            )
        expression: Optional[Expression] = None
        scope: dict[str, str] = {}
        for item in statement.from_items:
            item_expression, item_scope = self._translate_table_reference(item)
            overlap = set(scope) & set(item_scope)
            if overlap:
                raise SQLTranslationError(f"duplicate correlation names for attributes {sorted(overlap)}")
            scope.update(item_scope)
            expression = item_expression if expression is None else B.product(expression, item_expression)
        if expression is None:
            raise SQLTranslationError("FROM clause must reference at least one table")
        if statement.where is not None:
            expression = B.select(expression, self._translate_condition(statement.where, scope))
        if statement.select_star:
            return expression, scope
        return self._apply_select_list(expression, statement, scope)

    def _apply_select_list(
        self,
        expression: Expression,
        statement: ast.SelectStatement,
        scope: dict[str, str],
    ) -> tuple[Expression, dict[str, str]]:
        resolved: list[str] = []
        outputs: list[str] = []
        for item in statement.select_items:
            attribute = self._resolve_column(item.column, scope)
            output = item.output_name
            if attribute in resolved:
                raise SQLTranslationError(f"column {item.column} selected twice")
            if output in outputs:
                raise SQLTranslationError(f"duplicate output column name {output!r}")
            resolved.append(attribute)
            outputs.append(output)
        projected = B.project(expression, resolved)
        renames = {attr: out for attr, out in zip(resolved, outputs) if attr != out}
        result: Expression = B.rename(projected, renames) if renames else projected
        return result, {out: out for out in outputs}

    # ------------------------------------------------------------------
    # table references
    # ------------------------------------------------------------------
    def _translate_table_reference(self, reference: ast.TableReference) -> tuple[Expression, dict[str, str]]:
        if isinstance(reference, ast.TableName):
            return self._translate_table_name(reference)
        if isinstance(reference, ast.SubqueryTable):
            inner, inner_scope = self._translate_statement(reference.query)
            return self._qualify(inner, reference.alias)
        if isinstance(reference, ast.DivideTable):
            return self._translate_divide(reference)
        raise SQLTranslationError(f"unsupported table reference {reference!r}")

    def _translate_table_name(self, table: ast.TableName) -> tuple[Expression, dict[str, str]]:
        if table.name not in self.catalog:
            raise SQLTranslationError(f"unknown table {table.name!r}")
        relation = self.catalog[table.name]
        expression: Expression = B.ref(table.name, relation.schema)
        return self._qualify(expression, table.effective_name)

    @staticmethod
    def _qualify(expression: Expression, alias: str) -> tuple[Expression, dict[str, str]]:
        mapping = {name: f"{alias}.{name.split('.')[-1]}" for name in expression.schema.names}
        qualified = B.rename(expression, mapping)
        scope = {qualified_name: qualified_name for qualified_name in mapping.values()}
        return qualified, scope

    def _translate_divide(self, reference: ast.DivideTable) -> tuple[Expression, dict[str, str]]:
        dividend, dividend_scope = self._translate_table_reference(reference.dividend)
        divisor, divisor_scope = self._translate_table_reference(reference.divisor)
        pairs = self._equi_join_pairs(reference.condition, dividend_scope, divisor_scope)
        if not pairs:
            raise SQLTranslationError(
                "the ON clause of DIVIDE BY must be a conjunction of equalities between "
                "dividend and divisor columns"
            )
        # Rename the divisor's join attributes to the dividend's names so the
        # division operators see them as the shared attribute set B.
        renames = {divisor_attr: dividend_attr for dividend_attr, divisor_attr in pairs}
        renamed_divisor: Expression = B.rename(divisor, renames) if renames else divisor
        joined_divisor_attributes = {dividend_attr for dividend_attr, _ in pairs}
        divisor_only = [
            name for name in renamed_divisor.schema.names if name not in joined_divisor_attributes
        ]
        if divisor_only:
            expression: Expression = B.great_divide(dividend, renamed_divisor)
        else:
            expression = B.divide(dividend, renamed_divisor)
        scope = {name: name for name in expression.schema.names}
        return expression, scope

    def _equi_join_pairs(
        self,
        condition: ast.Condition,
        dividend_scope: dict[str, str],
        divisor_scope: dict[str, str],
    ) -> list[tuple[str, str]]:
        pairs: list[tuple[str, str]] = []
        for conjunct in _conjuncts(condition):
            if not isinstance(conjunct, ast.Comparison) or conjunct.operator != "=":
                raise SQLTranslationError(
                    "DIVIDE BY supports only conjunctions of column equalities in its ON clause; "
                    "the paper explicitly disallows more general conditions"
                )
            left, right = conjunct.left, conjunct.right
            if not (isinstance(left, ast.ColumnRef) and isinstance(right, ast.ColumnRef)):
                raise SQLTranslationError("the ON clause must compare columns, not literals")
            left_attr = self._resolve_column(left, {**dividend_scope, **divisor_scope})
            right_attr = self._resolve_column(right, {**dividend_scope, **divisor_scope})
            if left_attr in dividend_scope and right_attr in divisor_scope:
                pairs.append((left_attr, right_attr))
            elif right_attr in dividend_scope and left_attr in divisor_scope:
                pairs.append((right_attr, left_attr))
            else:
                raise SQLTranslationError(
                    "each ON equality must relate one dividend column and one divisor column"
                )
        return pairs

    # ------------------------------------------------------------------
    # conditions and columns
    # ------------------------------------------------------------------
    def _contains_exists(self, condition: ast.Condition) -> bool:
        if isinstance(condition, ast.ExistsCondition):
            return True
        if isinstance(condition, ast.NotCondition):
            return self._contains_exists(condition.operand)
        if isinstance(condition, ast.BooleanOp):
            return any(self._contains_exists(operand) for operand in condition.operands)
        return False

    def _translate_condition(self, condition: ast.Condition, scope: dict[str, str]) -> P.Predicate:
        if isinstance(condition, ast.Comparison):
            return P.Comparison(
                self._translate_operand(condition.left, scope),
                condition.operator,
                self._translate_operand(condition.right, scope),
            )
        if isinstance(condition, ast.BooleanOp):
            operands = [self._translate_condition(op, scope) for op in condition.operands]
            return P.And(*operands) if condition.operator == "AND" else P.Or(*operands)
        if isinstance(condition, ast.NotCondition):
            return P.Not(self._translate_condition(condition.operand, scope))
        raise SQLTranslationError(f"unsupported condition {condition!r} in this context")

    def _translate_operand(self, operand: ast.Operand, scope: dict[str, str]):
        if isinstance(operand, ast.Literal):
            return P.lit(operand.value)
        return P.attr(self._resolve_column(operand, scope))

    @staticmethod
    def _resolve_column(column: ast.ColumnRef, scope: dict[str, str]) -> str:
        if column.qualifier is not None:
            qualified = f"{column.qualifier}.{column.name}"
            if qualified in scope:
                return scope[qualified]
            raise SQLTranslationError(f"unknown column {qualified!r}; in scope: {sorted(scope)}")
        matches = [attr for attr in scope if attr == column.name or attr.endswith(f".{column.name}")]
        if len(matches) == 1:
            return scope[matches[0]]
        if not matches:
            raise SQLTranslationError(f"unknown column {column.name!r}; in scope: {sorted(scope)}")
        raise SQLTranslationError(f"ambiguous column {column.name!r}: {sorted(matches)}")

    # ------------------------------------------------------------------
    # universal quantification (query Q3)
    # ------------------------------------------------------------------
    def _translate_universal(
        self, statement: ast.SelectStatement, pattern: UniversalQuantificationPattern
    ) -> Expression:
        dividend_relation = self._require_table(pattern.dividend_table)
        divisor_relation = self._require_table(pattern.divisor_table)

        dividend_b = [pair[0] for pair in pattern.b_pairs]
        divisor_b = [pair[1] for pair in pattern.b_pairs]
        dividend_a = [name for name in dividend_relation.attributes if name not in dividend_b]
        if sorted(pattern.a_columns) != sorted(dividend_a):
            raise SQLTranslationError(
                "the inner NOT EXISTS must correlate on every non-divisor attribute of the "
                f"dividend; expected {sorted(dividend_a)}, found {sorted(pattern.a_columns)}"
            )

        dividend: Expression = B.ref(pattern.dividend_table, dividend_relation.schema)
        divisor: Expression = B.ref(pattern.divisor_table, divisor_relation.schema)
        if pattern.divisor_filters:
            divisor = B.select(
                divisor,
                P.conjunction(
                    P.Comparison(P.attr(column), operator, P.lit(value))
                    for column, operator, value in pattern.divisor_filters
                ),
            )
        divisor = B.project(divisor, list(divisor_b) + list(pattern.c_columns))
        renames = {
            divisor_attr: dividend_attr
            for dividend_attr, divisor_attr in pattern.b_pairs
            if divisor_attr != dividend_attr
        }
        if renames:
            divisor = B.rename(divisor, renames)

        if self.recognize_division:
            divided: Expression = (
                B.great_divide(dividend, divisor)
                if pattern.is_great_divide
                else B.divide(dividend, divisor)
            )
        else:
            divided = self._simulate_division(dividend, divisor, dividend_a, pattern)

        scope = {name: name for name in divided.schema.names}
        return self._apply_select_list(divided, statement, scope)[0]

    def _simulate_division(
        self,
        dividend: Expression,
        divisor: Expression,
        dividend_a: list[str],
        pattern: UniversalQuantificationPattern,
    ) -> Expression:
        """The divide-less plan: Definition 2 (small) or Definition 6 (great)."""
        candidates_a = B.project(dividend, dividend_a)
        if not pattern.is_great_divide:
            missing = B.project(
                B.difference(B.product(candidates_a, divisor), B.project(dividend, Schema(tuple(dividend_a)).union(divisor.schema))),
                dividend_a,
            )
            return B.difference(candidates_a, missing)
        c_attributes = list(pattern.c_columns)
        candidates = B.product(candidates_a, B.project(divisor, c_attributes))
        all_attributes = list(dividend_a) + list(divisor.schema.names)
        left = B.product(candidates_a, divisor)
        joined = B.natural_join(dividend, divisor)
        missing = B.project(B.difference(left, B.project(joined, all_attributes)), dividend_a + c_attributes)
        return B.difference(candidates, missing)

    def _require_table(self, name: str) -> Relation:
        if name not in self.catalog:
            raise SQLTranslationError(f"unknown table {name!r}")
        return self.catalog[name]


def translate_sql(
    query: str,
    catalog: Mapping[str, Relation],
    recognize_division: bool = True,
) -> Expression:
    """Convenience wrapper: parse and translate ``query`` against ``catalog``."""
    return SQLTranslator(catalog, recognize_division=recognize_division).translate(query)
