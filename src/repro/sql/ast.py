"""Abstract syntax tree for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "ColumnRef",
    "Literal",
    "Comparison",
    "BooleanOp",
    "NotCondition",
    "ExistsCondition",
    "Condition",
    "Operand",
    "TableName",
    "SubqueryTable",
    "DivideTable",
    "TableReference",
    "SelectItem",
    "SelectStatement",
]


# ----------------------------------------------------------------------
# scalar operands and conditions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ColumnRef:
    """A possibly qualified column reference, e.g. ``s.p_no`` or ``color``."""

    name: str
    qualifier: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Literal:
    """A numeric or string constant."""

    value: Union[int, float, str]


Operand = Union[ColumnRef, Literal]


@dataclass(frozen=True)
class Comparison:
    """``left <op> right`` with op in =, <>, <, <=, >, >=."""

    left: Operand
    operator: str
    right: Operand


@dataclass(frozen=True)
class BooleanOp:
    """AND/OR over two or more conditions."""

    operator: str  # "AND" | "OR"
    operands: tuple["Condition", ...]


@dataclass(frozen=True)
class NotCondition:
    """Logical negation of a condition."""

    operand: "Condition"


@dataclass(frozen=True)
class ExistsCondition:
    """``EXISTS (subquery)`` — always appears under NOT in the paper's Q3."""

    subquery: "SelectStatement"


Condition = Union[Comparison, BooleanOp, NotCondition, ExistsCondition]


# ----------------------------------------------------------------------
# table references
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TableName:
    """A base table, optionally aliased."""

    name: str
    alias: Optional[str] = None

    @property
    def effective_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryTable:
    """A derived table ``(SELECT …) AS alias``."""

    query: "SelectStatement"
    alias: str


@dataclass(frozen=True)
class DivideTable:
    """The paper's ``<table reference> DIVIDE BY <table reference> ON <cond>``."""

    dividend: "TableReference"
    divisor: "TableReference"
    condition: Condition


TableReference = Union[TableName, SubqueryTable, DivideTable]


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SelectItem:
    """One output column (``*`` is represented by a statement-level flag)."""

    column: ColumnRef
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        return self.alias or self.column.name


@dataclass(frozen=True)
class SelectStatement:
    """A SELECT query over the supported subset."""

    select_items: tuple[SelectItem, ...]
    from_items: tuple[TableReference, ...]
    where: Optional[Condition] = None
    distinct: bool = False
    select_star: bool = False
