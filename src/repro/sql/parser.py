"""Recursive-descent parser for the SQL subset.

Grammar (informal)::

    statement   := SELECT [DISTINCT] select_list FROM from_list [WHERE condition]
    select_list := '*' | select_item (',' select_item)*
    select_item := column [AS identifier]
    from_list   := table_ref (',' table_ref)*
    table_ref   := table_factor (DIVIDE BY table_factor ON condition)*
    table_factor:= identifier [AS identifier]
                 | '(' statement ')' [AS] identifier
    condition   := or_term ;  or_term := and_term (OR and_term)*
    and_term    := not_term (AND not_term)*
    not_term    := NOT not_term | primary
    primary     := EXISTS '(' statement ')'
                 | '(' condition ')'
                 | operand op operand
    operand     := column | number | string
    column      := identifier ['.' identifier]

``DIVIDE BY`` is the production rule the paper adds to the SQL standard's
``<table reference>`` (Section 4).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SQLSyntaxError
from repro.sql.ast import (
    BooleanOp,
    ColumnRef,
    Comparison,
    Condition,
    DivideTable,
    ExistsCondition,
    Literal,
    NotCondition,
    Operand,
    SelectItem,
    SelectStatement,
    SubqueryTable,
    TableName,
    TableReference,
)
from repro.sql.lexer import Token, TokenType, tokenize

__all__ = ["parse"]


def parse(text: str) -> SelectStatement:
    """Parse one SELECT statement."""
    parser = _Parser(tokenize(text))
    statement = parser.parse_statement()
    parser.expect_end()
    return statement


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._position]

    def advance(self) -> Token:
        token = self.current
        self._position += 1
        return token

    def check_keyword(self, word: str) -> bool:
        return self.current.is_keyword(word)

    def accept_keyword(self, word: str) -> bool:
        if self.check_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise SQLSyntaxError(f"expected {word}, found {self.current.value!r}", self.current.position)

    def expect(self, token_type: TokenType) -> Token:
        if self.current.type is not token_type:
            raise SQLSyntaxError(
                f"expected {token_type.name}, found {self.current.value!r}", self.current.position
            )
        return self.advance()

    def expect_end(self) -> None:
        if self.current.type is not TokenType.END:
            raise SQLSyntaxError(f"unexpected trailing input {self.current.value!r}", self.current.position)

    # ------------------------------------------------------------------
    # grammar rules
    # ------------------------------------------------------------------
    def parse_statement(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        select_star = False
        items: list[SelectItem] = []
        if self.current.type is TokenType.STAR:
            self.advance()
            select_star = True
        else:
            items.append(self.parse_select_item())
            while self.current.type is TokenType.COMMA:
                self.advance()
                items.append(self.parse_select_item())
        self.expect_keyword("FROM")
        from_items = [self.parse_table_reference()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            from_items.append(self.parse_table_reference())
        where: Optional[Condition] = None
        if self.accept_keyword("WHERE"):
            where = self.parse_condition()
        return SelectStatement(
            select_items=tuple(items),
            from_items=tuple(from_items),
            where=where,
            distinct=distinct,
            select_star=select_star,
        )

    def parse_select_item(self) -> SelectItem:
        column = self.parse_column()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect(TokenType.IDENTIFIER).value
        return SelectItem(column=column, alias=alias)

    def parse_table_reference(self) -> TableReference:
        reference: TableReference = self.parse_table_factor()
        while self.check_keyword("DIVIDE"):
            self.advance()
            self.expect_keyword("BY")
            divisor = self.parse_table_factor()
            self.expect_keyword("ON")
            condition = self.parse_condition()
            reference = DivideTable(dividend=reference, divisor=divisor, condition=condition)
        return reference

    def parse_table_factor(self) -> TableReference:
        if self.current.type is TokenType.LPAREN:
            self.advance()
            query = self.parse_statement()
            self.expect(TokenType.RPAREN)
            self.accept_keyword("AS")
            alias = self.expect(TokenType.IDENTIFIER).value
            return SubqueryTable(query=query, alias=alias)
        name = self.expect(TokenType.IDENTIFIER).value
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect(TokenType.IDENTIFIER).value
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self.advance().value
        return TableName(name=name, alias=alias)

    # ------------------------------------------------------------------
    # conditions
    # ------------------------------------------------------------------
    def parse_condition(self) -> Condition:
        return self.parse_or()

    def parse_or(self) -> Condition:
        operands = [self.parse_and()]
        while self.accept_keyword("OR"):
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp(operator="OR", operands=tuple(operands))

    def parse_and(self) -> Condition:
        operands = [self.parse_not()]
        while self.accept_keyword("AND"):
            operands.append(self.parse_not())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp(operator="AND", operands=tuple(operands))

    def parse_not(self) -> Condition:
        if self.accept_keyword("NOT"):
            return NotCondition(operand=self.parse_not())
        return self.parse_primary_condition()

    def parse_primary_condition(self) -> Condition:
        if self.check_keyword("EXISTS"):
            self.advance()
            self.expect(TokenType.LPAREN)
            query = self.parse_statement()
            self.expect(TokenType.RPAREN)
            return ExistsCondition(subquery=query)
        if self.current.type is TokenType.LPAREN:
            # Could be a parenthesised condition; parse and return it.
            self.advance()
            condition = self.parse_condition()
            self.expect(TokenType.RPAREN)
            return condition
        left = self.parse_operand()
        operator_token = self.expect(TokenType.OPERATOR)
        right = self.parse_operand()
        operator = {"<>": "!=", "!=": "!="}.get(operator_token.value, operator_token.value)
        return Comparison(left=left, operator=operator, right=right)

    def parse_operand(self) -> Operand:
        if self.current.type is TokenType.NUMBER:
            text = self.advance().value
            value = float(text) if "." in text else int(text)
            return Literal(value=value)
        if self.current.type is TokenType.STRING:
            return Literal(value=self.advance().value)
        return self.parse_column()

    def parse_column(self) -> ColumnRef:
        first = self.expect(TokenType.IDENTIFIER).value
        if self.current.type is TokenType.DOT:
            self.advance()
            second = self.expect(TokenType.IDENTIFIER).value
            return ColumnRef(name=second, qualifier=first)
        return ColumnRef(name=first)
