"""Tokenizer for the SQL subset understood by the frontend.

The subset covers the queries of Section 4 of the paper: SELECT/FROM/WHERE,
table subqueries, ``AS`` aliases, ``NOT EXISTS`` subqueries, comparison
predicates combined with AND/OR/NOT, and the paper's proposed
``DIVIDE BY … ON …`` table reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import SQLSyntaxError

__all__ = ["TokenType", "Token", "tokenize", "KEYWORDS"]


class TokenType(Enum):
    """Lexical token categories."""

    KEYWORD = auto()
    IDENTIFIER = auto()
    NUMBER = auto()
    STRING = auto()
    OPERATOR = auto()
    COMMA = auto()
    DOT = auto()
    LPAREN = auto()
    RPAREN = auto()
    STAR = auto()
    END = auto()


#: Reserved words (case-insensitive).  ``DIVIDE`` and ``BY`` implement the
#: paper's syntax extension.
KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "AS",
        "AND",
        "OR",
        "NOT",
        "EXISTS",
        "DIVIDE",
        "BY",
        "ON",
    }
)

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")


@dataclass(frozen=True)
class Token:
    """One lexical token with its position in the input text."""

    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """True if this token is the given (case-insensitive) keyword."""
        return self.type is TokenType.KEYWORD and self.value == word.upper()


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`SQLSyntaxError` on unknown characters."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == ",":
            tokens.append(Token(TokenType.COMMA, ",", index))
            index += 1
            continue
        if char == ".":
            tokens.append(Token(TokenType.DOT, ".", index))
            index += 1
            continue
        if char == "(":
            tokens.append(Token(TokenType.LPAREN, "(", index))
            index += 1
            continue
        if char == ")":
            tokens.append(Token(TokenType.RPAREN, ")", index))
            index += 1
            continue
        if char == "*":
            tokens.append(Token(TokenType.STAR, "*", index))
            index += 1
            continue
        if char == "'":
            end = text.find("'", index + 1)
            if end == -1:
                raise SQLSyntaxError("unterminated string literal", index)
            tokens.append(Token(TokenType.STRING, text[index + 1 : end], index))
            index = end + 1
            continue
        operator = _match_operator(text, index)
        if operator:
            tokens.append(Token(TokenType.OPERATOR, operator, index))
            index += len(operator)
            continue
        if char.isdigit():
            end = index
            while end < length and (text[end].isdigit() or text[end] == "."):
                end += 1
            tokens.append(Token(TokenType.NUMBER, text[index:end], index))
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] in "_#"):
                end += 1
            word = text[index:end]
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.upper(), index))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, index))
            index = end
            continue
        raise SQLSyntaxError(f"unexpected character {char!r}", index)
    tokens.append(Token(TokenType.END, "", length))
    return tokens


def _match_operator(text: str, index: int) -> str | None:
    for operator in _OPERATORS:
        if text.startswith(operator, index):
            return operator
    return None
