"""SQL frontend: lexer, parser, DIVIDE BY syntax, NOT EXISTS recognizer, translator."""

from repro.sql import ast
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse
from repro.sql.translator import SQLTranslator, translate_sql
from repro.sql.universal import UniversalQuantificationPattern, match_universal_quantification

__all__ = [
    "ast",
    "Token",
    "TokenType",
    "tokenize",
    "parse",
    "SQLTranslator",
    "translate_sql",
    "UniversalQuantificationPattern",
    "match_universal_quantification",
]
