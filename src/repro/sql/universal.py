"""Recognition of the double-NOT-EXISTS universal-quantification pattern.

Section 4 of the paper contrasts the proposed ``DIVIDE BY`` syntax (Q1)
with the classic formulation through two nested ``NOT EXISTS`` subqueries
(Q3) and remarks that "it is not simple to devise a query-rewriting
algorithm for a query optimizer that is able to detect those existential
quantification constructs that can be replaced by a (great) divide
operator".  This module implements exactly that detector for the pattern
family of Q3::

    SELECT DISTINCT <outputs>
    FROM   D AS x [, V AS y]
    WHERE NOT EXISTS (
        SELECT * FROM V AS m
        WHERE  [m.<filter> <op> <literal> AND …]
               [AND m.c = y.c …]                 -- group correlation (C)
               AND NOT EXISTS (
                   SELECT * FROM D AS i
                   WHERE  i.b = m.b [AND …]       -- divisor attributes (B)
                          AND i.a = x.a [AND …])) -- quotient attributes (A)

``D`` plays the dividend role, ``V`` the divisor role.  When the pattern
matches, the query is equivalent to ``D ÷(*) σ(π(V))`` and the translator
can emit a first-class division operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sql.ast import (
    BooleanOp,
    ColumnRef,
    Comparison,
    Condition,
    ExistsCondition,
    Literal,
    NotCondition,
    SelectStatement,
    TableName,
)

__all__ = ["UniversalQuantificationPattern", "match_universal_quantification"]


@dataclass(frozen=True)
class UniversalQuantificationPattern:
    """The ingredients of a recognized for-all query."""

    #: Dividend base table and its outer correlation name.
    dividend_table: str
    dividend_alias: str
    #: Divisor base table and the alias used in the middle subquery.
    divisor_table: str
    divisor_middle_alias: str
    #: Optional outer alias of the divisor table (absent for small-divide queries).
    divisor_outer_alias: Optional[str]
    #: Pairs (dividend column, divisor column) forming the shared attributes B.
    b_pairs: tuple[tuple[str, str], ...]
    #: Dividend columns used for the outer correlation (the quotient attributes A).
    a_columns: tuple[str, ...]
    #: Divisor columns correlated with the outer divisor occurrence (the C attributes).
    c_columns: tuple[str, ...]
    #: Plain filter comparisons on the divisor (column name, operator, literal value).
    divisor_filters: tuple[tuple[str, str, object], ...] = field(default_factory=tuple)

    @property
    def is_great_divide(self) -> bool:
        """True when the pattern carries group (C) attributes."""
        return bool(self.c_columns)


def _as_conjunction(condition: Condition) -> list[Condition]:
    if isinstance(condition, BooleanOp) and condition.operator == "AND":
        result: list[Condition] = []
        for operand in condition.operands:
            result.extend(_as_conjunction(operand))
        return result
    return [condition]


def _single_not_exists(conjuncts: list[Condition]) -> Optional[SelectStatement]:
    subqueries = [
        conjunct.operand.subquery
        for conjunct in conjuncts
        if isinstance(conjunct, NotCondition) and isinstance(conjunct.operand, ExistsCondition)
    ]
    if len(subqueries) != 1:
        return None
    return subqueries[0]


def _only_table(statement: SelectStatement) -> Optional[TableName]:
    if len(statement.from_items) != 1:
        return None
    item = statement.from_items[0]
    return item if isinstance(item, TableName) else None


def match_universal_quantification(
    statement: SelectStatement,
) -> Optional[UniversalQuantificationPattern]:
    """Try to match ``statement`` against the Q3 pattern.

    Returns ``None`` when the statement does not have the required shape;
    the caller then falls back to the ordinary translation rules.
    """
    # ------------------------------------------------------------------ outer
    if statement.where is None:
        return None
    outer_conjuncts = _as_conjunction(statement.where)
    if len(outer_conjuncts) != 1:
        return None
    middle = _single_not_exists(outer_conjuncts)
    if middle is None:
        return None
    if not statement.from_items or len(statement.from_items) > 2:
        return None
    if not all(isinstance(item, TableName) for item in statement.from_items):
        return None
    outer_tables: list[TableName] = list(statement.from_items)  # type: ignore[arg-type]

    # ----------------------------------------------------------------- middle
    middle_table = _only_table(middle)
    if middle_table is None or middle.where is None:
        return None
    middle_conjuncts = _as_conjunction(middle.where)
    inner = _single_not_exists(middle_conjuncts)
    if inner is None:
        return None

    # ------------------------------------------------------------------ inner
    inner_table = _only_table(inner)
    if inner_table is None or inner.where is None:
        return None
    inner_conjuncts = _as_conjunction(inner.where)
    if any(isinstance(c, (NotCondition, ExistsCondition)) for c in inner_conjuncts):
        return None

    # Dividend = the outer table that the innermost subquery re-references.
    dividend_candidates = [t for t in outer_tables if t.name == inner_table.name]
    if not dividend_candidates:
        return None
    dividend = dividend_candidates[0]
    divisor_outer = next((t for t in outer_tables if t is not dividend), None)
    if middle_table.name != (divisor_outer.name if divisor_outer else middle_table.name):
        return None

    # --------------------------------------------------- classify middle WHERE
    c_columns: list[str] = []
    divisor_filters: list[tuple[str, str, object]] = []
    for conjunct in middle_conjuncts:
        if isinstance(conjunct, NotCondition) and isinstance(conjunct.operand, ExistsCondition):
            continue
        if not isinstance(conjunct, Comparison):
            return None
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            if conjunct.operator != "=":
                return None
            # middle.c = outer_divisor.c  (either order)
            pair = _correlation_pair(left, right, middle_table, divisor_outer)
            if pair is None:
                return None
            c_columns.append(pair)
        elif isinstance(left, ColumnRef) and isinstance(right, Literal):
            if left.qualifier not in (None, middle_table.effective_name):
                return None
            divisor_filters.append((left.name, conjunct.operator, right.value))
        elif isinstance(left, Literal) and isinstance(right, ColumnRef):
            if right.qualifier not in (None, middle_table.effective_name):
                return None
            mirrored = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
            divisor_filters.append((right.name, mirrored[conjunct.operator], left.value))
        else:
            return None
    if divisor_outer is not None and not c_columns:
        return None
    if divisor_outer is None and c_columns:
        return None

    # ---------------------------------------------------- classify inner WHERE
    b_pairs: list[tuple[str, str]] = []
    a_columns: list[str] = []
    for conjunct in inner_conjuncts:
        if not isinstance(conjunct, Comparison) or conjunct.operator != "=":
            return None
        left, right = conjunct.left, conjunct.right
        if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
            return None
        sides = {_owner(ref, inner_table, middle_table, dividend): ref for ref in (left, right)}
        if set(sides) == {"inner", "middle"}:
            b_pairs.append((sides["inner"].name, sides["middle"].name))
        elif set(sides) == {"inner", "outer_dividend"}:
            if sides["inner"].name != sides["outer_dividend"].name:
                return None
            a_columns.append(sides["inner"].name)
        else:
            return None
    if not b_pairs or not a_columns:
        return None

    return UniversalQuantificationPattern(
        dividend_table=dividend.name,
        dividend_alias=dividend.effective_name,
        divisor_table=middle_table.name,
        divisor_middle_alias=middle_table.effective_name,
        divisor_outer_alias=divisor_outer.effective_name if divisor_outer else None,
        b_pairs=tuple(b_pairs),
        a_columns=tuple(a_columns),
        c_columns=tuple(c_columns),
        divisor_filters=tuple(divisor_filters),
    )


def _correlation_pair(
    left: ColumnRef,
    right: ColumnRef,
    middle_table: TableName,
    divisor_outer: Optional[TableName],
) -> Optional[str]:
    """For ``m.c = y.c`` return the column name c, else None."""
    if divisor_outer is None:
        return None
    names = {left.qualifier, right.qualifier}
    if names != {middle_table.effective_name, divisor_outer.effective_name}:
        return None
    if left.name != right.name:
        return None
    return left.name


def _owner(
    ref: ColumnRef,
    inner_table: TableName,
    middle_table: TableName,
    dividend: TableName,
) -> str:
    if ref.qualifier == inner_table.effective_name:
        return "inner"
    if ref.qualifier == middle_table.effective_name:
        return "middle"
    if ref.qualifier == dividend.effective_name:
        return "outer_dividend"
    return "unknown"
