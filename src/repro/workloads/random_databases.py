"""Random small databases for equivalence checking outside hypothesis.

The property-based tests use hypothesis strategies (under ``tests/``); the
examples and the optimizer's verification mode need a dependency-free way to
produce a stream of small random databases over given schemas, which is what
:func:`random_relation` and :func:`random_databases` provide.
"""

from __future__ import annotations

import random
from collections.abc import Iterator, Mapping, Sequence

from repro.relation.relation import Relation
from repro.relation.schema import AttributeNames, as_schema

__all__ = ["random_relation", "random_databases"]


def random_relation(
    attributes: AttributeNames,
    max_rows: int = 8,
    domain: Sequence[int] = tuple(range(4)),
    rng: random.Random | None = None,
) -> Relation:
    """A random relation over ``attributes`` with values from ``domain``."""
    rng = rng or random.Random(0)
    schema = as_schema(attributes)
    num_rows = rng.randint(0, max_rows)
    rows = [tuple(rng.choice(list(domain)) for _ in schema) for _ in range(num_rows)]
    return Relation(schema, rows)


def random_databases(
    schemas: Mapping[str, AttributeNames],
    count: int = 25,
    max_rows: int = 8,
    domain: Sequence[int] = tuple(range(4)),
    seed: int = 0,
) -> Iterator[dict[str, Relation]]:
    """Yield ``count`` random databases over the given table schemas."""
    rng = random.Random(seed)
    for _ in range(count):
        yield {
            name: random_relation(attributes, max_rows=max_rows, domain=domain, rng=rng)
            for name, attributes in schemas.items()
        }
