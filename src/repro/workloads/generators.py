"""Synthetic dividend/divisor generators.

The paper has no published datasets; its arguments depend only on
cardinalities, group sizes and containment selectivity.  These generators
produce relations with exactly those knobs so the benchmark harness can
reproduce the qualitative claims (see DESIGN.md §3).

All generators are deterministic given a ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import WorkloadError
from repro.relation.relation import Relation

__all__ = [
    "DivisionWorkload",
    "make_divisor",
    "make_dividend",
    "make_great_divisor",
    "make_division_workload",
    "make_great_division_workload",
    "split_horizontal",
    "split_dividend_by_quotient",
]


@dataclass(frozen=True)
class DivisionWorkload:
    """A generated dividend/divisor pair plus the expected quotient size."""

    dividend: Relation
    divisor: Relation
    expected_quotient_size: int


def make_divisor(size: int, domain: Sequence[int] | None = None, seed: int = 0) -> Relation:
    """A divisor relation ``r2(b)`` with ``size`` distinct values."""
    if size < 0:
        raise WorkloadError("divisor size must be nonnegative")
    rng = random.Random(seed)
    if domain is None:
        values = list(range(size))
    else:
        if size > len(domain):
            raise WorkloadError(
                f"cannot draw {size} distinct divisor values from a domain of {len(domain)}"
            )
        values = rng.sample(list(domain), size)
    return Relation(["b"], [(value,) for value in values])


def make_dividend(
    num_groups: int,
    divisor: Relation,
    containing_fraction: float = 0.5,
    extra_values_per_group: int = 2,
    domain_size: Optional[int] = None,
    seed: int = 0,
) -> Relation:
    """A dividend ``r1(a, b)`` with a controlled containment selectivity.

    ``containing_fraction`` of the groups receive *all* divisor values (so
    they belong to the quotient); the rest receive a strict subset.  Every
    group additionally gets ``extra_values_per_group`` values outside the
    divisor, drawn from ``[0, domain_size)``.
    """
    if not 0.0 <= containing_fraction <= 1.0:
        raise WorkloadError("containing_fraction must be between 0 and 1")
    if num_groups < 0:
        raise WorkloadError("num_groups must be nonnegative")
    rng = random.Random(seed)
    divisor_values = sorted(divisor.to_set("b"))
    if domain_size is None:
        domain_size = max(divisor_values, default=0) + 10 * (extra_values_per_group + 1)
    outside = [value for value in range(domain_size) if value not in set(divisor_values)]

    num_containing = round(num_groups * containing_fraction)
    rows: list[tuple[int, int]] = []
    for group in range(num_groups):
        if group < num_containing:
            chosen = list(divisor_values)
        elif divisor_values:
            # Drop at least one divisor value so the group does not qualify.
            keep = rng.randint(0, len(divisor_values) - 1)
            chosen = rng.sample(divisor_values, keep)
        else:
            chosen = []
        if outside and extra_values_per_group:
            chosen.extend(rng.sample(outside, min(extra_values_per_group, len(outside))))
        if not chosen:
            # Every dividend group must have at least one tuple, otherwise
            # the group does not exist at all.
            chosen = [outside[0] if outside else 0]
        rows.extend((group, value) for value in set(chosen))
    return Relation(["a", "b"], rows)


def make_division_workload(
    num_groups: int = 100,
    divisor_size: int = 8,
    containing_fraction: float = 0.3,
    extra_values_per_group: int = 4,
    seed: int = 0,
) -> DivisionWorkload:
    """A complete small-divide workload ``r1(a, b) ÷ r2(b)``."""
    divisor = make_divisor(divisor_size, seed=seed)
    dividend = make_dividend(
        num_groups,
        divisor,
        containing_fraction=containing_fraction,
        extra_values_per_group=extra_values_per_group,
        seed=seed + 1,
    )
    expected = round(num_groups * containing_fraction) if divisor_size > 0 else num_groups
    return DivisionWorkload(dividend=dividend, divisor=divisor, expected_quotient_size=expected)


def make_great_divisor(
    num_groups: int,
    group_size: int,
    domain_size: int = 100,
    seed: int = 0,
) -> Relation:
    """A great-divide divisor ``r2(b, c)`` with ``num_groups`` groups of
    ``group_size`` distinct ``b`` values each."""
    if group_size > domain_size:
        raise WorkloadError("group_size cannot exceed domain_size")
    rng = random.Random(seed)
    rows = []
    for group in range(num_groups):
        for value in rng.sample(range(domain_size), group_size):
            rows.append((value, group))
    return Relation(["b", "c"], rows)


def make_great_division_workload(
    dividend_groups: int = 50,
    dividend_group_size: int = 12,
    divisor_groups: int = 10,
    divisor_group_size: int = 4,
    domain_size: int = 40,
    seed: int = 0,
) -> DivisionWorkload:
    """A complete great-divide workload ``r1(a, b) ÷* r2(b, c)``.

    The expected quotient size is computed exactly (by set containment over
    the generated groups) so benchmarks can sanity-check their results.
    """
    rng = random.Random(seed)
    dividend_rows = []
    dividend_sets: dict[int, set[int]] = {}
    for group in range(dividend_groups):
        values = set(rng.sample(range(domain_size), min(dividend_group_size, domain_size)))
        dividend_sets[group] = values
        dividend_rows.extend((group, value) for value in values)
    divisor = make_great_divisor(divisor_groups, divisor_group_size, domain_size, seed=seed + 1)
    divisor_sets: dict[int, set[int]] = {}
    for row in divisor:
        divisor_sets.setdefault(row["c"], set()).add(row["b"])
    expected = sum(
        1
        for needed in divisor_sets.values()
        for available in dividend_sets.values()
        if needed <= available
    )
    return DivisionWorkload(
        dividend=Relation(["a", "b"], dividend_rows),
        divisor=divisor,
        expected_quotient_size=expected,
    )


def split_horizontal(relation: Relation, fraction: float = 0.5, seed: int = 0) -> tuple[Relation, Relation]:
    """Split a relation's rows into two overlapping-free partitions."""
    if not 0.0 <= fraction <= 1.0:
        raise WorkloadError("fraction must be between 0 and 1")
    rng = random.Random(seed)
    rows = sorted(relation.rows, key=repr)
    rng.shuffle(rows)
    cut = round(len(rows) * fraction)
    return (
        Relation(relation.schema, rows[:cut]),
        Relation(relation.schema, rows[cut:]),
    )


def split_dividend_by_quotient(
    dividend: Relation, attribute: str = "a", pivot: Optional[int] = None
) -> tuple[Relation, Relation]:
    """Split a dividend by a range predicate on the quotient attribute.

    This is the partitioning Law 2 (condition ``c2``) assumes: the two
    partitions have disjoint quotient candidates.
    """
    values = sorted(dividend.to_set(attribute))
    if pivot is None:
        pivot = values[len(values) // 2] if values else 0
    low = dividend.select(lambda row: row[attribute] < pivot)
    high = dividend.select(lambda row: row[attribute] >= pivot)
    return low, high
