"""The suppliers-and-parts example database of Section 4.

The paper's SQL examples (queries Q1–Q3) run against two tables:

* ``supplies(s#, p#)`` — which supplier supplies which part,
* ``parts(p#, color)`` — the catalogue of parts.

Because ``#`` is inconvenient in identifiers, the library spells the
attributes ``s_no`` and ``p_no``.  :func:`textbook_catalog` returns the tiny
hand-written instance used in unit tests and in the figure/SQL experiments;
:func:`generate_catalog` scales the same shape up for benchmarks.
"""

from __future__ import annotations

import random

from repro.algebra.catalog import Catalog
from repro.errors import WorkloadError
from repro.relation.relation import Relation

__all__ = ["textbook_catalog", "generate_catalog", "COLORS"]

#: Part colors used by the generator (the paper's example uses 'blue').
COLORS = ("blue", "red", "green", "yellow")


def textbook_catalog() -> Catalog:
    """A small, hand-written suppliers-and-parts database.

    Suppliers s1 and s2 supply every blue part; only s1 supplies every red
    part; s3 supplies a single part.  This gives queries Q1–Q3 interesting,
    easily checkable answers.
    """
    parts = Relation(
        ["p_no", "color"],
        [
            ("p1", "blue"),
            ("p2", "blue"),
            ("p3", "red"),
            ("p4", "red"),
            ("p5", "green"),
        ],
    )
    supplies = Relation(
        ["s_no", "p_no"],
        [
            ("s1", "p1"),
            ("s1", "p2"),
            ("s1", "p3"),
            ("s1", "p4"),
            ("s2", "p1"),
            ("s2", "p2"),
            ("s2", "p5"),
            ("s3", "p3"),
        ],
    )
    catalog = Catalog()
    catalog.add_table("parts", parts, key=["p_no"])
    catalog.add_table("supplies", supplies)
    catalog.declare_foreign_key("supplies", ["p_no"], "parts", ["p_no"])
    return catalog


def generate_catalog(
    num_suppliers: int = 50,
    num_parts: int = 40,
    parts_per_supplier: int = 12,
    seed: int = 0,
) -> Catalog:
    """A randomly generated suppliers-and-parts database of the same shape."""
    if parts_per_supplier > num_parts:
        raise WorkloadError("parts_per_supplier cannot exceed num_parts")
    rng = random.Random(seed)
    part_ids = [f"p{i}" for i in range(num_parts)]
    parts = Relation(
        ["p_no", "color"],
        [(part_id, rng.choice(COLORS)) for part_id in part_ids],
    )
    supply_rows = []
    for supplier in range(num_suppliers):
        supplier_id = f"s{supplier}"
        for part_id in rng.sample(part_ids, parts_per_supplier):
            supply_rows.append((supplier_id, part_id))
    supplies = Relation(["s_no", "p_no"], supply_rows)
    catalog = Catalog()
    catalog.add_table("parts", parts, key=["p_no"])
    catalog.add_table("supplies", supplies)
    catalog.declare_foreign_key("supplies", ["p_no"], "parts", ["p_no"])
    return catalog
