"""Synthetic workload and data generators used by tests, examples and benches."""

from repro.workloads.generators import (
    DivisionWorkload,
    make_dividend,
    make_division_workload,
    make_divisor,
    make_great_division_workload,
    make_great_divisor,
    split_dividend_by_quotient,
    split_horizontal,
)
from repro.workloads.random_databases import random_databases, random_relation
from repro.workloads.suppliers_parts import COLORS, generate_catalog, textbook_catalog

__all__ = [
    "DivisionWorkload",
    "make_divisor",
    "make_dividend",
    "make_division_workload",
    "make_great_divisor",
    "make_great_division_workload",
    "split_horizontal",
    "split_dividend_by_quotient",
    "random_relation",
    "random_databases",
    "textbook_catalog",
    "generate_catalog",
    "COLORS",
]
