"""The one front door: a session object unifying every execution path.

``Database`` wraps a :class:`~repro.algebra.catalog.Catalog` with the full
pipeline of the paper — SQL translation, canonicalization, law-based
rewriting, costing, physical planning and batched execution — behind two
entry points that produce the same lazy :class:`~repro.api.query.Query`
objects:

>>> db = connect(textbook_catalog)
>>> db.sql("SELECT s_no FROM supplies AS s DIVIDE BY ...").run()
>>> db.table("supplies").divide(db.table("parts"), on="p_no").run()

Every run is **one** physical execution whose
:class:`~repro.api.result.QueryResult` carries the result relation, the
rules fired, per-operator tuple counts, ``max_intermediate`` and wall-clock
time.

Prepared plans are cached in an LRU keyed by the canonical expression
fingerprint, so repeating a query — in *any* equivalent formulation — skips
translation-independent work (rewrite + costing + planning) entirely.
Hit/miss counters are exposed through :meth:`Database.cache_info` for tests
and benchmarks.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.findings import VerificationReport
    from repro.views.view import MaintainedView

from repro.algebra.catalog import Catalog
from repro.algebra.expressions import Expression
from repro.algebra.predicates import Predicate
from repro.api.fingerprint import optimizer_signature, plan_cache_key
from repro.api.query import Query
from repro.api.result import AnalyzeReport, CacheInfo, MutationResult, QueryResult
from repro.errors import ReproError, SchemaError, ViewError
from repro.faults import registry as fault_registry
from repro.faults.plan import FaultPlan
from repro.optimizer.cost import CostReport
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.physical_cost import PlanDecision
from repro.optimizer.planner import PlannerOptions
from repro.optimizer.rewriter import RewriteReport
from repro.optimizer.statistics import TableStatistics
from repro.physical.base import PhysicalOperator
from repro.physical.compile import CompilationReport
from repro.physical.executor import execute_plan
from repro.relation.relation import Relation
from repro.relation.row import Row
from repro.sql.translator import SQLTranslator

__all__ = ["Database", "PreparedPlan", "connect"]

#: Anything a Database can be built from: a catalog, a plain name→relation
#: mapping, a zero-argument workload generator returning either, the path of
#: a saved store directory (:meth:`Database.save`), or nothing.
DatabaseSource = Union[
    Catalog, Mapping[str, Relation], Callable[[], object], str, "os.PathLike[str]", None
]

#: Rows accepted by :meth:`Database.insert`: a Relation over the same
#: attributes, or an iterable of Rows / name→value mappings / value tuples
#: aligned with the table's schema order.
RowsLike = Union[Relation, Iterable[Any]]

#: What :meth:`Database.delete` accepts: a predicate AST node, any row
#: callable, or the same row forms as :meth:`Database.insert`.
DeleteSpec = Union[Predicate, Callable[[Row], bool], Relation, Iterable[Any]]


def _coerce_rows(target: Relation, rows: RowsLike) -> Relation:
    """Normalize mutation input to a Relation over the target's schema."""
    schema = target.schema
    if isinstance(rows, Relation):
        if rows.schema.name_set != schema.name_set:
            raise SchemaError(
                f"mutation rows have attributes {rows.schema.names!r}, "
                f"table has {schema.names!r}"
            )
        return Relation.from_aligned(schema, rows.to_tuples(schema.names))
    names = schema.names
    tuples: list[tuple[Any, ...]] = []
    for row in rows:
        if isinstance(row, Row):
            tuples.append(row.values_for(names))
        elif isinstance(row, Mapping):
            missing = [name for name in names if name not in row]
            if missing:
                raise SchemaError(f"mutation row {row!r} misses attributes {missing!r}")
            tuples.append(tuple(row[name] for name in names))
        elif isinstance(row, (tuple, list)):
            if len(row) != len(names):
                raise SchemaError(
                    f"mutation tuple {row!r} has {len(row)} values, "
                    f"schema {names!r} needs {len(names)}"
                )
            tuples.append(tuple(row))
        else:
            raise ReproError(
                f"cannot interpret {row!r} as a row; pass a Row, a mapping, "
                "or a value tuple aligned with the schema"
            )
    return Relation.from_aligned(schema, tuples)


def _empty_like(relation: Relation) -> Relation:
    """An empty relation sharing the table's interned schema."""
    return Relation.from_aligned(relation.schema, ())


@dataclass(frozen=True)
class PreparedPlan:
    """One cached unit: everything derivable from a canonical expression."""

    fingerprint: str
    canonical: Expression
    rewrite_report: RewriteReport
    original_cost: CostReport
    rewritten_cost: CostReport
    plan: PhysicalOperator
    #: Algorithm decisions the cost-based planner made while building ``plan``.
    decisions: tuple[PlanDecision, ...] = ()
    #: Segment-compilation report for ``plan`` (``None`` = compilation off).
    compilation: Optional[CompilationReport] = None
    #: Per-table version counters the plan was built against, sorted by
    #: name.  A lookup whose current versions differ sees a stale entry:
    #: the plan embedded the old relation contents at build time.
    table_versions: tuple[tuple[str, int], ...] = ()
    #: The full plan-cache key (fingerprint + optimizer configuration).
    cache_key: str = ""

    @property
    def rewritten(self) -> Expression:
        return self.rewrite_report.result

    @property
    def rules_fired(self) -> list[str]:
        return self.rewrite_report.rules_fired


class _PlanCache:
    """A small LRU with hit/miss counters; ``maxsize=0`` disables caching."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 0:
            raise ReproError(f"cache size must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._entries: "OrderedDict[str, PreparedPlan]" = OrderedDict()

    def get(self, key: str) -> Optional[PreparedPlan]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def lookup(
        self, key: str, table_versions: tuple[tuple[str, int], ...]
    ) -> Optional[PreparedPlan]:
        """Version-checked lookup: a cached plan built against other table
        versions is *stale* (its scans pinned the old relations) — it is
        evicted, counted as an invalidation, and the lookup misses."""
        entry = self._entries.get(key)
        if entry is not None and entry.table_versions == table_versions:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry
        self.misses += 1
        if entry is not None:
            del self._entries[key]
            self.invalidations += 1
        return None

    def put(self, key: str, value: PreparedPlan) -> None:
        if self.maxsize == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def info(self) -> CacheInfo:
        return CacheInfo(
            hits=self.hits,
            misses=self.misses,
            size=len(self._entries),
            maxsize=self.maxsize,
            invalidations=self.invalidations,
        )

    def __len__(self) -> int:
        return len(self._entries)


#: Result-cache key: (full plan-cache key, table versions at build time).
_ResultKey = tuple[str, tuple[tuple[str, int], ...]]


class _ResultCache:
    """Version-keyed LRU of whole :class:`QueryResult` objects.

    Keys embed the input-table versions, so a mutation *is* the
    invalidation — the bumped version simply never matches again and the
    stale entry ages out of the LRU.  ``maxsize=0`` disables caching.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 0:
            raise ReproError(f"result cache size must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[_ResultKey, QueryResult]" = OrderedDict()

    def get(self, key: _ResultKey) -> Optional[QueryResult]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: _ResultKey, value: QueryResult) -> None:
        if self.maxsize == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)


class Database:
    """A session over a catalog: SQL, fluent algebra, one execution engine.

    Parameters
    ----------
    source:
        A :class:`Catalog`, a plain ``name → Relation`` mapping, a
        zero-argument callable returning either (e.g. the workload
        generators ``textbook_catalog`` / ``generate_catalog``), or ``None``
        for an empty catalog to be populated via :meth:`add_table`.
    cost_based:
        Use the cost-based rewriter instead of the heuristic fixpoint one.
    planner_options:
        Physical algorithm choices for the logical→physical mapping.
    recognize_division:
        Default for the SQL frontend's universal-quantification recognizer.
    cache_size:
        Maximum number of prepared plans kept (LRU); 0 disables the cache.
    result_cache_size:
        Maximum number of whole :class:`QueryResult` objects kept, keyed
        by (canonical fingerprint + configuration, input table versions);
        a table mutation bumps the version so stale entries can never be
        served.  0 disables result caching.
    batch_size:
        Chunk size used by the physical executor for every query this
        session runs (defaults to the engine-wide
        :data:`~repro.physical.base.DEFAULT_BATCH_SIZE`).  Results and
        per-operator tuple counts are independent of it.
    workers:
        Worker-pool size for partition-parallel execution (shorthand for
        ``PlannerOptions(workers=...)``).  The cost-based planner only
        parallelizes operators whose estimated input is large enough to
        amortize the worker startup, so small queries stay serial even at
        ``workers=8``; results are identical either way.
    compile:
        Segment-compilation mode (shorthand for
        ``PlannerOptions(compile=...)``): ``None``/``"auto"`` compiles every
        fusable streaming segment, ``True``/``"on"`` forces compilation,
        ``False``/``"off"`` keeps the interpreted pipeline.  Results and
        statistics are identical either way.
    memory_budget_mb:
        Spill budget (in MB) for partition-parallel exchanges: once the
        buffered partitions of an exchange outgrow it, the largest ones
        are spilled to disk in the columnar block format and re-streamed
        by the workers.  A pure runtime knob — results, per-operator tuple
        counts and plan choices are identical with or without it.
    faults:
        A :class:`~repro.faults.FaultPlan` to install process-wide for
        deterministic fault injection (testing/chaos runs only): the
        registered fault points in the pool, storage and spill layers
        consult it and raise/delay/corrupt/crash according to the plan's
        seeded streams.  ``None`` leaves the current plan (possibly armed
        via the ``REPRO_FAULTS`` environment variable) untouched.
    """

    def __init__(
        self,
        source: DatabaseSource = None,
        *,
        cost_based: bool = False,
        planner_options: Optional[PlannerOptions] = None,
        allow_data_inspection: bool = True,
        recognize_division: bool = True,
        cache_size: int = 128,
        result_cache_size: int = 64,
        batch_size: Optional[int] = None,
        workers: Optional[int] = None,
        compile: Union[None, bool, str] = None,
        memory_budget_mb: Optional[float] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if batch_size is not None and batch_size < 1:
            raise ReproError(f"batch size must be positive, got {batch_size}")
        if workers is not None and workers < 1:
            raise ReproError(f"workers must be positive, got {workers}")
        if memory_budget_mb is not None and memory_budget_mb <= 0:
            raise ReproError(f"memory budget must be positive, got {memory_budget_mb}")
        if faults is not None:
            if not isinstance(faults, FaultPlan):
                raise ReproError(
                    f"faults must be a FaultPlan, got {type(faults).__name__}"
                )
            fault_registry.install_plan(faults)
        self.batch_size = batch_size
        self.memory_budget_mb = memory_budget_mb
        stored_versions: dict[str, int] = {}
        stored_views: list[dict[str, Any]] = []
        if isinstance(source, (str, os.PathLike)):
            from repro.storage.store import load_store

            self.catalog, stored_versions, stored_views = load_store(source)
        else:
            self.catalog = _coerce_catalog(source)
        self.planner_options = planner_options or PlannerOptions()
        if workers is not None and self.planner_options.workers != workers:
            self.planner_options = replace(self.planner_options, workers=workers)
        if compile is not None and self.planner_options.compile != compile:
            self.planner_options = replace(self.planner_options, compile=compile)
        self.cost_based = cost_based
        self.recognize_division = recognize_division
        self.allow_data_inspection = allow_data_inspection
        self._optimizer = Optimizer(
            self.catalog,
            planner_options=self.planner_options,
            cost_based=cost_based,
            allow_data_inspection=allow_data_inspection,
        )
        self._configuration = optimizer_signature(
            cost_based, self.planner_options, allow_data_inspection
        )
        self._cache = _PlanCache(cache_size)
        self._result_cache = _ResultCache(result_cache_size)
        #: Monotonically increasing per-table version counters.  The
        #: Optimizer constructor above snapshotted statistics from the
        #: catalog, so every table's statistics are fresh at its current
        #: version right now.
        self._versions: dict[str, int] = {
            name: stored_versions.get(name, 0) for name in self.catalog
        }
        self._stats_versions: dict[str, int] = dict(self._versions)
        self._views: "dict[str, MaintainedView]" = {}
        if stored_views:
            from repro.views.persist import view_from_payload

            for payload in stored_views:
                view_from_payload(self, payload)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_catalog(cls, catalog: Catalog, **options) -> "Database":
        """A session over an existing catalog."""
        return cls(catalog, **options)

    @classmethod
    def from_relations(cls, relations: Mapping[str, Relation], **options) -> "Database":
        """A session over plain named relations (no declared constraints)."""
        return cls(relations, **options)

    # ------------------------------------------------------------------
    # query entry points
    # ------------------------------------------------------------------
    def sql(self, text: str, recognize_division: Optional[bool] = None) -> Query:
        """A lazy query from SQL text (translated on first use)."""
        recognize = (
            self.recognize_division if recognize_division is None else recognize_division
        )
        return Query(self, sql=text, recognize_division=recognize)

    def table(self, name: str) -> Query:
        """A fluent query rooted at a catalog table."""
        return Query(self, expression=self.catalog.ref(name))

    def query(self, expression: Expression) -> Query:
        """Wrap an already-built logical expression as a query."""
        return Query(self, expression=expression)

    def execute(self, query: Union[Query, Expression, str]) -> QueryResult:
        """Run SQL text, a query or an expression in one call."""
        return self._as_query(query).run()

    def explain(
        self,
        query: Union[Query, Expression, str],
        analyze: bool = False,
        verbose: bool = False,
        verify: bool = False,
    ) -> str:
        """Explain SQL text, a query or an expression in one call.

        ``verbose=True`` appends the generated source of every compiled
        pipeline segment; ``verify=True`` adds the static verifier's
        status line and findings.
        """
        return self._as_query(query).explain(analyze=analyze, verbose=verbose, verify=verify)

    def verify(self, query: Union[Query, Expression, str]) -> "VerificationReport":
        """Statically verify the prepared plan for SQL text, a query or an
        expression; returns a
        :class:`~repro.analysis.findings.VerificationReport`."""
        return self._as_query(query).verify()

    def prepare(self, query: Union[Query, Expression, str]) -> Query:
        """Rewrite + plan now; the returned query's ``run()`` is a cache hit."""
        return self._as_query(query).prepare()

    # ------------------------------------------------------------------
    # catalog management
    # ------------------------------------------------------------------
    def add_table(self, name: str, relation: Relation, key=None) -> Query:
        """Register a relation; statistics and cached plans are refreshed."""
        self.catalog.add_table(name, relation, key=key)
        self._versions.setdefault(name, 0)
        self._refresh(name)
        return self.table(name)

    def replace_table(self, name: str, relation: Relation) -> None:
        """Swap a table's contents (same schema); bumps the table version,
        routes the effective delta to maintained views, and invalidates
        cached plans."""
        old = self.relation(name)
        self.catalog.replace_table(name, relation)
        current = self.catalog[name]
        self._note_mutation(name, current.difference(old), old.difference(current))
        self._refresh(name)

    # ------------------------------------------------------------------
    # mutations (copy-on-write, version-counted)
    # ------------------------------------------------------------------
    def insert(self, table: str, rows: "RowsLike") -> MutationResult:
        """Insert rows into a table (set semantics: duplicates are no-ops).

        The relation is immutable, so the mutation is a copy-on-write
        union of the old row set with the effective delta; the table's
        version counter bumps only when the delta is non-empty, and every
        maintained view over the table incorporates the delta through its
        counter table (O(delta), not O(table)).
        """
        current = self.relation(table)
        addition = _coerce_rows(current, rows)
        inserted = addition.difference(current)
        empty = _empty_like(current)
        if len(inserted):
            self.catalog.replace_table(table, current.union(inserted))
        version = self._note_mutation(table, inserted, empty)
        return MutationResult(table=table, inserted=inserted, deleted=empty, version=version)

    def delete(self, table: str, rows_or_predicate: "DeleteSpec") -> MutationResult:
        """Delete rows from a table, by predicate/callable or by value.

        ``rows_or_predicate`` may be a predicate AST node, any row
        callable, or the same row forms :meth:`insert` accepts; rows not
        currently present are no-ops (set semantics).  Copy-on-write like
        :meth:`insert`: the new relation masks the deleted rows out.
        """
        current = self.relation(table)
        if isinstance(rows_or_predicate, Predicate) or (
            callable(rows_or_predicate) and not isinstance(rows_or_predicate, Relation)
        ):
            deleted = current.select(rows_or_predicate)
        else:
            requested = _coerce_rows(current, rows_or_predicate)
            deleted = current.intersection(requested)
        empty = _empty_like(current)
        if len(deleted):
            self.catalog.replace_table(table, current.difference(deleted))
        version = self._note_mutation(table, empty, deleted)
        return MutationResult(table=table, inserted=empty, deleted=deleted, version=version)

    def table_version(self, name: str) -> int:
        """The table's current version counter (0 = never mutated)."""
        if name not in self.catalog:
            raise SchemaError(f"table {name!r} is not defined")
        return self._versions.get(name, 0)

    @property
    def versions(self) -> dict[str, int]:
        """A snapshot of every table's version counter."""
        return {name: self._versions.get(name, 0) for name in self.catalog}

    def _note_mutation(self, name: str, inserted: Relation, deleted: Relation) -> int:
        """Bump the version and notify views; empty deltas change nothing."""
        if not len(inserted) and not len(deleted):
            return self._versions.get(name, 0)
        version = self._versions.get(name, 0) + 1
        self._versions[name] = version
        for view in self._views.values():
            view.on_mutation(name, inserted, deleted, version)
        return version

    # ------------------------------------------------------------------
    # maintained views
    # ------------------------------------------------------------------
    def create_view(
        self, name: str, query: Union[Query, Expression, str]
    ) -> "MaintainedView":
        """Register a division query as a (delta-maintained) view.

        When the query's shape supports all four delta rules of
        :mod:`repro.laws.delta`, subsequent mutations of the base tables
        update the view's counter table in O(delta) and reads answer from
        it; otherwise the view recomputes on read (``view.explain()``
        reports which).  Views over views are rejected (RP604) — maintain
        the base-table view directly instead.
        """
        from repro.views.view import MaintainedView

        if name in self._views:
            raise ViewError(f"view {name!r} already exists")
        if name in self.catalog:
            raise ViewError(f"{name!r} is a table; view names must not shadow tables")
        bound = self._as_query(query)
        over_views = sorted(bound.expression.relation_names() & self._views.keys())
        if over_views:
            raise ViewError(
                f"view {name!r} references view(s) {over_views!r}; views over "
                "views are not maintainable (RP604) — define it over the base tables"
            )
        view = MaintainedView(name, self, bound)
        self._views[name] = view
        return view

    def view(self, name: str) -> "MaintainedView":
        """Look up a registered view."""
        try:
            return self._views[name]
        except KeyError:
            raise ViewError(f"view {name!r} is not defined") from None

    @property
    def views(self) -> tuple[str, ...]:
        """Names of the registered views, in creation order."""
        return tuple(self._views)

    def drop_view(self, name: str) -> None:
        """Unregister a view (its counter table is discarded)."""
        if name not in self._views:
            raise ViewError(f"view {name!r} is not defined")
        del self._views[name]

    def verify_view(self, name: str) -> "VerificationReport":
        """Check a registered view's RP601–RP604 invariants."""
        from repro.analysis.view_verifier import verify_view

        return verify_view(self.view(name), self)

    def relation(self, name: str) -> Relation:
        """The current contents of a table."""
        try:
            return self.catalog[name]
        except KeyError:
            raise SchemaError(f"table {name!r} is not defined") from None

    @property
    def tables(self) -> tuple[str, ...]:
        """Names of the registered tables."""
        return tuple(self.catalog)

    def analyze(self, *names: str) -> AnalyzeReport:
        """Recollect table statistics from the session's current relations.

        The ``ANALYZE`` path: refreshes cardinality, per-attribute distinct
        counts, min/max and scan-order sortedness for the given tables
        (default: all of them) and drops cached plans, since the cost-based
        planner may now choose different algorithms.  Unknown names raise
        :class:`SchemaError` (from the statistics layer), listing the known
        tables.
        """
        gathered = self._optimizer.analyze(list(names) or None)
        for name in gathered:
            self._stats_versions[name] = self._versions.get(name, 0)
        # New statistics can flip planner decisions without any version
        # movement; cached results carry the old decisions, so drop them too.
        self._cache.clear()
        self._result_cache.clear()
        return AnalyzeReport(tables=gathered)

    def save(self, path: Union[str, "os.PathLike[str]"], *, block_size: Optional[int] = None) -> str:
        """Persist every table to ``path`` in the columnar block format.

        Writes one block file per table (fixed-size blocks with per-column
        dictionary pages and per-block min/max zone maps) plus a manifest
        carrying the declared keys, so ``repro.connect(path)`` reopens the
        same catalog lazily — tables stream from disk on demand and
        ``analyze()`` reads the save-time statistics without touching the
        blocks.  Returns the store directory path.

        Mutated tables are already materialized relations, so unflushed
        mutations persist naturally; table versions and registered views
        go into the manifest so ``repro.connect(path)`` restores both.
        Fallback (non-maintained) views have no counter-table form and
        make the save **fail loudly** — drop them first or recreate them
        after reopening.
        """
        from repro.storage.store import save_database
        from repro.views.persist import view_payload

        views = [view_payload(view) for view in self._views.values()]
        extra: dict[str, Any] = {
            "table_versions": dict(self._versions),
            "views": views,
        }
        if block_size is None:
            save_database(path, self.catalog, **extra)
        else:
            save_database(path, self.catalog, block_size=block_size, **extra)
        return os.fspath(path)

    # ------------------------------------------------------------------
    # plan cache
    # ------------------------------------------------------------------
    def cache_info(self) -> CacheInfo:
        """Hit/miss counters of the prepared-plan and result caches."""
        return replace(
            self._cache.info(),
            result_hits=self._result_cache.hits,
            result_misses=self._result_cache.misses,
            result_size=len(self._result_cache),
            result_maxsize=self._result_cache.maxsize,
        )

    def clear_cache(self) -> None:
        """Drop all prepared plans and cached results; reset the counters."""
        self._cache.clear()
        self._result_cache.clear()

    # ------------------------------------------------------------------
    # the single execution path (internal; Query delegates here)
    # ------------------------------------------------------------------
    def _translate(self, sql: str, recognize_division: bool) -> Expression:
        return SQLTranslator(self.catalog, recognize_division=recognize_division).translate(sql)

    def _prepare(self, expression: Expression) -> tuple[PreparedPlan, bool]:
        """Prepared plan for ``expression``; (plan, came_from_cache).

        Version-checked: the plan records the versions of its input tables,
        and a lookup after any of them mutated evicts the stale entry and
        replans — the physical scans pin relation contents at build time,
        so a stale plan would serve pre-mutation rows.  Statistics for the
        referenced tables are refreshed first if their versions moved
        (``analyze`` is lazy under mutations).
        """
        canonical = expression.canonical()
        names = sorted(canonical.relation_names() & set(self.catalog))
        self._refresh_stale_statistics(names)
        versions = tuple((name, self._versions.get(name, 0)) for name in names)
        key = plan_cache_key(canonical, self._configuration, assume_canonical=True)
        cached = self._cache.lookup(key, versions)
        if cached is not None:
            return cached, True
        rewrite_report = self._optimizer.rewrite(canonical)
        plan = self._optimizer.plan(rewrite_report.result)
        prepared = PreparedPlan(
            fingerprint=key.split(":", 1)[0],
            canonical=canonical,
            rewrite_report=rewrite_report,
            original_cost=self._optimizer.cost_report(canonical),
            rewritten_cost=self._optimizer.cost_report(rewrite_report.result),
            plan=plan,
            decisions=self._optimizer.planner_decisions,
            compilation=self._optimizer.planner_compilation,
            table_versions=versions,
            cache_key=key,
        )
        self._cache.put(key, prepared)
        return prepared, False

    def _refresh_stale_statistics(self, names: Iterable[str]) -> None:
        """Recollect statistics for tables whose version moved past the
        statistics snapshot (mutations defer this work to prepare time)."""
        for name in names:
            if name not in self.catalog:
                continue
            version = self._versions.get(name, 0)
            if self._stats_versions.get(name) != version:
                self._optimizer.statistics.add(
                    name, TableStatistics.from_relation(self.catalog[name])
                )
                self._stats_versions[name] = version

    @property
    def workers(self) -> int:
        """The session's degree of parallelism (1 = serial execution)."""
        return self.planner_options.workers or 1

    def _run(self, query: Query) -> QueryResult:
        expression = query.expression
        prepared, cache_hit = self._prepare(expression)
        result_key = (prepared.cache_key, prepared.table_versions)
        cached = self._result_cache.get(result_key)
        if cached is not None:
            # The versions in the key were verified current by _prepare, so
            # the cached relation is exact; no physical execution happens.
            # ``cache_hit`` reflects *this* call's plan lookup, not the
            # snapshot taken when the entry was first executed.
            return replace(cached, cache_hit=cache_hit, result_cache_hit=True)
        execution = execute_plan(
            prepared.plan,
            batch_size=self.batch_size,
            workers=self.workers,
            memory_budget_mb=self.memory_budget_mb,
        )
        result = QueryResult(
            relation=execution.relation,
            expression=expression,
            rewritten=prepared.rewritten,
            rules_fired=tuple(prepared.rules_fired),
            statistics=execution.statistics,
            fingerprint=prepared.fingerprint,
            cache_hit=cache_hit,
            estimated_cost_before=prepared.original_cost.total_cost,
            estimated_cost_after=prepared.rewritten_cost.total_cost,
            decisions=prepared.decisions,
        )
        self._result_cache.put(result_key, result)
        return result

    def _as_query(self, query: Union[Query, Expression, str]) -> Query:
        if isinstance(query, Query):
            if query.database is not self:
                raise ReproError("this query is bound to a different database session")
            return query
        if isinstance(query, Expression):
            return self.query(query)
        if isinstance(query, str):
            return self.sql(query)
        raise ReproError(f"cannot interpret {query!r} as a query")

    def _refresh(self, name: str) -> None:
        """Refresh statistics-derived state after one table changed.

        The optimizer's rewriter context and planner read the catalog live,
        so only the changed table's statistics need recomputing (the
        :class:`StatisticsCatalog` is shared with the cost model); cached
        plans may embed stale rewrite decisions and are dropped wholesale.
        """
        self._optimizer.statistics.add(name, TableStatistics.from_relation(self.catalog[name]))
        self._stats_versions[name] = self._versions.get(name, 0)
        # Catalog-level swaps can change layout (clustering) without moving
        # the version counter, so version-keyed entries cannot be trusted:
        # drop results along with the plans.
        self._cache.clear()
        self._result_cache.clear()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def optimizer(self) -> Optimizer:
        """The underlying optimizer (advanced use)."""
        return self._optimizer

    def __repr__(self) -> str:
        info = self.cache_info()
        return (
            f"<Database tables={list(self.tables)!r} "
            f"cache={info.size}/{info.maxsize} (hits={info.hits}, misses={info.misses})>"
        )


def connect(source: DatabaseSource = None, **options) -> Database:
    """Open a session: ``repro.connect(textbook_catalog)`` and go.

    ``source`` may be a :class:`Catalog`, a plain ``name → Relation``
    mapping, a zero-argument callable returning either (a workload
    generator), the path of a store directory written by
    :meth:`Database.save` (tables then open *lazily* and stream their
    blocks from disk), or ``None`` for an empty session.  Keyword options
    are forwarded to :class:`Database` — e.g.
    ``repro.connect(textbook_catalog, batch_size=4096)`` sets the executor
    chunk size for every query of the session,
    ``repro.connect(catalog, workers=4)`` lets the planner parallelize
    large divisions/joins/aggregations over a 4-worker pool, and
    ``repro.connect(path, memory_budget_mb=64)`` makes those parallel
    exchanges spill partitions to disk once they outgrow the budget, and
    ``repro.connect(catalog, faults=FaultPlan.parse("pool.worker:raise"))``
    arms deterministic fault injection for chaos testing (also available
    without code changes via the ``REPRO_FAULTS`` environment variable).
    """
    return Database(source, **options)


def _coerce_catalog(source: DatabaseSource) -> Catalog:
    if source is None:
        return Catalog()
    if isinstance(source, Catalog):
        return source
    if isinstance(source, (str, os.PathLike)):
        from repro.storage.store import load_catalog

        return load_catalog(source)
    if callable(source):
        produced = source()
        if isinstance(produced, (Catalog, Mapping)):
            return _coerce_catalog(produced)  # type: ignore[arg-type]
        raise ReproError(
            f"workload generator {source!r} returned {type(produced).__name__}; "
            "expected a Catalog or a name → Relation mapping"
        )
    if isinstance(source, Mapping):
        catalog = Catalog()
        for name, relation in source.items():
            if not isinstance(relation, Relation):
                raise ReproError(
                    f"table {name!r} is a {type(relation).__name__}, expected a Relation"
                )
            catalog.add_table(name, relation)
        return catalog
    raise ReproError(
        f"cannot build a Database from {type(source).__name__}; "
        "pass a Catalog, a name → Relation mapping, or a generator callable"
    )
