"""Public session API: one front door for SQL, fluent algebra and execution.

>>> import repro
>>> db = repro.connect(textbook_catalog)
>>> result = db.sql("SELECT ... DIVIDE BY ...").run()
>>> result.relation, result.rules_fired, result.max_intermediate

See :class:`Database` (sessions, prepared-plan cache), :class:`Query`
(lazy SQL / fluent builder) and :class:`QueryResult` (one execution's
result + statistics).
"""

from repro.api.database import Database, DatabaseSource, PreparedPlan, connect
from repro.api.fingerprint import expression_fingerprint, plan_cache_key
from repro.api.query import Query
from repro.api.result import AnalyzeReport, CacheInfo, MutationResult, QueryResult

__all__ = [
    "connect",
    "Database",
    "DatabaseSource",
    "PreparedPlan",
    "Query",
    "QueryResult",
    "MutationResult",
    "AnalyzeReport",
    "CacheInfo",
    "expression_fingerprint",
    "plan_cache_key",
]
