"""Results of one query execution through the public API.

A :class:`QueryResult` bundles everything a single physical execution
produced: the result relation, which rewrite laws fired, per-operator tuple
counts, the paper's max-intermediate metric, and wall-clock time.  The CLI,
the examples and the experiment harness all read from one of these instead
of running a query twice through disjoint paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.algebra.expressions import Expression
from repro.optimizer.physical_cost import PlanDecision
from repro.optimizer.statistics import TableStatistics
from repro.physical.base import PlanStatistics
from repro.relation.relation import Relation
from repro.relation.row import Row
from repro.relation.schema import AttributeNames

__all__ = ["AnalyzeReport", "CacheInfo", "MutationResult", "QueryResult"]


@dataclass(frozen=True)
class AnalyzeReport:
    """What one ``ANALYZE`` pass collected, per table."""

    tables: Mapping[str, TableStatistics]

    def render(self) -> str:
        """Human-readable statistics summary (used by ``repro analyze``)."""
        lines: list[str] = []
        for name, stats in self.tables.items():
            lines.append(f"{name}: {stats.cardinality} rows")
            for attribute, distinct in stats.distinct_values.items():
                extras = [f"distinct={distinct}"]
                minimum, maximum = stats.minimum(attribute), stats.maximum(attribute)
                if minimum is not None:
                    extras.append(f"min={minimum!r}")
                if maximum is not None:
                    extras.append(f"max={maximum!r}")
                if stats.is_sorted(attribute):
                    extras.append("sorted")
                if stats.top_frequency(attribute):
                    extras.append(f"skew={stats.partition_skew(attribute):.2f}")
                lines.append(f"  {attribute}: {', '.join(extras)}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.tables)


@dataclass(frozen=True)
class CacheInfo:
    """Hit/miss counters of a database's caches.

    The first four fields describe the prepared-plan LRU (PR 2); the
    ``result_*`` fields describe the version-keyed result cache, and
    ``invalidations`` counts plan-cache entries dropped because a table
    version moved past them (both 0 on databases that never mutate).
    """

    hits: int
    misses: int
    size: int
    maxsize: int
    #: Plan-cache entries evicted by a table-version bump at lookup time.
    invalidations: int = 0
    #: Version-keyed result cache (QueryResults of non-view queries).
    result_hits: int = 0
    result_misses: int = 0
    result_size: int = 0
    result_maxsize: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def result_hit_rate(self) -> float:
        """Fraction of result lookups served from cache (0.0 when unused)."""
        total = self.result_hits + self.result_misses
        return self.result_hits / total if total else 0.0


@dataclass(frozen=True)
class MutationResult:
    """What one ``insert``/``delete`` statement actually changed.

    ``inserted``/``deleted`` are the *effective* set deltas (rows already
    present do not insert; rows already absent do not delete), and
    ``version`` is the table's version counter after the statement —
    unchanged when the delta was empty.
    """

    table: str
    inserted: Relation
    deleted: Relation
    version: int

    @property
    def changed(self) -> bool:
        return bool(len(self.inserted) or len(self.deleted))

    def __repr__(self) -> str:
        return (
            f"<MutationResult {self.table!r} +{len(self.inserted)} "
            f"-{len(self.deleted)} version={self.version}>"
        )


@dataclass(frozen=True)
class QueryResult:
    """Everything one execution of a :class:`~repro.api.query.Query` produced."""

    #: The materialized result.
    relation: Relation
    #: The logical expression as written (SQL translation or fluent build).
    expression: Expression
    #: The canonical, law-rewritten expression the physical plan came from.
    rewritten: Expression
    #: Names of the rewrite laws that fired, in application order.
    rules_fired: tuple[str, ...]
    #: Per-operator tuple counts and wall-clock time of the one execution.
    statistics: PlanStatistics
    #: Canonical fingerprint of the query (the plan-cache key prefix).
    fingerprint: str
    #: True if the physical plan came from the prepared-plan cache.
    cache_hit: bool
    #: Estimated cost before and after rewriting (abstract tuple-touch units).
    estimated_cost_before: float
    estimated_cost_after: float
    #: Algorithm decisions the cost-based planner made for this plan.
    decisions: tuple[PlanDecision, ...] = field(default=())
    #: True if the whole QueryResult came from the version-keyed result
    #: cache (no physical execution happened for this call).
    result_cache_hit: bool = False

    # ------------------------------------------------------------------
    # statistics conveniences
    # ------------------------------------------------------------------
    @property
    def tuple_counts(self) -> Mapping[str, int]:
        """Per-operator tuple counts (operator label → tuples emitted)."""
        return dict(self.statistics.tuples_by_operator)

    @property
    def max_intermediate(self) -> int:
        """Largest intermediate result of the execution (the paper's metric)."""
        return self.statistics.max_intermediate

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock seconds of the one physical execution."""
        return self.statistics.elapsed_seconds

    @property
    def estimated_speedup(self) -> float:
        """Ratio of estimated costs (original / rewritten)."""
        if self.estimated_cost_after == 0:
            return float("inf")
        return self.estimated_cost_before / self.estimated_cost_after

    # ------------------------------------------------------------------
    # relation conveniences
    # ------------------------------------------------------------------
    def rows(self) -> Iterator[Row]:
        """Iterate over the result rows."""
        return iter(self.relation)

    def to_tuples(self, attributes: AttributeNames | None = None) -> list[tuple[Any, ...]]:
        """The result as value tuples (in the relation's attribute order)."""
        names = attributes if attributes is not None else self.relation.schema.names
        return self.relation.to_tuples(names)

    def __len__(self) -> int:
        return len(self.relation)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.relation)

    def __repr__(self) -> str:
        return (
            f"<QueryResult {len(self.relation)} rows, "
            f"{len(self.rules_fired)} rules fired, "
            f"max_intermediate={self.max_intermediate}, "
            f"cache_hit={self.cache_hit}>"
        )
