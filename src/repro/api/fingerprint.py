"""Cache keys for prepared plans.

A prepared plan is valid for a *canonical expression* under a fixed
optimizer configuration.  The cache key therefore combines the expression's
canonical fingerprint (:func:`repro.algebra.canonical.expression_fingerprint`)
with a digest of everything that changes which plan the optimizer would
produce: the rewrite strategy and the physical algorithm choices.

Statistics are intentionally *not* part of the key: a
:class:`~repro.api.database.Database` snapshots its statistics at
construction time, and its plan cache lives and dies with it.
"""

from __future__ import annotations

import hashlib

from repro.algebra.canonical import expression_fingerprint
from repro.algebra.expressions import Expression
from repro.errors import PlanningError
from repro.optimizer.planner import PlannerOptions

__all__ = ["expression_fingerprint", "optimizer_signature", "plan_cache_key"]


def _compile_part(planner_options: PlannerOptions) -> str:
    """The compile-mode component of the signature.

    Invalid values still produce a (distinct) signature here — the
    :class:`PlanningError` is deferred to prepare time, matching how unknown
    algorithm names are reported.
    """
    try:
        return f"compile={planner_options.compile_mode()}"
    except PlanningError:
        return f"compile={planner_options.compile!r}"


def optimizer_signature(
    cost_based: bool,
    planner_options: PlannerOptions,
    allow_data_inspection: bool = True,
) -> str:
    """A short digest of the optimizer configuration.

    Covers every knob that changes which plan the optimizer produces: the
    rewrite strategy, whether rules may inspect data to establish their
    preconditions, and the physical algorithm choices.
    """
    parts = (
        "cost_based" if cost_based else "heuristic",
        "inspecting" if allow_data_inspection else "static",
        planner_options.small_divide_algorithm or "auto",
        planner_options.great_divide_algorithm or "auto",
        planner_options.join_algorithm or "auto",
        f"workers={planner_options.workers or 1}",
        f"partitions={planner_options.partitions or planner_options.workers or 1}",
        repr(sorted(planner_options.extras.items())),
        _compile_part(planner_options),
    )
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()[:16]


def plan_cache_key(
    expression: Expression, configuration: str, *, assume_canonical: bool = False
) -> str:
    """Cache key for ``expression`` under one optimizer ``configuration``.

    Set ``assume_canonical=True`` when ``expression`` is already canonical
    to skip a redundant pull-up pass (canonicalization is idempotent, so
    passing a raw expression without the flag is merely slower, not wrong).
    """
    digest = expression_fingerprint(expression, assume_canonical=assume_canonical)
    return f"{digest}:{configuration}"
