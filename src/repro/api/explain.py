"""EXPLAIN rendering: before/after logical trees and the physical plan.

The logical trees are annotated with the optimizer's cardinality estimates;
the physical plan shows, per node, the estimated cardinality and — under
``explain(analyze=True)`` (one real execution) — the actual tuple count and
the *q-error* ``max(est, actual) / min(est, actual)`` (floored at one
tuple), the standard measure of how far the estimate was off.

Estimates transfer from the logical to the physical tree by walking both in
parallel — the planner maps every logical node to exactly one physical
operator with the same arity.  Where a physical algorithm expands
differently (e.g. the algebra-simulation division's inner plan) the
parallel walk stops and a bottom-up *physical* estimator fills in the
remaining nodes from their children, so every plan node carries an
estimate.

Operators chosen by the cost-based planner additionally render their
:class:`~repro.optimizer.physical_cost.PlanDecision` — the chosen
algorithm, its estimated cost, and the priced alternatives it beat.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.algebra.expressions import Expression
from repro.optimizer.statistics import DEFAULT_SELECTIVITY, CardinalityEstimator
from repro.physical import (
    DifferenceOp,
    Filter,
    IntersectOp,
    ProductOp,
    RelationScan,
    TableScan,
    UnionOp,
)
from repro.physical.base import PhysicalOperator
from repro.physical.executor import execute_plan
from repro.storage.scan import StoredScan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.database import Database
    from repro.api.query import Query

__all__ = ["render_explain", "q_error"]


def q_error(estimated: float, actual: float) -> float:
    """The q-error of one estimate: ``max(est, act) / min(est, act)``.

    Both quantities are floored at one tuple so empty results do not
    divide by zero; a perfect estimate has q-error 1.0.
    """
    estimated = max(float(estimated), 1.0)
    actual = max(float(actual), 1.0)
    return max(estimated / actual, actual / estimated)


def render_explain(
    database: "Database",
    query: "Query",
    analyze: bool = False,
    verbose: bool = False,
    verify: bool = False,
) -> str:
    """Multi-section EXPLAIN (optionally EXPLAIN ANALYZE) for ``query``.

    ``verbose=True`` appends the generated source of every compiled
    pipeline segment; ``verify=True`` runs the static verifier over the
    prepared plan and adds a ``verification`` status line plus any
    findings (with their stable RP codes).
    """
    expression = query.expression
    prepared, cache_hit = database._prepare(expression)
    estimator = CardinalityEstimator(database.optimizer.statistics)

    actual: Optional[dict[int, int]] = None
    if analyze:
        execution = execute_plan(
            prepared.plan,
            batch_size=database.batch_size,
            workers=database.workers,
            memory_budget_mb=database.memory_budget_mb,
        )
        actual = {id(op): op.tuples_out for op in prepared.plan.walk()}

    lines: list[str] = []
    if query.sql is not None:
        lines.append("SQL")
        lines.extend("  " + line for line in query.sql.strip().splitlines())
        lines.append("")
    lines.append(f"fingerprint : {prepared.fingerprint[:16]}  (plan cache: "
                 f"{'hit' if cache_hit else 'miss'})")
    compilation = prepared.compilation
    if compilation is None:
        lines.append("compiled    : no (compilation off)")
    else:
        lines.append(f"compiled    : {compilation.summary()}")
    if verify:
        from repro.analysis.check import verify_prepared

        report = verify_prepared(prepared, database.catalog)
        lines.append(f"verification: {report.summary()}")
        lines.extend("  " + finding.render() for finding in report.findings)
    lines.append("")

    lines.append("Logical plan (as written)")
    lines.extend(_logical_lines(expression, estimator))
    lines.append("")

    fired = ", ".join(prepared.rules_fired) or "(none)"
    lines.append(f"Rewrite rules fired : {fired}")
    lines.append("")

    lines.append("Logical plan (canonical, rewritten)")
    lines.extend(_logical_lines(prepared.rewritten, estimator))
    lines.append("")

    before = prepared.original_cost.total_cost
    after = prepared.rewritten_cost.total_cost
    speedup = float("inf") if after == 0 else before / after
    lines.append(
        f"Estimated cost : {before:.0f} -> {after:.0f} (x{speedup:.2f})"
    )
    lines.append("")

    lines.append("Physical plan" + (" (analyzed: 1 execution)" if analyze else ""))
    estimates = _physical_estimates(prepared.plan, prepared.rewritten, estimator)
    lines.extend(_physical_lines(prepared.plan, estimates, actual))
    if analyze:
        lines.append("")
        worker_ms = execution.statistics.worker_seconds * 1000
        coordinator_ms = max(execution.elapsed_seconds * 1000 - worker_ms, 0.0)
        lines.append(
            f"max intermediate = {execution.max_intermediate} tuples, "
            f"elapsed = {execution.elapsed_seconds * 1000:.2f} ms "
            f"(coordinator {coordinator_ms:.2f} ms + workers {worker_ms:.2f} ms)"
        )
        statistics = execution.statistics
        if statistics.tasks_retried or statistics.tasks_degraded or statistics.faults_injected:
            injected = ", ".join(
                f"{point}={count}"
                for point, count in sorted(statistics.faults_injected.items())
            ) or "none"
            lines.append(
                f"supervision: {statistics.tasks_retried} task(s) retried, "
                f"{statistics.tasks_degraded} degraded to inline, "
                f"faults injected: {injected}"
            )
    if verbose and compilation is not None and compilation.segments:
        lines.append("")
        lines.append("Compiled segments")
        for number, segment in enumerate(compilation.segments, start=1):
            origin = "shared code object" if segment.shared else "freshly compiled"
            lines.append(
                f"  segment {number}: {segment.root} "
                f"({segment.fused_count} operator(s) fused, {origin})"
            )
            lines.extend("    " + line for line in segment.source.splitlines())
    return "\n".join(lines)


# ----------------------------------------------------------------------
# logical tree with estimates
# ----------------------------------------------------------------------
def _logical_lines(expression: Expression, estimator: CardinalityEstimator) -> list[str]:
    lines: list[str] = []

    def visit(node: Expression, indent: int) -> None:
        estimate = estimator.cardinality(node)
        lines.append(f"  {'  ' * indent}{node._pretty_label()}  [est~{estimate:.0f} rows]")
        for child in node.children:
            visit(child, indent + 1)

    visit(expression, 0)
    return lines


# ----------------------------------------------------------------------
# physical tree with estimated vs actual cardinalities
# ----------------------------------------------------------------------
def _physical_estimates(
    plan: PhysicalOperator,
    expression: Expression,
    estimator: CardinalityEstimator,
) -> dict[int, float]:
    """Map every physical operator (by id) to a cardinality estimate.

    A parallel logical/physical walk transfers the estimator's figures
    wherever the trees mirror each other; composite physical algorithms
    (whose subtree has no logical counterpart) are filled in bottom-up from
    their children by :func:`_fallback_estimate`.
    """
    estimates: dict[int, float] = {}

    def visit(operator: PhysicalOperator, node: Expression) -> None:
        estimates[id(operator)] = estimator.cardinality(node)
        if len(operator.children) == len(node.children):
            for child_op, child_node in zip(operator.children, node.children):
                visit(child_op, child_node)

    visit(plan, expression)

    def fill(operator: PhysicalOperator) -> float:
        for child in operator.children:
            fill(child)
        if id(operator) not in estimates:
            estimates[id(operator)] = _fallback_estimate(operator, estimates)
        return estimates[id(operator)]

    fill(plan)
    return estimates


def _fallback_estimate(operator: PhysicalOperator, estimates: dict[int, float]) -> float:
    """Bottom-up estimate for a physical operator without a logical twin."""
    children = [estimates.get(id(child), 1.0) for child in operator.children]
    if isinstance(operator, (RelationScan, TableScan, StoredScan)):
        return float(len(operator.relation))
    if isinstance(operator, Filter):
        return children[0] * DEFAULT_SELECTIVITY
    if isinstance(operator, ProductOp):
        return children[0] * children[1]
    if isinstance(operator, UnionOp):
        return sum(children)
    if isinstance(operator, IntersectOp):
        return min(children) * 0.5
    if isinstance(operator, DifferenceOp):
        return children[0]
    return max(children, default=1.0)


def _exchange_line(operator: PhysicalOperator, analyzed: bool) -> Optional[str]:
    """Exchange annotation for partition-parallel operators.

    Static explain reports the configured shape (partitions, DOP); after an
    ``analyze=True`` execution the line adds the measured per-partition
    input-cardinality skew — max partition size over mean partition size,
    1.00 meaning perfectly balanced.
    """
    if not operator.parallel:
        return None
    summary = f"exchange: partitions={operator.partitions}, workers={operator.workers}"
    budget = getattr(operator, "memory_budget_mb", None)
    if budget is not None:
        summary += f", budget={budget:g}MB"
    sizes = operator.partition_input_sizes
    if analyzed and sizes:
        mean = sum(sizes) / len(sizes)
        skew = (max(sizes) / mean) if mean else 1.0
        populated = sum(1 for size in sizes if size)
        summary += (
            f", {populated}/{len(sizes)} partitions populated, "
            f"input skew max/mean={skew:.2f}"
        )
    spill = getattr(operator, "spill_statistics", None)
    if analyzed and spill:
        summary += (
            f", spilled {spill['spilled_tuples']} tuples"
            f"/{spill['spilled_blocks']} blocks"
            f" in {spill['spilled_partitions']} partition(s)"
            f", peak buffered {spill['peak_buffered_tuples']} tuples"
        )
    return summary


def _storage_line(operator: PhysicalOperator, analyzed: bool) -> Optional[str]:
    """Zone-map annotation for stored-table scans.

    Static explain shows the block count and any pushed-down skip
    predicate; after an ``analyze=True`` execution the line adds how many
    blocks the zone maps actually skipped.
    """
    if not isinstance(operator, StoredScan):
        return None
    summary = f"storage: blocks={operator.blocks_total}"
    if operator.skip_predicate is not None:
        summary += f", zone-map skip on {operator.skip_predicate!r}"
    if analyzed:
        summary += f", skipped={operator.blocks_skipped}"
    return summary


def _physical_lines(
    plan: PhysicalOperator,
    estimates: dict[int, float],
    actual: Optional[dict[int, int]],
) -> list[str]:
    lines: list[str] = []

    def visit(operator: PhysicalOperator, indent: int) -> None:
        # _physical_estimates' bottom-up fill guarantees every node an entry.
        estimate = estimates[id(operator)]
        annotation = f"est~{estimate:.0f}"
        if actual is not None:
            measured = actual.get(id(operator), 0)
            annotation += f", actual={measured}, q={q_error(estimate, measured):.2f}"
        lines.append(f"  {'  ' * indent}{operator.describe()}  [{annotation} rows]")
        if operator.decision is not None:
            lines.append(f"  {'  ' * indent}  · {operator.decision.describe()}")
        if getattr(operator, "_compiled_producer", None) is not None:
            fused = getattr(operator, "_compiled_fused", 1)
            lines.append(
                f"  {'  ' * indent}  · compiled segment ({fused} operator(s) fused)"
            )
        exchange = _exchange_line(operator, analyzed=actual is not None)
        if exchange is not None:
            lines.append(f"  {'  ' * indent}  · {exchange}")
        storage = _storage_line(operator, analyzed=actual is not None)
        if storage is not None:
            lines.append(f"  {'  ' * indent}  · {storage}")
        for child in operator.children:
            visit(child, indent + 1)

    visit(plan, 0)
    return lines
