"""EXPLAIN rendering: before/after logical trees and the physical plan.

The logical trees are annotated with the optimizer's cardinality estimates;
the physical plan shows the estimate next to the *actual* tuple count when
``analyze=True`` (one real execution).  Estimates transfer from the logical
to the physical tree by walking both in parallel — the planner maps every
logical node to exactly one physical operator with the same arity, and
whenever a physical algorithm expands differently (e.g. the
algebra-simulation division), annotation simply stops for that subtree and
the output shows ``est=?``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.algebra.expressions import Expression
from repro.optimizer.statistics import CardinalityEstimator
from repro.physical.base import PhysicalOperator
from repro.physical.executor import execute_plan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.database import Database
    from repro.api.query import Query

__all__ = ["render_explain"]


def render_explain(database: "Database", query: "Query", analyze: bool = False) -> str:
    """Multi-section EXPLAIN (optionally EXPLAIN ANALYZE) for ``query``."""
    expression = query.expression
    prepared, cache_hit = database._prepare(expression)
    estimator = CardinalityEstimator(database.optimizer.statistics)

    actual: Optional[dict[int, int]] = None
    if analyze:
        execution = execute_plan(prepared.plan, batch_size=database.batch_size)
        actual = {id(op): op.tuples_out for op in prepared.plan.walk()}

    lines: list[str] = []
    if query.sql is not None:
        lines.append("SQL")
        lines.extend("  " + line for line in query.sql.strip().splitlines())
        lines.append("")
    lines.append(f"fingerprint : {prepared.fingerprint[:16]}  (plan cache: "
                 f"{'hit' if cache_hit else 'miss'})")
    lines.append("")

    lines.append("Logical plan (as written)")
    lines.extend(_logical_lines(expression, estimator))
    lines.append("")

    fired = ", ".join(prepared.rules_fired) or "(none)"
    lines.append(f"Rewrite rules fired : {fired}")
    lines.append("")

    lines.append("Logical plan (canonical, rewritten)")
    lines.extend(_logical_lines(prepared.rewritten, estimator))
    lines.append("")

    before = prepared.original_cost.total_cost
    after = prepared.rewritten_cost.total_cost
    speedup = float("inf") if after == 0 else before / after
    lines.append(
        f"Estimated cost : {before:.0f} -> {after:.0f} (x{speedup:.2f})"
    )
    lines.append("")

    lines.append("Physical plan" + (" (analyzed: 1 execution)" if analyze else ""))
    estimates = _physical_estimates(prepared.plan, prepared.rewritten, estimator)
    lines.extend(_physical_lines(prepared.plan, estimates, actual))
    if analyze:
        lines.append("")
        lines.append(
            f"max intermediate = {execution.max_intermediate} tuples, "
            f"elapsed = {execution.elapsed_seconds * 1000:.2f} ms"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# logical tree with estimates
# ----------------------------------------------------------------------
def _logical_lines(expression: Expression, estimator: CardinalityEstimator) -> list[str]:
    lines: list[str] = []

    def visit(node: Expression, indent: int) -> None:
        estimate = estimator.cardinality(node)
        lines.append(f"  {'  ' * indent}{node._pretty_label()}  [est~{estimate:.0f} rows]")
        for child in node.children:
            visit(child, indent + 1)

    visit(expression, 0)
    return lines


# ----------------------------------------------------------------------
# physical tree with estimated vs actual cardinalities
# ----------------------------------------------------------------------
def _physical_estimates(
    plan: PhysicalOperator,
    expression: Expression,
    estimator: CardinalityEstimator,
) -> dict[int, float]:
    """Map physical operators (by id) to logical cardinality estimates.

    Annotation descends only while the physical tree mirrors the logical
    tree's arity; composite physical algorithms keep their inner operators
    unannotated.
    """
    estimates: dict[int, float] = {}

    def visit(operator: PhysicalOperator, node: Expression) -> None:
        estimates[id(operator)] = estimator.cardinality(node)
        if len(operator.children) == len(node.children):
            for child_op, child_node in zip(operator.children, node.children):
                visit(child_op, child_node)

    visit(plan, expression)
    return estimates


def _physical_lines(
    plan: PhysicalOperator,
    estimates: dict[int, float],
    actual: Optional[dict[int, int]],
) -> list[str]:
    lines: list[str] = []

    def visit(operator: PhysicalOperator, indent: int) -> None:
        estimate = estimates.get(id(operator))
        annotation = "est=?" if estimate is None else f"est~{estimate:.0f}"
        if actual is not None:
            annotation += f", actual={actual.get(id(operator), 0)}"
        lines.append(f"  {'  ' * indent}{operator.describe()}  [{annotation} rows]")
        for child in operator.children:
            visit(child, indent + 1)

    visit(plan, 0)
    return lines
