"""Lazy query objects: SQL text or fluent algebra, one execution path.

A :class:`Query` is a thin immutable wrapper around a logical expression
(or SQL text translated on first use) bound to a
:class:`~repro.api.database.Database`.  Fluent combinators build new
queries; nothing touches data until :meth:`Query.run`.

The fluent ``divide``/``great_divide`` combinators follow exactly the rule
the SQL frontend applies to ``DIVIDE BY … ON …`` (Section 4 of the paper):
divisor join attributes are renamed to the dividend's names, and the
operator is a small divide when the ON pairs cover *every* divisor
attribute, a great divide otherwise.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING, Any, Optional, Union

from repro.algebra import builders as B
from repro.algebra import predicates as P
from repro.algebra.expressions import AggregateSpec, Expression, GreatDivide
from repro.errors import ExpressionError
from repro.relation.relation import Relation
from repro.relation.schema import AttributeNames

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.findings import VerificationReport
    from repro.api.database import Database
    from repro.api.result import QueryResult

__all__ = ["Query"]

#: Things accepted wherever a query operand is expected.
QueryLike = Union["Query", Expression, str]

#: Accepted spellings of the ``on`` argument of ``divide``: a single
#: attribute name, or a sequence whose items are names (same on both sides)
#: or ``(dividend_attr, divisor_attr)`` pairs.  A bare top-level tuple is a
#: sequence of *names*, exactly like a list — pairs must be nested
#: (``on=[("p_no", "part")]``) so that ``("a", "b")`` can never silently
#: mean one pair when two join attributes were intended.
OnClause = Union[str, Sequence[Union[str, tuple[str, str]]]]


class Query:
    """A lazy query bound to a database session."""

    __slots__ = ("_database", "_expression", "_sql", "_recognize_division")

    def __init__(
        self,
        database: "Database",
        expression: Optional[Expression] = None,
        sql: Optional[str] = None,
        recognize_division: bool = True,
    ) -> None:
        if (expression is None) == (sql is None):
            raise ExpressionError("Query needs exactly one of an expression or SQL text")
        self._database = database
        self._expression = expression
        self._sql = sql
        self._recognize_division = recognize_division

    # ------------------------------------------------------------------
    # lazy translation
    # ------------------------------------------------------------------
    @property
    def expression(self) -> Expression:
        """The logical expression (SQL is translated on first access)."""
        if self._expression is None:
            self._expression = self._database._translate(self._sql, self._recognize_division)
        return self._expression

    @property
    def sql(self) -> Optional[str]:
        """The SQL text this query came from, if any."""
        return self._sql

    @property
    def database(self) -> "Database":
        """The session this query is bound to."""
        return self._database

    @property
    def schema(self):
        """Output schema of the query."""
        return self.expression.schema

    def fingerprint(self) -> str:
        """Canonical fingerprint (identical for equivalent formulations)."""
        return self.expression.fingerprint()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> "QueryResult":
        """Optimize (or fetch the prepared plan) and execute — exactly once."""
        return self._database._run(self)

    def prepare(self) -> "Query":
        """Force rewrite + planning now and pin the plan in the cache."""
        self._database._prepare(self.expression)
        return self

    def explain(self, analyze: bool = False, verbose: bool = False, verify: bool = False) -> str:
        """Before/after logical trees plus the physical plan.

        With ``analyze=True`` the plan is executed once and actual
        per-operator tuple counts are shown next to the estimates.  With
        ``verbose=True`` the generated source of every compiled pipeline
        segment is appended.  With ``verify=True`` the static verifier runs
        over the prepared plan and a ``verification`` status line (plus any
        findings) is included.
        """
        from repro.api.explain import render_explain

        return render_explain(
            self._database, self, analyze=analyze, verbose=verbose, verify=verify
        )

    def verify(self) -> "VerificationReport":
        """Statically verify this query's prepared plan.

        Runs the logical, physical and codegen passes over the canonical
        expression, the rewritten expression and the physical plan (with
        any compiled segments), returning a
        :class:`~repro.analysis.findings.VerificationReport`.  Nothing is
        executed.
        """
        from repro.analysis.check import verify_prepared

        prepared, _cached = self._database._prepare(self.expression)
        return verify_prepared(prepared, self._database.catalog)

    # ------------------------------------------------------------------
    # fluent combinators (each returns a new lazy Query)
    # ------------------------------------------------------------------
    def project(self, attributes: AttributeNames) -> "Query":
        """π_attributes — keep only the given attributes."""
        return self._derive(B.project(self.expression, attributes))

    def where(self, predicate: Optional[P.Predicate] = None, **equalities: Any) -> "Query":
        """σ_p — keep rows matching a predicate and/or keyword equalities.

        ``where(color="blue")`` is shorthand for
        ``where(P.equals(P.attr("color"), "blue"))``; both spellings compose
        with AND.
        """
        parts: list[P.Predicate] = []
        if predicate is not None:
            parts.append(predicate)
        parts.extend(P.equals(P.attr(name), value) for name, value in sorted(equalities.items()))
        if not parts:
            raise ExpressionError("where() needs a predicate or keyword equalities")
        return self._derive(B.select(self.expression, P.conjunction(parts)))

    def rename(self, mapping: Mapping[str, str]) -> "Query":
        """ρ — rename attributes."""
        return self._derive(B.rename(self.expression, mapping))

    def group_by(
        self,
        grouping: AttributeNames,
        aggregates: Optional[Sequence[AggregateSpec]] = None,
        **named: Union[AggregateSpec, tuple[str, Optional[str]]],
    ) -> "Query":
        """Gγ — group and aggregate.

        Aggregates are :class:`AggregateSpec` objects, or keyword shorthand
        ``output=(function, attribute)``, e.g. ``n_parts=("count", "p_no")``.
        """
        specs = list(aggregates or [])
        for output, spec in sorted(named.items()):
            if isinstance(spec, AggregateSpec):
                specs.append(AggregateSpec(spec.function, spec.attribute, output))
            else:
                function, attribute = spec
                specs.append(AggregateSpec(function, attribute, output))
        return self._derive(B.group_by(self.expression, grouping, specs))

    def union(self, other: QueryLike) -> "Query":
        """Set union."""
        return self._derive(B.union(self.expression, self._resolve(other)))

    def intersect(self, other: QueryLike) -> "Query":
        """Set intersection."""
        return self._derive(B.intersection(self.expression, self._resolve(other)))

    def difference(self, other: QueryLike) -> "Query":
        """Set difference."""
        return self._derive(B.difference(self.expression, self._resolve(other)))

    def product(self, other: QueryLike) -> "Query":
        """Cartesian product."""
        return self._derive(B.product(self.expression, self._resolve(other)))

    def join(self, other: QueryLike) -> "Query":
        """Natural join on the shared attributes."""
        return self._derive(B.natural_join(self.expression, self._resolve(other)))

    def theta_join(self, other: QueryLike, predicate: P.Predicate) -> "Query":
        """Theta-join over disjoint attribute sets."""
        return self._derive(B.theta_join(self.expression, self._resolve(other), predicate))

    def semijoin(self, other: QueryLike) -> "Query":
        """Left semi-join."""
        return self._derive(B.semijoin(self.expression, self._resolve(other)))

    def antijoin(self, other: QueryLike) -> "Query":
        """Left anti-semi-join."""
        return self._derive(B.antijoin(self.expression, self._resolve(other)))

    def outer_join(self, other: QueryLike) -> "Query":
        """Left outer join."""
        return self._derive(B.outer_join(self.expression, self._resolve(other)))

    def divide(self, divisor: QueryLike, on: Optional[OnClause] = None) -> "Query":
        """Relational division, with the paper's ``DIVIDE BY … ON`` semantics.

        ``on`` lists the join attributes as names (same on both sides) or
        nested ``(dividend_attr, divisor_attr)`` pairs, e.g.
        ``on="p_no"`` or ``on=[("p_no", "part")]``; omitted, it defaults to
        all shared attributes.  The result is a small divide when the pairs
        cover every divisor attribute, a great divide otherwise — the same
        rule the SQL frontend applies.
        """
        dividend = self.expression
        divisor_expression = self._resolve(divisor)
        pairs = self._on_pairs(dividend, divisor_expression, on)
        renames = {
            divisor_attr: dividend_attr
            for dividend_attr, divisor_attr in pairs
            if divisor_attr != dividend_attr
        }
        renamed: Expression = (
            B.rename(divisor_expression, renames) if renames else divisor_expression
        )
        covered = {dividend_attr for dividend_attr, _ in pairs}
        divisor_only = [name for name in renamed.schema.names if name not in covered]
        if divisor_only:
            return self._derive(B.great_divide(dividend, renamed))
        return self._derive(B.divide(dividend, renamed))

    def great_divide(self, divisor: QueryLike, on: Optional[OnClause] = None) -> "Query":
        """Force a great divide (``divide`` picks the operator automatically)."""
        query = self.divide(divisor, on=on)
        if not isinstance(query.expression, GreatDivide):
            raise ExpressionError(
                "the ON attributes cover the whole divisor; this is a small divide — "
                "use divide() or add a grouping attribute to the divisor"
            )
        return query

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _derive(self, expression: Expression) -> "Query":
        return Query(self._database, expression=expression)

    def _resolve(self, operand: QueryLike) -> Expression:
        if isinstance(operand, Query):
            return operand.expression
        if isinstance(operand, Expression):
            return operand
        if isinstance(operand, str):
            return self._database.table(operand).expression
        if isinstance(operand, Relation):
            return B.literal(operand)
        raise ExpressionError(f"cannot use {operand!r} as a query operand")

    @staticmethod
    def _on_pairs(
        dividend: Expression,
        divisor: Expression,
        on: Optional[OnClause],
    ) -> list[tuple[str, str]]:
        dividend_names = dividend.schema.name_set
        divisor_names = divisor.schema.name_set
        if on is None:
            shared = [name for name in divisor.schema.names if name in dividend_names]
            if not shared:
                raise ExpressionError(
                    "divide() found no shared attributes; pass on=[(dividend_attr, "
                    "divisor_attr), ...] to name the join attributes"
                )
            return [(name, name) for name in shared]
        items: Sequence[Union[str, tuple[str, str]]] = [on] if isinstance(on, str) else list(on)
        pairs: list[tuple[str, str]] = []
        for item in items:
            if isinstance(item, str):
                pair = (item, item)
            elif isinstance(item, (tuple, list)) and len(item) == 2:
                pair = (item[0], item[1])
            else:
                raise ExpressionError(
                    f"each ON item must be an attribute name or a (dividend_attr, "
                    f"divisor_attr) pair, got {item!r}"
                )
            dividend_attr, divisor_attr = pair
            if dividend_attr not in dividend_names:
                raise ExpressionError(f"ON attribute {dividend_attr!r} is not in the dividend")
            if divisor_attr not in divisor_names:
                raise ExpressionError(f"ON attribute {divisor_attr!r} is not in the divisor")
            pairs.append(pair)
        return pairs

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Compact rendering of the underlying logical expression."""
        return self.expression.to_text()

    def __repr__(self) -> str:
        if self._expression is None:
            return f"<Query sql={self._sql!r}>"
        return f"<Query {self._expression.to_text()}>"
