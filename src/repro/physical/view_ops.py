"""Physical operator serving a maintained view from its counter table.

``CounterTableScan`` is a leaf like :class:`~repro.physical.scans.TableScan`,
but its source is the view's maintained quotient set rather than a base
relation: the division was already "executed" incrementally by the delta
rules, so reading the view is pure chunked emission of the counter table's
A+C value tuples.  The operator reports the applied-delta count in
``describe()`` so ``explain(analyze=True)`` shows what the plan replaced.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.physical.base import Chunk, PhysicalOperator, PhysicalProperties
from repro.relation.schema import Schema

if TYPE_CHECKING:
    from repro.views.view import MaintainedView

__all__ = ["CounterTableScan"]


class CounterTableScan(PhysicalOperator):
    """Chunked scan over a maintained view's quotient counter table."""

    name = "counter_table_scan"
    #: Pure list slicing over the already-maintained quotient — the same
    #: cost shape as an in-memory scan; no division work remains at read
    #: time (that is the whole point of maintenance).
    properties = PhysicalProperties(per_input_cost=0.0, per_output_cost=0.5)

    def __init__(self, view: "MaintainedView") -> None:
        super().__init__(Schema.interned(view.schema_names))
        self.view = view

    def _produce_chunks(self) -> Iterator[Chunk]:
        schema = self._schema
        tuples = sorted(self.view.quotient_tuples())
        size = self.batch_size
        for start in range(0, len(tuples), size):
            yield Chunk(schema, tuples[start : start + size])

    def describe(self) -> str:
        return (
            f"CounterTableScan({self.view.name}, "
            f"deltas_applied={self.view.deltas_applied})"
        )
