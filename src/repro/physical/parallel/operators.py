"""Partition-wise wrappers: run a serial algorithm per key-disjoint partition.

Each wrapper hash-partitions its probe input(s) on the attribute set that
determines the result groups — quotient attributes for division, the shared
attributes for a natural join, the grouping attributes for aggregation —
then runs the *unchanged* serial algorithm per partition (on a worker pool
when ``workers > 1``) and concatenates the outputs.  Because no key spans
two partitions the concatenation is exactly the serial result: same tuples,
and the wrapper's own output counter equals the serial operator's.

The wrappers record per-partition statistics after execution:

* :attr:`PartitionedOperator.partition_input_sizes` — tuples routed to each
  partition (the skew figure ``explain(analyze=True)`` reports);
* :attr:`PartitionedOperator.partition_statistics` — each partition
  sub-plan's per-operator tuple counters, aggregated as a *maximum* over
  partitions by :meth:`PartitionedOperator.partition_peaks` — partitions
  hold disjoint slices of the work, so the largest single intermediate of a
  partitioned run is the biggest per-partition intermediate, not their sum.
"""

from __future__ import annotations

import shutil
import tempfile
from collections.abc import Iterator, Mapping, Sequence
from time import perf_counter
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import ExecutionError
from repro.physical.aggregate import HashAggregate
from repro.physical.base import Chunk, PhysicalOperator, PhysicalProperties, chunked
from repro.physical.division.great_divide_ops import (
    GREAT_DIVIDE_ALGORITHMS,
    _great_division_schemas,
)
from repro.physical.division.small_divide_ops import SMALL_DIVIDE_ALGORITHMS, _division_schemas
from repro.physical.joins import JOIN_ALGORITHMS
from repro.physical.parallel.exchange import HashPartitionExchange
from repro.physical.parallel.pool import (
    PartitionTask,
    RetryPolicy,
    SupervisionReport,
    run_tasks,
)
from repro.relation.aggregates import Aggregate
from repro.relation.schema import AttributeNames, Schema, as_schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algebra.expressions import AggregateSpec

__all__ = [
    "PartitionedOperator",
    "PartitionedDivision",
    "PartitionedHashJoin",
    "PartitionedAggregate",
]


class PartitionedOperator(PhysicalOperator):
    """Base of the exchange wrappers: partition, fan out, concatenate."""

    #: Marks exchange operators for :meth:`PhysicalOperator.set_workers`.
    parallel = True

    #: Spill budget in MB for the exchange's buffered partitions; ``None``
    #: disables spilling.  Set per plan by
    #: :meth:`PhysicalOperator.set_memory_budget` (driven by
    #: ``connect(memory_budget_mb=...)``).
    memory_budget_mb: Optional[float] = None

    #: Retry policy handed to the pool supervisor; ``None`` means
    #: :data:`~repro.physical.parallel.pool.DEFAULT_RETRY_POLICY`.  The
    #: RP703 verifier check validates an override's sanity statically.
    retry_policy: Optional[RetryPolicy] = None

    def __init__(
        self,
        schema: Schema,
        children: tuple[PhysicalOperator, ...],
        key: AttributeNames,
        partitions: int,
        workers: int,
    ) -> None:
        if partitions < 1:
            raise ExecutionError(f"partitions must be positive, got {partitions}")
        if workers < 1:
            raise ExecutionError(f"workers must be positive, got {workers}")
        super().__init__(schema, children)
        self._key = as_schema(key)
        self.partitions = partitions
        self.workers = workers
        #: Tuples routed to each partition by the most recent execution.
        self.partition_input_sizes: list[int] = []
        #: Per-partition sub-plan counters of the most recent execution.
        self.partition_statistics: list[dict[str, int]] = []
        #: Spill counters of the most recent execution (empty without a
        #: budget): spilled_blocks/tuples/partitions plus the buffered
        #: high-water marks, summed over this operator's exchanges.
        self.spill_statistics: dict[str, int] = {}
        #: Exchanges built by the current ``_tasks()`` pass, and the spill
        #: directory they write to (alive only while the tasks run).
        self._exchanges: list[HashPartitionExchange] = []
        self._spill_directory: Optional[str] = None

    @property
    def partition_key(self) -> Schema:
        """The attribute set the exchange hashes on."""
        return self._key

    def partition_peaks(self) -> dict[str, int]:
        """Per-inner-operator peak counters: max over partitions, not sum.

        Partition sub-plans hold key-disjoint slices, so the largest single
        intermediate result of the partitioned run is the largest
        per-partition figure — this is what
        :func:`~repro.physical.base.collect_statistics` folds into
        :attr:`~repro.physical.base.PlanStatistics.partition_peaks`.
        """
        peaks: dict[str, int] = {}
        for counters in self.partition_statistics:
            for label, value in counters.items():
                if value > peaks.get(label, 0):
                    peaks[label] = value
        return peaks

    def _tasks(self) -> list[PartitionTask]:
        """Consume the inputs and describe one serial sub-plan per partition."""
        raise NotImplementedError

    def _inline_operator(self) -> PhysicalOperator:
        """The serial operator over the *actual* children (single-partition)."""
        raise NotImplementedError

    def _exchange(self) -> HashPartitionExchange:
        """Build this pass's exchange, threading budget and spill directory."""
        exchange = HashPartitionExchange(
            self._key,
            self.partitions,
            memory_budget_mb=self.memory_budget_mb,
            spill_directory=self._spill_directory,
        )
        self._exchanges.append(exchange)
        return exchange

    def _collect_spill_statistics(self) -> dict[str, int]:
        if not any(exchange.memory_budget_mb is not None for exchange in self._exchanges):
            return {}
        return {
            "budget_tuples": max(
                (exchange.budget_tuples or 0 for exchange in self._exchanges), default=0
            ),
            "peak_buffered_tuples": max(
                (exchange.peak_buffered_tuples for exchange in self._exchanges), default=0
            ),
            "peak_buffered_blocks": max(
                (exchange.peak_buffered_blocks for exchange in self._exchanges), default=0
            ),
            "spilled_tuples": sum(exchange.spilled_tuples for exchange in self._exchanges),
            "spilled_blocks": sum(exchange.spilled_blocks for exchange in self._exchanges),
            "spilled_partitions": sum(
                exchange.spilled_partitions for exchange in self._exchanges
            ),
        }

    def _produce_chunks(self) -> Iterator[Chunk]:
        self.partition_input_sizes = []
        self.partition_statistics = []
        self.spill_statistics = {}
        if self.partitions == 1:
            # Zero-overhead serial fallback: no hash pass, no block
            # materialization, no pool — the serial operator streams
            # straight over the wrapper's children.
            yield from self._produce_inline()
            return
        self._exchanges = []
        spill_directory: Optional[str] = None
        if self.memory_budget_mb is not None:
            spill_directory = tempfile.mkdtemp(prefix="repro-spill-")
        self._spill_directory = spill_directory
        try:
            tasks = self._tasks()
            self.spill_statistics = self._collect_spill_statistics()
            # run_tasks drains the pool before returning, so this interval is
            # exactly the time spent inside worker execution; explain(analyze)
            # reports it as the coordinator/worker elapsed split.  Spill files
            # are only read by the tasks, so the directory can go as soon as
            # all results are in.
            started = perf_counter()
            report = SupervisionReport()
            results = run_tasks(tasks, self.workers, policy=self.retry_policy, report=report)
            self.worker_seconds += perf_counter() - started
            self.tasks_retried += report.tasks_retried
            self.tasks_degraded += report.tasks_degraded
        finally:
            self._spill_directory = None
            self._exchanges = []
            if spill_directory is not None:
                shutil.rmtree(spill_directory, ignore_errors=True)
        schema = self._schema
        for tuples, counters in results:
            self.partition_statistics.append(counters)
            yield from chunked(tuples, schema, self.batch_size)

    def _produce_inline(self) -> Iterator[Chunk]:
        operator = self._inline_operator()
        operator.set_batch_size(self.batch_size)
        schema = self._schema
        for chunk in operator.chunks():
            yield chunk.aligned(schema)
        self.partition_input_sizes = [
            sum(child.tuples_out for child in self._children)
        ]
        self.partition_statistics = [{f"00:{operator.name}": operator.tuples_out}]

    def _exchange_summary(self) -> str:
        summary = f"partitions={self.partitions}, workers={self.workers}"
        if self.memory_budget_mb is not None:
            summary += f", budget={self.memory_budget_mb:g}MB"
        return summary


class PartitionedDivision(PartitionedOperator):
    """Division partitioned on the quotient attributes.

    Sound for every division algorithm because division is independent per
    quotient-key group: whether a candidate ``a`` belongs to the quotient
    depends only on the dividend tuples carrying ``a`` (all in one
    partition) and on the divisor, which is *broadcast* — shipped whole to
    every partition, exactly like the small relation of a Grace hash join.
    For the great divide the same holds per ``(a, c)`` pair, so
    partitioning on ``A`` alone is sufficient.

    Hash partitioning keeps contiguous equal-key runs contiguous within
    their bucket, so a dividend that arrives clustered on the quotient
    attributes stays clustered per partition and the streaming merge-group
    mode of :class:`~repro.physical.division.MergeSortDivision` remains
    valid (``assume_clustered`` is forwarded).
    """

    name = "partitioned_division"

    #: Exchange pass over both inputs plus the serial algorithm per
    #: partition; the cost model prices the parallel variant explicitly
    #: (startup-per-worker + partition pass + serial cost / DOP), so these
    #: coefficients only matter if the operator is priced standalone.
    properties = PhysicalProperties(
        streaming=False, startup_cost=32.0, per_input_cost=2.5, per_output_cost=1.0
    )

    def __init__(
        self,
        dividend: PhysicalOperator,
        divisor: PhysicalOperator,
        algorithm: str = "hash",
        kind: str = "small",
        partitions: int = 2,
        workers: int = 1,
        assume_clustered: bool = False,
    ) -> None:
        if kind == "small":
            if algorithm not in SMALL_DIVIDE_ALGORITHMS:
                raise ExecutionError(
                    f"unknown small-divide algorithm {algorithm!r}; "
                    f"choose from {sorted(SMALL_DIVIDE_ALGORITHMS)}"
                )
            schemas = _division_schemas(dividend, divisor)
            key, schema = schemas.a, schemas.quotient
        elif kind == "great":
            if algorithm not in GREAT_DIVIDE_ALGORITHMS:
                raise ExecutionError(
                    f"unknown great-divide algorithm {algorithm!r}; "
                    f"choose from {sorted(GREAT_DIVIDE_ALGORITHMS)}"
                )
            key, _shared, group = _great_division_schemas(dividend, divisor)
            schema = key.union(group)
        else:
            raise ExecutionError(f"unknown division kind {kind!r}; use 'small' or 'great'")
        super().__init__(schema, (dividend, divisor), key, partitions, workers)
        self.algorithm = algorithm
        self.kind = kind
        self.assume_clustered = assume_clustered

    def _tasks(self) -> list[PartitionTask]:
        dividend, divisor = self._children
        exchange = self._exchange()
        divisor_block = exchange.collect(divisor)
        buckets = exchange.partition(dividend)
        self.partition_input_sizes = [len(bucket) for bucket in buckets]
        options: tuple[tuple[str, Any], ...] = ()
        if self.kind == "small" and self.algorithm == "merge_sort" and self.assume_clustered:
            options = (("assume_clustered", True),)
        kind = "small_divide" if self.kind == "small" else "great_divide"
        dividend_names = dividend.schema.names
        divisor_names = divisor.schema.names
        return [
            PartitionTask(
                kind=kind,
                algorithm=self.algorithm,
                inputs=((dividend_names, bucket), (divisor_names, divisor_block)),
                options=options,
            )
            for bucket in buckets
            if bucket
        ]

    def _inline_operator(self) -> PhysicalOperator:
        dividend, divisor = self._children
        if self.kind == "small":
            operator_class = SMALL_DIVIDE_ALGORITHMS[self.algorithm]
            if self.algorithm == "merge_sort" and self.assume_clustered:
                return operator_class(dividend, divisor, assume_clustered=True)
            return operator_class(dividend, divisor)
        return GREAT_DIVIDE_ALGORITHMS[self.algorithm](dividend, divisor)

    def describe(self) -> str:
        mode = f"{self.algorithm}(streaming)" if self.assume_clustered else self.algorithm
        return f"PartitionedDivision[{mode}, {self._exchange_summary()}]"


class PartitionedHashJoin(PartitionedOperator):
    """Natural join partitioned on the shared attributes (Grace hash join).

    Both inputs are partitioned with the *same* hash on the join key, so
    every joinable pair meets in exactly one partition and every output
    tuple (whose key is part of the tuple) is produced exactly once across
    partitions.  Partitions where either side is empty produce nothing and
    are skipped outright.
    """

    name = "partitioned_hash_join"

    properties = PhysicalProperties(startup_cost=32.0, per_input_cost=2.5, per_output_cost=1.0)

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        algorithm: str = "hash",
        partitions: int = 2,
        workers: int = 1,
    ) -> None:
        if algorithm not in JOIN_ALGORITHMS:
            raise ExecutionError(
                f"unknown natural-join algorithm {algorithm!r}; "
                f"choose from {sorted(JOIN_ALGORITHMS)}"
            )
        key = left.schema.intersection(right.schema)
        if len(key) == 0:
            raise ExecutionError(
                "partitioned join needs shared attributes to partition on; "
                "a cross product cannot be hash-partitioned"
            )
        super().__init__(left.schema.union(right.schema), (left, right), key, partitions, workers)
        self.algorithm = algorithm

    def _tasks(self) -> list[PartitionTask]:
        left, right = self._children
        exchange = self._exchange()
        left_buckets = exchange.partition(left)
        right_buckets = exchange.partition(right)
        self.partition_input_sizes = [
            len(left_bucket) + len(right_bucket)
            for left_bucket, right_bucket in zip(left_buckets, right_buckets)
        ]
        left_names = left.schema.names
        right_names = right.schema.names
        return [
            PartitionTask(
                kind="natural_join",
                algorithm=self.algorithm,
                inputs=((left_names, left_bucket), (right_names, right_bucket)),
            )
            for left_bucket, right_bucket in zip(left_buckets, right_buckets)
            if left_bucket and right_bucket
        ]

    def _inline_operator(self) -> PhysicalOperator:
        left, right = self._children
        return JOIN_ALGORITHMS[self.algorithm](left, right)

    def describe(self) -> str:
        keys = ", ".join(self._key.names)
        return f"PartitionedHashJoin[{keys}; {self.algorithm}, {self._exchange_summary()}]"


class PartitionedAggregate(PartitionedOperator):
    """Grouped aggregation partitioned on the grouping attributes.

    Every group lives wholly inside one partition, so per-partition
    :class:`~repro.physical.aggregate.HashAggregate` runs produce final
    (not partial) aggregates and the concatenation needs no re-merge.
    Requires a non-empty grouping key; the single global group of a
    grand total cannot be partitioned.

    The built aggregate ``(label, fn)`` pairs are closures and do not
    pickle, so when the declarative
    :class:`~repro.algebra.expressions.AggregateSpec` list is available
    (``specs``) the task ships *it* and the worker rebuilds the functions;
    without specs, custom functions that cannot cross a process boundary
    automatically degrade to inline execution in the pool layer — same
    result, no parallelism.
    """

    name = "partitioned_aggregate"

    properties = PhysicalProperties(
        streaming=False, startup_cost=16.0, per_input_cost=2.5, per_output_cost=1.0
    )

    def __init__(
        self,
        child: PhysicalOperator,
        grouping: AttributeNames,
        aggregations: Mapping[str, Aggregate],
        partitions: int = 2,
        workers: int = 1,
        specs: Optional[Sequence["AggregateSpec"]] = None,
    ) -> None:
        grouping_schema = child.schema.project(as_schema(grouping))
        if len(grouping_schema) == 0:
            raise ExecutionError("partitioned aggregation needs grouping attributes")
        schema = Schema(grouping_schema.names + tuple(aggregations.keys()))
        super().__init__(schema, (child,), grouping_schema, partitions, workers)
        self._aggregations = dict(aggregations)
        self._specs = tuple(specs) if specs is not None else None

    def _tasks(self) -> list[PartitionTask]:
        (child,) = self._children
        exchange = self._exchange()
        buckets = exchange.partition(child)
        self.partition_input_sizes = [len(bucket) for bucket in buckets]
        child_names = child.schema.names
        if self._specs is not None:
            options = (("grouping", self._key.names), ("specs", self._specs))
        else:
            options = (("grouping", self._key.names), ("aggregations", self._aggregations))
        return [
            PartitionTask(kind="aggregate", algorithm="hash", inputs=((child_names, bucket),), options=options)
            for bucket in buckets
            if bucket
        ]

    def _inline_operator(self) -> PhysicalOperator:
        (child,) = self._children
        return HashAggregate(child, self._key.names, self._aggregations)

    def describe(self) -> str:
        aggregates = ", ".join(
            f"{label}→{output}" for output, (label, _fn) in self._aggregations.items()
        )
        keys = ", ".join(self._key.names)
        return f"PartitionedAggregate[{keys}; {aggregates}; {self._exchange_summary()}]"


