"""Grace-style hash-partition exchange.

:class:`HashPartitionExchange` consumes a physical operator's chunk stream
and materializes it as ``K`` *key-disjoint* partitions: every tuple lands in
the bucket ``hash(key) % K`` of its partition-key value, so all tuples that
agree on the key — one quotient-candidate group, one join-key equivalence
class, one aggregation group — end up in the same partition.  That
disjointness is what makes partition-wise execution sound: each partition
can run the existing *serial* algorithm to completion and the concatenated
outputs are exactly the unpartitioned result (no key spans two partitions,
so no merge step and no cross-partition duplicate elimination is needed).

Partitions are plain lists of aligned value tuples — the same compact block
representation :class:`~repro.physical.base.Chunk` uses — so they are cheap
to ship across a process boundary (see :mod:`repro.physical.parallel.pool`).

:class:`PartitionSource` is the matching leaf operator: a scan over one
partition's tuple block, used to rebuild per-partition sub-plans on a
worker.  Bucket order is the scan order, so a dividend that arrives
clustered on the partition key stays clustered *within* every partition
(contiguous equal-key runs map to a single bucket and are appended in
order) — order-exploiting algorithms keep their streaming mode.
"""

from __future__ import annotations

import sys
from collections.abc import Iterator
from typing import Any, Optional, Union

from repro.errors import ExecutionError
from repro.physical.base import Chunk, PhysicalOperator, PhysicalProperties, TupleProjector
from repro.relation.schema import AttributeNames, as_schema

__all__ = ["HashPartitionExchange", "PartitionSource"]

#: What a partition materializes to: an in-memory tuple block, or — once a
#: memory budget forced a flush — a block-streaming on-disk handle
#: (:class:`repro.storage.spill.SpilledPartition`).  Both are sized, both
#: preserve the exchange's append order.
PartitionBlock = Union[list[tuple[Any, ...]], "SpilledPartition"]  # noqa: F821


class PartitionSource(PhysicalOperator):
    """Leaf scan over one partition's aligned-tuple block.

    The per-partition twin of :class:`~repro.physical.scans.RelationScan`:
    pure list slicing, no per-tuple work, preserves the block's order (and
    with it any clustering the exchange preserved).  A spilled partition
    handle is streamed block by block instead — a worker re-reading a
    spilled partition never holds more than one spill block of it.
    """

    name = "partition_source"

    properties = PhysicalProperties(per_input_cost=0.0, per_output_cost=0.5, preserves_order=True)

    def __init__(self, attributes: AttributeNames, tuples: PartitionBlock) -> None:
        super().__init__(as_schema(attributes))
        self._tuples = tuples

    def _produce_chunks(self) -> Iterator[Chunk]:
        schema = self._schema
        tuples = self._tuples
        size = self.batch_size
        iter_spill_blocks = getattr(tuples, "iter_blocks", None)
        if iter_spill_blocks is None:
            blocks = (tuples,)
        else:
            blocks = iter_spill_blocks()
        for block in blocks:
            for start in range(0, len(block), size):
                yield Chunk(schema, block[start : start + size])

    def describe(self) -> str:
        origin = " (spilled)" if hasattr(self._tuples, "iter_blocks") else ""
        return f"PartitionSource({len(self._tuples)} tuples{origin})"


class HashPartitionExchange:
    """Split a chunk stream into ``partitions`` key-disjoint tuple blocks.

    With a memory budget set (``memory_budget_mb``), the buffered buckets
    are tracked against it and the largest bucket is flushed to a
    per-partition spill file (block format of :mod:`repro.storage.spill`)
    whenever the total buffered tuples outgrow the budget; the flushed
    partitions come back as re-streamable
    :class:`~repro.storage.spill.SpilledPartition` handles.  Counters
    (``peak_buffered_tuples``/``peak_buffered_blocks``, ``spilled_*``)
    accumulate across :meth:`partition` calls so a join exchange that
    partitions both sides reports combined figures.
    """

    __slots__ = (
        "key",
        "partitions",
        "memory_budget_mb",
        "spill_directory",
        "budget_tuples",
        "peak_buffered_tuples",
        "peak_buffered_blocks",
        "spilled_tuples",
        "spilled_blocks",
        "spilled_partitions",
    )

    def __init__(
        self,
        key: AttributeNames,
        partitions: int,
        memory_budget_mb: Optional[float] = None,
        spill_directory: Optional[str] = None,
    ) -> None:
        key_schema = as_schema(key)
        if partitions < 1:
            raise ExecutionError(f"exchange needs at least one partition, got {partitions}")
        if len(key_schema) == 0:
            raise ExecutionError("exchange needs at least one partition-key attribute")
        if memory_budget_mb is not None and memory_budget_mb <= 0:
            raise ExecutionError(f"memory budget must be positive, got {memory_budget_mb}")
        self.key = key_schema
        self.partitions = partitions
        self.memory_budget_mb = memory_budget_mb
        self.spill_directory = spill_directory
        #: The budget converted to tuples (estimated from a sample of the
        #: first chunk; ``None`` until the first budgeted partition pass).
        self.budget_tuples: Optional[int] = None
        self.peak_buffered_tuples = 0
        self.peak_buffered_blocks = 0
        self.spilled_tuples = 0
        self.spilled_blocks = 0
        self.spilled_partitions = 0

    def partition(self, source: PhysicalOperator) -> list[PartitionBlock]:
        """Consume ``source`` into ``partitions`` buckets of aligned tuples.

        Tuples are aligned with ``source.schema`` so a
        :class:`PartitionSource` over the bucket reproduces the source
        exactly.  With one partition the hash pass is skipped entirely —
        the zero-overhead serial fallback.  Spilling never changes a
        bucket's content or order: a spilled bucket streams back exactly
        the tuples the in-memory list would have held.
        """
        schema = source.schema
        if self.memory_budget_mb is not None:
            return self._partition_with_budget(source)
        if self.partitions == 1:
            return [[values for chunk in source.chunks() for values in chunk.aligned(schema).tuples]]
        key_of = TupleProjector(self.key)
        count = self.partitions
        buckets: list[list[tuple[Any, ...]]] = [[] for _ in range(count)]
        for chunk in source.chunks():
            aligned = chunk.aligned(schema)
            for values, key in zip(aligned.tuples, key_of.keys_of(aligned)):
                buckets[hash(key) % count].append(values)
        return buckets

    def _partition_with_budget(self, source: PhysicalOperator) -> list[PartitionBlock]:
        """The spill-aware partition pass (budget set)."""
        from repro.storage.spill import SPILL_BLOCK_TUPLES, SpillWriter

        if self.spill_directory is None:
            raise ExecutionError(
                "exchange has a memory budget but no spill directory; "
                "run it through a partitioned operator (or set spill_directory)"
            )
        schema = source.schema
        names = schema.names
        count = self.partitions
        key_of = TupleProjector(self.key) if count > 1 else None
        buckets: list[list[tuple[Any, ...]]] = [[] for _ in range(count)]
        writers: list[Optional[SpillWriter]] = [None] * count
        buffered = 0
        peak = self.peak_buffered_tuples
        try:
            for chunk in source.chunks():
                aligned = chunk.aligned(schema)
                if key_of is None:
                    buckets[0].extend(aligned.tuples)
                else:
                    for values, key in zip(aligned.tuples, key_of.keys_of(aligned)):
                        buckets[hash(key) % count].append(values)
                buffered += len(aligned.tuples)
                if self.budget_tuples is None and aligned.tuples:
                    self.budget_tuples = self._budget_in_tuples(aligned.tuples)
                if buffered > peak:
                    peak = buffered
                # Flush the largest buffered bucket until back under budget;
                # a bucket flushes as a whole, so the loop always terminates.
                while self.budget_tuples is not None and buffered > self.budget_tuples:
                    index = max(range(count), key=lambda i: len(buckets[i]))
                    bucket = buckets[index]
                    if not bucket:
                        break
                    writer = writers[index]
                    if writer is None:
                        writer = writers[index] = SpillWriter(
                            self.spill_directory, f"partition-{id(self):x}-{index:04d}", names
                        )
                    blocks_before = writer.spilled_blocks
                    writer.spill(bucket)
                    self.spilled_blocks += writer.spilled_blocks - blocks_before
                    self.spilled_tuples += len(bucket)
                    buffered -= len(bucket)
                    buckets[index] = []
            self.peak_buffered_tuples = peak
            self.peak_buffered_blocks = -(-peak // SPILL_BLOCK_TUPLES)
            results: list[PartitionBlock] = []
            for index in range(count):
                writer = writers[index]
                if writer is None:
                    results.append(buckets[index])
                    continue
                # Append the unflushed tail so the handle streams the full
                # bucket in original order, then seal the file.
                writer.spill(buckets[index])
                results.append(writer.finish())
                self.spilled_partitions += 1
        except BaseException:
            # A failed spill (disk full, injected fault) must not leave
            # half-written files behind: close and delete every writer
            # before the error unwinds to the operator's teardown.
            for writer in writers:
                if writer is not None:
                    writer.abort()
            raise
        return results

    def _budget_in_tuples(self, sample: list[tuple[Any, ...]]) -> int:
        """Convert the MB budget into a tuple count via a shallow sample.

        Measures tuple + per-value ``sys.getsizeof`` over the leading
        tuples of the first chunk — an estimate, but the budget is a
        coarse knob and the floor of one tuple keeps progress guaranteed.
        """
        measured = sample[:64]
        total = 0
        for values in measured:
            total += sys.getsizeof(values)
            for value in values:
                total += sys.getsizeof(value)
        per_tuple = max(total // max(len(measured), 1), 1)
        budget_bytes = int(self.memory_budget_mb * 1024 * 1024)
        return max(budget_bytes // per_tuple, 1)

    def collect(self, source: PhysicalOperator) -> list[tuple[Any, ...]]:
        """Materialize ``source`` as one aligned block (broadcast side)."""
        schema = source.schema
        return [values for chunk in source.chunks() for values in chunk.aligned(schema).tuples]

    def __repr__(self) -> str:
        return f"<HashPartitionExchange key={self.key.names!r} partitions={self.partitions}>"
