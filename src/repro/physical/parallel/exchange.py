"""Grace-style hash-partition exchange.

:class:`HashPartitionExchange` consumes a physical operator's chunk stream
and materializes it as ``K`` *key-disjoint* partitions: every tuple lands in
the bucket ``hash(key) % K`` of its partition-key value, so all tuples that
agree on the key — one quotient-candidate group, one join-key equivalence
class, one aggregation group — end up in the same partition.  That
disjointness is what makes partition-wise execution sound: each partition
can run the existing *serial* algorithm to completion and the concatenated
outputs are exactly the unpartitioned result (no key spans two partitions,
so no merge step and no cross-partition duplicate elimination is needed).

Partitions are plain lists of aligned value tuples — the same compact block
representation :class:`~repro.physical.base.Chunk` uses — so they are cheap
to ship across a process boundary (see :mod:`repro.physical.parallel.pool`).

:class:`PartitionSource` is the matching leaf operator: a scan over one
partition's tuple block, used to rebuild per-partition sub-plans on a
worker.  Bucket order is the scan order, so a dividend that arrives
clustered on the partition key stays clustered *within* every partition
(contiguous equal-key runs map to a single bucket and are appended in
order) — order-exploiting algorithms keep their streaming mode.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.errors import ExecutionError
from repro.physical.base import Chunk, PhysicalOperator, PhysicalProperties, TupleProjector
from repro.relation.schema import AttributeNames, as_schema

__all__ = ["HashPartitionExchange", "PartitionSource"]


class PartitionSource(PhysicalOperator):
    """Leaf scan over one partition's aligned-tuple block.

    The per-partition twin of :class:`~repro.physical.scans.RelationScan`:
    pure list slicing, no per-tuple work, preserves the block's order (and
    with it any clustering the exchange preserved).
    """

    name = "partition_source"

    properties = PhysicalProperties(per_input_cost=0.0, per_output_cost=0.5, preserves_order=True)

    def __init__(self, attributes: AttributeNames, tuples: list[tuple[Any, ...]]) -> None:
        super().__init__(as_schema(attributes))
        self._tuples = tuples

    def _produce_chunks(self) -> Iterator[Chunk]:
        schema = self._schema
        tuples = self._tuples
        size = self.batch_size
        for start in range(0, len(tuples), size):
            yield Chunk(schema, tuples[start : start + size])

    def describe(self) -> str:
        return f"PartitionSource({len(self._tuples)} tuples)"


class HashPartitionExchange:
    """Split a chunk stream into ``partitions`` key-disjoint tuple blocks."""

    __slots__ = ("key", "partitions")

    def __init__(self, key: AttributeNames, partitions: int) -> None:
        key_schema = as_schema(key)
        if partitions < 1:
            raise ExecutionError(f"exchange needs at least one partition, got {partitions}")
        if len(key_schema) == 0:
            raise ExecutionError("exchange needs at least one partition-key attribute")
        self.key = key_schema
        self.partitions = partitions

    def partition(self, source: PhysicalOperator) -> list[list[tuple[Any, ...]]]:
        """Consume ``source`` into ``partitions`` buckets of aligned tuples.

        Tuples are aligned with ``source.schema`` so a
        :class:`PartitionSource` over the bucket reproduces the source
        exactly.  With one partition the hash pass is skipped entirely —
        the zero-overhead serial fallback.
        """
        schema = source.schema
        if self.partitions == 1:
            return [[values for chunk in source.chunks() for values in chunk.aligned(schema).tuples]]
        key_of = TupleProjector(self.key)
        count = self.partitions
        buckets: list[list[tuple[Any, ...]]] = [[] for _ in range(count)]
        for chunk in source.chunks():
            aligned = chunk.aligned(schema)
            for values, key in zip(aligned.tuples, key_of.keys_of(aligned)):
                buckets[hash(key) % count].append(values)
        return buckets

    def collect(self, source: PhysicalOperator) -> list[tuple[Any, ...]]:
        """Materialize ``source`` as one aligned block (broadcast side)."""
        schema = source.schema
        return [values for chunk in source.chunks() for values in chunk.aligned(schema).tuples]

    def __repr__(self) -> str:
        return f"<HashPartitionExchange key={self.key.names!r} partitions={self.partitions}>"
