"""Worker-pool execution of partition sub-plans, under supervision.

A partition task is a small, pickle-friendly description of one serial
sub-plan: the algorithm's *registry name* (not a class object), the input
partitions as compact ``(attribute names, aligned tuple block)`` pairs, and
any extra operator options.  Workers rebuild the sub-plan over
:class:`~repro.physical.parallel.exchange.PartitionSource` leaves, run it to
completion and ship back the output block plus the sub-plan's per-operator
tuple counters (so the parent can aggregate intermediate-result statistics
across partitions).

Execution strategy, in order of preference:

* ``workers > 1`` and the tasks pickle cleanly → a shared
  :class:`~concurrent.futures.ProcessPoolExecutor`.  The pool is created
  once per process, reused across queries (grown on demand), and handed
  out through a **lease**: growth or :func:`shutdown_pool` while another
  query holds a lease retires the old executor without tearing it down
  under that query's in-flight futures.
* otherwise — one worker requested, a single task, options that cannot
  cross a process boundary (e.g. lambda aggregate functions) — the tasks
  run inline, in order, in the parent process.

Pooled dispatch is **supervised**: each task gets bounded retries with
exponential backoff and jitter (:class:`RetryPolicy`), an optional
per-task timeout, and on a dead pool (:class:`BrokenProcessPool`) the
pool is rebuilt and only the *unfinished* tasks are resubmitted — results
already shipped back are kept.  A task that exhausts its retries degrades
to inline execution; only if that fails too does a structured
:class:`~repro.errors.WorkerError` (carrying task kind, algorithm and
partition index) reach the caller.  Retry/degradation counts are recorded
on the optional :class:`SupervisionReport` and surfaced through
``explain(analyze=True)``.

The ``pool.dispatch`` and ``pool.worker`` fault points
(:mod:`repro.faults`) hook wave dispatch and per-task execution; worker
faults are decided in the coordinator (keeping injection deterministic)
and shipped to the subprocess as a plain picklable effect.
"""

from __future__ import annotations

import os
import pickle
import random
import time
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from threading import Lock
from typing import Any, Optional

from repro.errors import ExecutionError, InjectedFaultError, TaskTimeoutError, WorkerError
from repro.faults import registry as fault_registry
from repro.physical.aggregate import HashAggregate
from repro.physical.base import PhysicalOperator
from repro.physical.division.great_divide_ops import GREAT_DIVIDE_ALGORITHMS
from repro.physical.division.small_divide_ops import SMALL_DIVIDE_ALGORITHMS
from repro.physical.joins import JOIN_ALGORITHMS
from repro.physical.parallel.exchange import PartitionSource

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "PartitionTask",
    "RetryPolicy",
    "SupervisionReport",
    "build_subplan",
    "execute_task",
    "run_tasks",
    "shutdown_pool",
]

#: One input of a partition task: attribute names plus either an aligned
#: in-memory tuple block or a picklable, block-streaming
#: :class:`~repro.storage.spill.SpilledPartition` handle (when the
#: exchange ran under a memory budget) — :class:`PartitionSource` accepts
#: both, so workers re-stream spilled partitions from disk.
InputBlock = tuple[tuple[str, ...], Any]

TaskResult = tuple[list[tuple[Any, ...]], dict[str, int]]


@dataclass(frozen=True)
class PartitionTask:
    """A serial sub-plan over one partition, described by value.

    ``kind`` selects the operator family (``small_divide``, ``great_divide``,
    ``natural_join``, ``aggregate``); ``algorithm`` is the registry name
    within that family; ``options`` are extra keyword arguments for the
    operator constructor, as items so the dataclass stays hashable-free and
    picklable.
    """

    kind: str
    algorithm: str
    inputs: tuple[InputBlock, ...]
    options: tuple[tuple[str, Any], ...] = field(default=())


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor treats a failing partition task.

    A task is attempted ``1 + max_retries`` times through the pool; the
    delay before attempt *n*'s resubmission is ``backoff_seconds *
    backoff_multiplier**(n-1)``, stretched by up to ``jitter`` (a
    fraction, drawn from a ``seed``-determined stream so runs reproduce).
    ``timeout_seconds`` bounds one attempt's wall clock (``None`` — the
    default — disables the bound; a timed-out attempt also discards the
    pool, since its worker may be wedged).
    """

    max_retries: int = 2
    backoff_seconds: float = 0.01
    backoff_multiplier: float = 2.0
    jitter: float = 0.1
    timeout_seconds: Optional[float] = None
    seed: int = 0


DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass
class SupervisionReport:
    """Mutable tally the supervisor fills in during one ``run_tasks``."""

    #: Task resubmissions after a transient failure (per retry, not per task).
    tasks_retried: int = 0
    #: Tasks that fell back to inline execution after the pool path gave up.
    tasks_degraded: int = 0


def build_subplan(task: PartitionTask) -> PhysicalOperator:
    """Reconstruct the serial sub-plan a :class:`PartitionTask` describes."""
    sources = tuple(PartitionSource(names, tuples) for names, tuples in task.inputs)
    options = dict(task.options)
    if task.kind == "small_divide":
        return SMALL_DIVIDE_ALGORITHMS[task.algorithm](*sources, **options)
    if task.kind == "great_divide":
        return GREAT_DIVIDE_ALGORITHMS[task.algorithm](*sources, **options)
    if task.kind == "natural_join":
        return JOIN_ALGORITHMS[task.algorithm](*sources, **options)
    if task.kind == "aggregate":
        (child,) = sources
        specs = options.get("specs")
        if specs is not None:
            # Declarative aggregate specs ship across process boundaries
            # (the built (label, fn) closures do not); rebuild them here.
            aggregations = {spec.output: spec.build() for spec in specs}
        else:
            aggregations = options["aggregations"]
        return HashAggregate(child, options["grouping"], aggregations)
    raise ExecutionError(f"unknown partition task kind {task.kind!r}")


def execute_task(task: PartitionTask) -> TaskResult:
    """Run one partition sub-plan to completion.

    Returns the output as a block of tuples aligned with the sub-plan's
    schema, plus the sub-plan's per-operator tuple counters keyed in the
    same ``"NN:name"`` walk-position format
    :func:`~repro.physical.base.collect_statistics` uses.
    """
    plan = build_subplan(task)
    schema = plan.schema
    tuples: list[tuple[Any, ...]] = []
    extend = tuples.extend
    for chunk in plan.chunks():
        extend(chunk.aligned(schema).tuples)
    counters = {
        f"{index:02d}:{operator.name}": operator.tuples_out
        for index, operator in enumerate(plan.walk())
    }
    return tuples, counters


def _execute_task_with_fault(task: PartitionTask, effect: tuple[str, float]) -> TaskResult:
    """Worker-side wrapper applying a shipped ``pool.worker`` fault effect.

    The coordinator draws the injection decision (keeping the random
    stream in one process) and ships ``(action, delay_seconds)``; only
    here, inside an actual pool subprocess, may ``crash`` hard-kill.
    """
    action, delay_seconds = effect
    if action == "crash":
        os._exit(3)
    if action == "delay":
        time.sleep(delay_seconds)
    else:  # "raise" (and "corrupt", which degrades: there is no payload)
        raise InjectedFaultError("injected fault at pool.worker", point="pool.worker")
    return execute_task(task)


# ----------------------------------------------------------------------
# the shared process pool (leased)
# ----------------------------------------------------------------------
@dataclass
class _PoolHandle:
    """One shared executor plus its lease bookkeeping."""

    executor: ProcessPoolExecutor
    workers: int
    leases: int = 0
    retired: bool = False


_pool_lock = Lock()
_handle: Optional[_PoolHandle] = None


def _lease_pool(workers: int) -> _PoolHandle:
    """Borrow the shared pool, grown to at least ``workers`` slots.

    Growth (or a concurrent :func:`shutdown_pool`) never tears down an
    executor that other leases are still using: the old handle is marked
    retired and shut down by its last lease holder, while new leases get
    a fresh executor — the fix for the shutdown-vs-in-flight race.
    """
    global _handle
    with _pool_lock:
        if _handle is None or _handle.retired or _handle.workers < workers:
            if _handle is not None and not _handle.retired:
                _handle.retired = True
                if _handle.leases == 0:
                    _handle.executor.shutdown(wait=True)
            _handle = _PoolHandle(ProcessPoolExecutor(max_workers=workers), workers)
        _handle.leases += 1
        return _handle


def _release_pool(handle: _PoolHandle, discard: bool = False) -> None:
    """Return a lease; ``discard`` retires the executor (broken/wedged)."""
    global _handle
    with _pool_lock:
        handle.leases -= 1
        if discard:
            handle.retired = True
            if _handle is handle:
                _handle = None
        if handle.retired and handle.leases == 0:
            # Last one out turns off the lights.  wait=False: a discarded
            # pool may hold a wedged worker we must not block on.
            handle.executor.shutdown(wait=not discard)


def shutdown_pool() -> None:
    """Tear down the shared pool (tests; a fresh one is built on demand).

    With leases outstanding the executor is only *retired* — the leasing
    queries finish (or retry) on it and the last release shuts it down.
    """
    global _handle
    with _pool_lock:
        if _handle is not None:
            _handle.retired = True
            if _handle.leases == 0:
                _handle.executor.shutdown(wait=True)
            _handle = None


def _ships_cleanly(tasks: list[PartitionTask]) -> bool:
    """Whether the tasks' *options* survive a process boundary.

    The input blocks are plain tuples of relation values and almost always
    pickle; the options can carry arbitrary callables (aggregate functions),
    which is where pickling realistically fails.  Checking just the options
    keeps the pre-flight cheap — a block that still fails to pickle is
    caught at dispatch time and falls back to inline execution.
    """
    try:
        pickle.dumps([task.options for task in tasks])
        return True
    except Exception:
        return False


# ----------------------------------------------------------------------
# supervised execution
# ----------------------------------------------------------------------
#: Exception types that no amount of retrying will fix: the payload
#: cannot cross the process boundary.  These degrade inline immediately.
_NON_RETRYABLE = (pickle.PicklingError, AttributeError, TypeError)

#: Transient failures worth resubmitting: a dead pool, an injected fault,
#: a timed-out attempt, or an I/O hiccup (spill re-reads in the worker).
_RETRYABLE = (BrokenProcessPool, InjectedFaultError, TaskTimeoutError, OSError, EOFError)


class _WaveFailure(Exception):
    """Internal: one dispatch wave ended with failures.

    ``completed`` maps wave-local task index → result; ``failures`` maps
    index → the exception; ``cancelled`` holds indices whose futures were
    cancelled before running (they resubmit without consuming retry
    budget); ``rebuild`` asks the supervisor to discard the pool.
    """

    def __init__(
        self,
        completed: dict[int, TaskResult],
        failures: dict[int, BaseException],
        cancelled: set[int],
        rebuild: bool,
    ) -> None:
        super().__init__(f"{len(failures)} partition task(s) failed")
        self.completed = completed
        self.failures = failures
        self.cancelled = cancelled
        self.rebuild = rebuild


#: Per-attempt timeout for the wave currently in flight.  ``run_tasks``
#: sets it around each :func:`_bounded_map` call (the function signature
#: is pinned by callers that wrap/monkeypatch it).
_task_timeout_seconds: Optional[float] = None


def _backoff_sleep(policy: RetryPolicy, attempt: int, rng: random.Random) -> None:
    """Sleep before resubmitting a task on its ``attempt``-th retry."""
    if policy.backoff_seconds <= 0:
        return
    delay = policy.backoff_seconds * policy.backoff_multiplier ** max(attempt - 1, 0)
    time.sleep(delay * (1.0 + policy.jitter * rng.random()))


def _worker_fault_effect() -> Optional[tuple[str, float]]:
    """Draw the ``pool.worker`` fault point; picklable effect or None."""
    spec = fault_registry.draw("pool.worker")
    if spec is None:
        return None
    return (spec.action, spec.delay_seconds)


def _execute_supervised_inline(
    task: PartitionTask, partition: int, policy: RetryPolicy, report: SupervisionReport
) -> TaskResult:
    """Inline execution with the same fault surface and retry budget.

    Applies ``pool.worker`` injections (``crash`` degrades to ``raise``:
    the coordinator process is never killed) so a chaos plan exercises
    the inline path too; genuine task errors propagate untouched — they
    are deterministic and retrying cannot help.
    """
    rng = random.Random(f"{policy.seed}:inline:{partition}")
    attempts = 0
    while True:
        attempts += 1
        try:
            effect = _worker_fault_effect()
            if effect is not None:
                action, delay_seconds = effect
                if action == "delay":
                    time.sleep(delay_seconds)
                else:
                    raise InjectedFaultError(
                        "injected fault at pool.worker", point="pool.worker"
                    )
            return execute_task(task)
        except InjectedFaultError as error:
            if attempts > policy.max_retries:
                raise WorkerError(
                    f"partition task failed after {attempts} attempt(s): {error}",
                    kind=task.kind,
                    algorithm=task.algorithm,
                    partition=partition,
                    attempts=attempts,
                ) from error
            report.tasks_retried += 1
            _backoff_sleep(policy, attempts, rng)


def run_tasks(
    tasks: list[PartitionTask],
    workers: int,
    policy: Optional[RetryPolicy] = None,
    report: Optional[SupervisionReport] = None,
) -> list[TaskResult]:
    """Execute partition tasks, returning (output block, counters) per task.

    Results arrive in task order.  Parallel dispatch is used only when it
    can help (more than one task, more than one worker) and the tasks ship
    cleanly; the pooled path is supervised per ``policy`` (retries with
    backoff, optional per-attempt timeout, pool rebuild on death) and a
    task that exhausts its budget degrades to inline execution, which is
    always correct because tasks are self-contained values.
    """
    global _task_timeout_seconds
    policy = policy or DEFAULT_RETRY_POLICY
    report = report if report is not None else SupervisionReport()
    if not (workers > 1 and len(tasks) > 1 and _ships_cleanly(tasks)):
        return [
            _execute_supervised_inline(task, index, policy, report)
            for index, task in enumerate(tasks)
        ]

    rng = random.Random(f"{policy.seed}:supervisor")
    results: dict[int, TaskResult] = {}
    attempts: dict[int, int] = {index: 0 for index in range(len(tasks))}
    pending: list[int] = list(range(len(tasks)))
    degraded: list[int] = []

    def drain_degraded() -> None:
        for index in degraded:
            report.tasks_degraded += 1
            results[index] = _execute_supervised_inline(tasks[index], index, policy, report)
        degraded.clear()

    wave = 0
    while pending:
        wave += 1
        dispatch_spec = fault_registry.draw("pool.dispatch")
        if dispatch_spec is not None and dispatch_spec.action == "delay":
            time.sleep(dispatch_spec.delay_seconds)
            dispatch_spec = None
        if dispatch_spec is not None:
            # The whole wave fails to dispatch: charge every pending task
            # one attempt (so an unbounded plan still terminates in
            # degradation) and retry or degrade them together.
            still_pending: list[int] = []
            for index in pending:
                attempts[index] += 1
                if attempts[index] > policy.max_retries:
                    degraded.append(index)
                else:
                    report.tasks_retried += 1
                    still_pending.append(index)
            pending = still_pending
            drain_degraded()
            if pending:
                _backoff_sleep(policy, max(attempts[i] for i in pending), rng)
            continue

        handle = _lease_pool(workers)
        discard = False
        try:
            wave_tasks = [tasks[index] for index in pending]
            _task_timeout_seconds = policy.timeout_seconds
            try:
                wave_results = _bounded_map(handle.executor, wave_tasks, workers)
            except _WaveFailure as failure:
                discard = failure.rebuild
                for local, result in failure.completed.items():
                    results[pending[local]] = result
                still_pending = []
                propagate: Optional[BaseException] = None
                for local in range(len(wave_tasks)):
                    index = pending[local]
                    if local in failure.completed:
                        continue
                    error = failure.failures.get(local)
                    if error is None:
                        # Cancelled before it ran: resubmit for free.
                        still_pending.append(index)
                    elif isinstance(error, _NON_RETRYABLE):
                        degraded.append(index)
                    elif isinstance(error, _RETRYABLE):
                        attempts[index] += 1
                        if attempts[index] > policy.max_retries:
                            degraded.append(index)
                        else:
                            report.tasks_retried += 1
                            still_pending.append(index)
                    else:
                        # A deterministic task failure: retrying cannot
                        # change it — surface the original error.
                        propagate = error
                if propagate is not None:
                    raise propagate
                pending = still_pending
                if pending:
                    _backoff_sleep(policy, max(attempts[i] for i in pending), rng)
            else:
                for local, result in enumerate(wave_results):
                    results[pending[local]] = result
                pending = []
            finally:
                _task_timeout_seconds = None
        finally:
            _release_pool(handle, discard=discard)

        drain_degraded()

    return [results[index] for index in range(len(tasks))]


def _bounded_map(
    pool: ProcessPoolExecutor, tasks: list[PartitionTask], limit: int
) -> list[TaskResult]:
    """``pool.map`` with at most ``limit`` tasks in flight, in task order.

    The shared pool only ever *grows* (cheap reuse across queries), so a
    run that asks for fewer workers than the pool holds must be throttled
    here — otherwise ``execute_plan(plan, workers=2)`` after a 4-worker
    query would still fan out 4-wide and defeat the resource cap.

    Failure never abandons futures: the first failure stops new
    submissions, cancels what has not started, drains what is running
    (collecting late results and late failures alike) and raises a
    :class:`_WaveFailure` carrying every outcome — except on a per-task
    timeout, where draining could block on a wedged worker; there the
    remaining futures are cancelled-or-abandoned and the pool is flagged
    for rebuild, which tears the wedged workers down.
    """
    timeout = _task_timeout_seconds
    completed: dict[int, TaskResult] = {}
    failures: dict[int, BaseException] = {}
    cancelled: set[int] = set()
    rebuild = False
    abort = False
    in_flight: deque[tuple[int, Future]] = deque()
    total = len(tasks)
    next_index = 0

    while next_index < total or in_flight:
        while not abort and next_index < total and len(in_flight) < limit:
            index = next_index
            next_index += 1
            effect = _worker_fault_effect()
            try:
                if effect is None:
                    future = pool.submit(execute_task, tasks[index])
                else:
                    future = pool.submit(_execute_task_with_fault, tasks[index], effect)
            except BaseException as error:  # pool shut down / broken at submit
                failures[index] = error
                rebuild = True
                abort = True
                break
            in_flight.append((index, future))
        if not in_flight:
            break
        index, future = in_flight.popleft()
        if abort and future.cancel():
            cancelled.add(index)
            continue
        try:
            completed[index] = future.result(timeout)
        except FuturesTimeoutError:
            task = tasks[index]
            failures[index] = TaskTimeoutError(
                f"partition task exceeded {timeout}s "
                f"({task.kind}/{task.algorithm}, partition {index})",
                kind=task.kind,
                algorithm=task.algorithm,
                partition=index,
                attempts=1,
            )
            rebuild = True
            # The worker may be wedged: do not drain, cancel what we can
            # and abandon the rest — the supervisor discards the pool.
            while in_flight:
                other, remaining = in_flight.popleft()
                if remaining.cancel() or not remaining.done():
                    cancelled.add(other)
                elif remaining.exception() is None:
                    completed[other] = remaining.result()
                else:
                    failures[other] = remaining.exception()  # type: ignore[assignment]
            break
        except BrokenProcessPool as error:
            failures[index] = error
            rebuild = True
            abort = True
        except BaseException as error:
            failures[index] = error
            abort = True

    cancelled.update(range(next_index, total))
    if failures:
        raise _WaveFailure(completed, failures, cancelled, rebuild)
    return [completed[index] for index in range(total)]
