"""Worker-pool execution of partition sub-plans.

A partition task is a small, pickle-friendly description of one serial
sub-plan: the algorithm's *registry name* (not a class object), the input
partitions as compact ``(attribute names, aligned tuple block)`` pairs, and
any extra operator options.  Workers rebuild the sub-plan over
:class:`~repro.physical.parallel.exchange.PartitionSource` leaves, run it to
completion and ship back the output block plus the sub-plan's per-operator
tuple counters (so the parent can aggregate intermediate-result statistics
across partitions).

Execution strategy, in order of preference:

* ``workers > 1`` and the tasks pickle cleanly → a shared
  :class:`~concurrent.futures.ProcessPoolExecutor`.  The pool is created
  once per process and reused (grown on demand), so repeated queries do not
  pay worker startup each time.
* otherwise — one worker requested, a single task, options that cannot
  cross a process boundary (e.g. lambda aggregate functions), or a broken
  pool — the tasks run inline, in order, in the parent process.  Results
  are identical either way; only the parallelism differs.
"""

from __future__ import annotations

import pickle
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ExecutionError
from repro.physical.aggregate import HashAggregate
from repro.physical.base import PhysicalOperator
from repro.physical.division.great_divide_ops import GREAT_DIVIDE_ALGORITHMS
from repro.physical.division.small_divide_ops import SMALL_DIVIDE_ALGORITHMS
from repro.physical.joins import JOIN_ALGORITHMS
from repro.physical.parallel.exchange import PartitionSource

__all__ = ["PartitionTask", "build_subplan", "execute_task", "run_tasks", "shutdown_pool"]

#: One input of a partition task: attribute names plus either an aligned
#: in-memory tuple block or a picklable, block-streaming
#: :class:`~repro.storage.spill.SpilledPartition` handle (when the
#: exchange ran under a memory budget) — :class:`PartitionSource` accepts
#: both, so workers re-stream spilled partitions from disk.
InputBlock = tuple[tuple[str, ...], Any]


@dataclass(frozen=True)
class PartitionTask:
    """A serial sub-plan over one partition, described by value.

    ``kind`` selects the operator family (``small_divide``, ``great_divide``,
    ``natural_join``, ``aggregate``); ``algorithm`` is the registry name
    within that family; ``options`` are extra keyword arguments for the
    operator constructor, as items so the dataclass stays hashable-free and
    picklable.
    """

    kind: str
    algorithm: str
    inputs: tuple[InputBlock, ...]
    options: tuple[tuple[str, Any], ...] = field(default=())


def build_subplan(task: PartitionTask) -> PhysicalOperator:
    """Reconstruct the serial sub-plan a :class:`PartitionTask` describes."""
    sources = tuple(PartitionSource(names, tuples) for names, tuples in task.inputs)
    options = dict(task.options)
    if task.kind == "small_divide":
        return SMALL_DIVIDE_ALGORITHMS[task.algorithm](*sources, **options)
    if task.kind == "great_divide":
        return GREAT_DIVIDE_ALGORITHMS[task.algorithm](*sources, **options)
    if task.kind == "natural_join":
        return JOIN_ALGORITHMS[task.algorithm](*sources, **options)
    if task.kind == "aggregate":
        (child,) = sources
        specs = options.get("specs")
        if specs is not None:
            # Declarative aggregate specs ship across process boundaries
            # (the built (label, fn) closures do not); rebuild them here.
            aggregations = {spec.output: spec.build() for spec in specs}
        else:
            aggregations = options["aggregations"]
        return HashAggregate(child, options["grouping"], aggregations)
    raise ExecutionError(f"unknown partition task kind {task.kind!r}")


def execute_task(task: PartitionTask) -> tuple[list[tuple[Any, ...]], dict[str, int]]:
    """Run one partition sub-plan to completion.

    Returns the output as a block of tuples aligned with the sub-plan's
    schema, plus the sub-plan's per-operator tuple counters keyed in the
    same ``"NN:name"`` walk-position format
    :func:`~repro.physical.base.collect_statistics` uses.
    """
    plan = build_subplan(task)
    schema = plan.schema
    tuples: list[tuple[Any, ...]] = []
    extend = tuples.extend
    for chunk in plan.chunks():
        extend(chunk.aligned(schema).tuples)
    counters = {
        f"{index:02d}:{operator.name}": operator.tuples_out
        for index, operator in enumerate(plan.walk())
    }
    return tuples, counters


# ----------------------------------------------------------------------
# the shared process pool
# ----------------------------------------------------------------------
_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0


def _shared_pool(workers: int) -> ProcessPoolExecutor:
    """The process-wide worker pool, grown to at least ``workers`` slots."""
    global _pool, _pool_workers
    if _pool is None or _pool_workers < workers:
        if _pool is not None:
            _pool.shutdown(wait=True)
        _pool = ProcessPoolExecutor(max_workers=workers)
        _pool_workers = workers
    return _pool


def shutdown_pool() -> None:
    """Tear down the shared pool (tests; a fresh one is built on demand)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=True)
    _pool = None
    _pool_workers = 0


def _ships_cleanly(tasks: list[PartitionTask]) -> bool:
    """Whether the tasks' *options* survive a process boundary.

    The input blocks are plain tuples of relation values and almost always
    pickle; the options can carry arbitrary callables (aggregate functions),
    which is where pickling realistically fails.  Checking just the options
    keeps the pre-flight cheap — a block that still fails to pickle is
    caught at dispatch time and falls back to inline execution.
    """
    try:
        pickle.dumps([task.options for task in tasks])
        return True
    except Exception:
        return False


def run_tasks(
    tasks: list[PartitionTask], workers: int
) -> list[tuple[list[tuple[Any, ...]], dict[str, int]]]:
    """Execute partition tasks, returning (output block, counters) per task.

    Results arrive in task order.  Parallel dispatch is used only when it
    can help (more than one task, more than one worker) and the tasks ship
    cleanly; any pool-layer failure falls back to inline execution, which
    is always correct because tasks are self-contained values.
    """
    if workers > 1 and len(tasks) > 1 and _ships_cleanly(tasks):
        try:
            return _bounded_map(_shared_pool(workers), tasks, limit=workers)
        except (pickle.PicklingError, AttributeError, TypeError, BrokenProcessPool):
            # Unpicklable payload discovered at dispatch, or the pool died
            # under us: reset and compute inline.
            shutdown_pool()
    return [execute_task(task) for task in tasks]


def _bounded_map(
    pool: ProcessPoolExecutor, tasks: list[PartitionTask], limit: int
) -> list[tuple[list[tuple[Any, ...]], dict[str, int]]]:
    """``pool.map`` with at most ``limit`` tasks in flight, in task order.

    The shared pool only ever *grows* (cheap reuse across queries), so a
    run that asks for fewer workers than the pool holds must be throttled
    here — otherwise ``execute_plan(plan, workers=2)`` after a 4-worker
    query would still fan out 4-wide and defeat the resource cap.
    """
    in_flight: deque = deque()
    results: list[tuple[list[tuple[Any, ...]], dict[str, int]]] = []
    for task in tasks:
        if len(in_flight) >= limit:
            results.append(in_flight.popleft().result())
        in_flight.append(pool.submit(execute_task, task))
    while in_flight:
        results.append(in_flight.popleft().result())
    return results
