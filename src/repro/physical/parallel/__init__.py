"""Partition-parallel execution: hash-partition exchange + worker pool.

Division, natural joins and grouped aggregation are all independent per
key group (quotient key, join key, grouping key), which makes them
embarrassingly parallel under hash partitioning: split the input into
key-disjoint partitions, run the existing *serial* algorithm per partition
— on a process pool when ``workers > 1`` — and concatenate.  No key spans
two partitions, so the concatenated result is bit-identical to the serial
run and needs no merge step.
"""

from repro.physical.parallel.exchange import HashPartitionExchange, PartitionSource
from repro.physical.parallel.operators import (
    PartitionedAggregate,
    PartitionedDivision,
    PartitionedHashJoin,
    PartitionedOperator,
)
from repro.physical.parallel.pool import (
    PartitionTask,
    build_subplan,
    execute_task,
    run_tasks,
    shutdown_pool,
)

__all__ = [
    "HashPartitionExchange",
    "PartitionSource",
    "PartitionedOperator",
    "PartitionedDivision",
    "PartitionedHashJoin",
    "PartitionedAggregate",
    "PartitionTask",
    "build_subplan",
    "execute_task",
    "run_tasks",
    "shutdown_pool",
]
