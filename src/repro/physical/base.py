"""Volcano-style physical operators with a columnar chunk pull model.

Physical operators produce streams of :class:`Chunk` objects — an interned
:class:`~repro.relation.schema.Schema` plus a block of value tuples aligned
with it (:data:`DEFAULT_BATCH_SIZE` tuples each).  Flowing bare value tuples
instead of :class:`~repro.relation.row.Row` objects removes the per-tuple
``Row`` allocation and order-insensitive hash from every operator boundary;
rows are only materialized at the executor/result boundary (and by the
:meth:`PhysicalOperator.rows` compatibility shim).

Every operator counts the tuples it emits, so the benchmark harness can
report *intermediate result sizes* — the metric behind the paper's argument
(after Leinders & Van den Bussche) that division must be a first-class
operator: any simulation through the basic algebra produces quadratically
large intermediate results, a special-purpose operator does not.  Chunk
boundaries coincide with the historical row-batch boundaries, so the
per-operator counts are bit-identical to the row-at-a-time model.

Subclasses implement :meth:`PhysicalOperator._produce_chunks`; legacy
subclasses written against the older interfaces (``_produce_batches`` row
lists, or row-at-a-time ``_produce``) keep working through adapter defaults.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ExecutionError
from repro.relation.relation import Relation
from repro.relation.row import Row
from repro.relation.schema import AttributeNames, Schema, as_schema

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "Chunk",
    "PhysicalOperator",
    "PhysicalProperties",
    "PlanStatistics",
    "TupleProjector",
    "aligned_values",
    "batched",
    "chunked",
    "collect_statistics",
]

#: Number of tuples per chunk pulled through the physical operators.
DEFAULT_BATCH_SIZE = 1024


@dataclass(frozen=True)
class PhysicalProperties:
    """Declarative cost/behaviour descriptor of one physical operator class.

    The physical cost model (:mod:`repro.optimizer.physical_cost`) prices
    every applicable algorithm for a logical operator from these
    coefficients plus the cardinality estimates — the knowledge that used to
    live as penalty constants inside the logical cost model now sits on the
    operator classes themselves.  The coefficients are abstract tuple-touch
    units; only their *ratios* matter (they rank alternatives, they do not
    predict wall-clock time).

    ``sort_factor`` and ``clustered_input_discount`` encode interesting-order
    handling: a sort-based algorithm pays ``sort_factor · n·log2(n)`` on its
    build input *unless* that input is already clustered on the grouping
    attributes, in which case the sort is waived and the per-input
    coefficient is multiplied by the discount (streaming merge needs no
    candidate hash table).
    """

    #: Emits output while consuming input (False → materializes/blocks).
    streaming: bool = True
    #: Fixed setup overhead (hash tables, dictionary encodings).
    startup_cost: float = 0.0
    #: Cost per input tuple (all inputs).
    per_input_cost: float = 1.0
    #: Cost per output tuple.
    per_output_cost: float = 1.0
    #: × n·log2(n) on the build/dividend input; waived when pre-clustered.
    sort_factor: float = 0.0
    #: × quadratic term (pairs × groups; operator-shape specific).
    pairwise_factor: float = 0.0
    #: Which two estimated quantities the quadratic term multiplies — names
    #: from the cost model's quantity table ("left", "right", "candidates",
    #: "divisor_groups").
    pairwise_operands: tuple[str, str] = ("left", "right")
    #: Multiplier applied to ``per_input_cost`` when the input is clustered
    #: on the grouping attributes (< 1.0 for order-exploiting algorithms).
    clustered_input_discount: float = 1.0
    #: The planner's order propagation
    #: (:meth:`~repro.optimizer.physical_cost.PhysicalCostModel.ordered_attributes`)
    #: may rely on this operator passing its (first) input's scan order
    #: through unchanged.  Kept in lockstep with the logical-side dispatch
    #: by ``tests/optimizer/test_physical_cost.py``.
    preserves_order: bool = False


class Chunk:
    """A block of value tuples aligned with one interned schema.

    The columnar unit of the physical layer: ``tuples[i][j]`` is the value
    of attribute ``schema.names[j]`` in the chunk's ``i``-th tuple, so a
    whole column is ``[t[j] for t in tuples]`` and any attribute subset is
    one cached :func:`operator.itemgetter` application per tuple (see
    :meth:`~repro.relation.schema.Schema.getters`).  No :class:`Row` objects
    exist inside a chunk; :meth:`rows` materializes them on demand at the
    consumer boundary.
    """

    __slots__ = ("schema", "tuples")

    def __init__(self, schema: Schema, tuples: list[tuple[Any, ...]]) -> None:
        self.schema = schema
        self.tuples = tuples

    def __len__(self) -> int:
        return len(self.tuples)

    def __repr__(self) -> str:
        return f"<Chunk schema={self.schema.names!r} tuples={len(self.tuples)}>"

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Row]) -> "Chunk":
        """Build a chunk over ``schema`` from rows (realigned as needed)."""
        return cls(schema, [aligned_values(row, schema) for row in rows])

    def rows(self) -> list[Row]:
        """Materialize the chunk as :class:`Row` objects (boundary only)."""
        schema = self.schema
        from_schema = Row.from_schema
        return [from_schema(schema, values) for values in self.tuples]

    def aligned(self, schema: Schema) -> "Chunk":
        """This chunk's tuples realigned with ``schema``'s attribute order.

        Returns ``self`` (zero copy) when the orders already agree; otherwise
        one cached-picker pass permutes every tuple.
        """
        own = self.schema
        if schema is own or schema.names == own.names:
            return self
        get = own.tuple_getter(schema.names)
        return Chunk(schema, list(map(get, self.tuples)))

    def column(self, name: str) -> list[Any]:
        """One attribute's values, in tuple order."""
        position = self.schema.position(name)
        return [values[position] for values in self.tuples]


@dataclass
class PlanStatistics:
    """Tuple counts (and wall-clock time) gathered from one executed plan."""

    #: operator label → number of tuples that operator emitted
    tuples_by_operator: dict[str, int] = field(default_factory=dict)
    #: exchange label → peak per-partition counter of its inner sub-plans
    #: (the *maximum* over partitions — partitions hold key-disjoint slices
    #: of the work, so summing them would overstate the largest single
    #: intermediate a partitioned run ever materializes)
    partition_peaks: dict[str, int] = field(default_factory=dict)
    #: wall-clock seconds spent executing the plan (filled by the executor)
    elapsed_seconds: float = 0.0
    #: wall-clock seconds spent inside exchange worker pools (summed over
    #: exchanges; the coordinator share is ``elapsed_seconds`` minus this)
    worker_seconds: float = 0.0
    #: partition-task resubmissions after transient worker failures
    #: (summed over exchanges; see the pool supervisor's RetryPolicy)
    tasks_retried: int = 0
    #: partition tasks that fell back to inline execution after the pool
    #: path exhausted its retry budget
    tasks_degraded: int = 0
    #: fault-point name → injections fired during this run (empty unless a
    #: :mod:`repro.faults` plan is armed; filled by the executor from the
    #: registry's counter delta)
    faults_injected: dict[str, int] = field(default_factory=dict)

    @property
    def total_tuples(self) -> int:
        """Total number of tuples produced by all (plan-level) operators.

        Partition-local counters are intentionally excluded: an exchange
        operator's own output count already covers the concatenated
        partition outputs, so including the per-partition figures would
        double-charge the partitioned operators.
        """
        return sum(self.tuples_by_operator.values())

    @property
    def max_intermediate(self) -> int:
        """The largest single intermediate result (the paper's key metric).

        Covers both plan-level operators and the per-partition peaks of
        exchange operators (max over concurrent partitions, not their sum).
        """
        largest = max(self.tuples_by_operator.values(), default=0)
        peak = max(self.partition_peaks.values(), default=0)
        return max(largest, peak)

    def __getitem__(self, label: str) -> int:
        return self.tuples_by_operator.get(label, 0)


class TupleProjector:
    """Extract value tuples (or hashable group keys) for a fixed attribute
    list out of chunks or rows.

    Caches C-level :func:`operator.itemgetter` extractors per source schema;
    because schemas are interned and all chunks of one input stream normally
    share a schema object, the per-chunk cost is an identity check plus one
    ``map(itemgetter, tuples)`` sweep — no dict lookups per attribute.

    :meth:`keys` / :meth:`keys_of` return *bare* values (not 1-tuples) when
    the target is a single attribute; such keys are only for
    hashing/grouping — convert back with :meth:`key_tuple` before building
    output tuples.
    """

    __slots__ = ("_names", "_single", "_schema", "_tuple_get", "_key_get")

    def __init__(self, attributes: AttributeNames) -> None:
        self._names = tuple(as_schema(attributes).names)
        self._single = len(self._names) == 1
        self._schema: Optional[Schema] = None
        self._tuple_get = None
        self._key_get = None

    def _rebind(self, schema: Schema) -> None:
        self._tuple_get, self._key_get = schema.getters(self._names)
        self._schema = schema

    def __call__(self, row: Row) -> tuple[Any, ...]:
        """The target attributes of one row, as a value tuple."""
        if row._schema is not self._schema:
            self._rebind(row._schema)
        return self._tuple_get(row._values)

    # ------------------------------------------------------------------
    # chunk-level extraction (the hot path)
    # ------------------------------------------------------------------
    def tuples_of(self, chunk: Chunk) -> list[tuple[Any, ...]]:
        """Value tuples of the target attributes for a whole chunk."""
        if chunk.schema is not self._schema:
            self._rebind(chunk.schema)
        return list(map(self._tuple_get, chunk.tuples))

    def keys_of(self, chunk: Chunk) -> list[Any]:
        """Hashable group keys for a whole chunk.

        A bare value for single-attribute targets, a tuple otherwise.
        """
        if chunk.schema is not self._schema:
            self._rebind(chunk.schema)
        return list(map(self._key_get, chunk.tuples))

    # ------------------------------------------------------------------
    # row-level extraction (compatibility consumers)
    # ------------------------------------------------------------------
    def tuples(self, batch: list[Row]) -> list[tuple[Any, ...]]:
        """Value tuples for a whole batch of rows."""
        schema = self._schema
        get = self._tuple_get
        out: list[tuple[Any, ...]] = []
        append = out.append
        for row in batch:
            row_schema = row._schema
            if row_schema is not schema:
                self._rebind(row_schema)
                schema = row_schema
                get = self._tuple_get
            append(get(row._values))
        return out

    def keys(self, batch: list[Row]) -> list[Any]:
        """Hashable group keys for a whole batch of rows."""
        schema = self._schema
        get = self._key_get
        out: list[Any] = []
        append = out.append
        for row in batch:
            row_schema = row._schema
            if row_schema is not schema:
                self._rebind(row_schema)
                schema = row_schema
                get = self._key_get
            append(get(row._values))
        return out

    def key_tuple(self, key: Any) -> tuple[Any, ...]:
        """Convert a :meth:`keys`-style key back to an aligned value tuple."""
        return (key,) if self._single else key


def aligned_values(row: Row, schema: Schema) -> tuple[Any, ...]:
    """Value tuple of ``row`` aligned with ``schema``'s attribute order."""
    row_schema = row.schema
    if row_schema is schema or row_schema.names == schema.names:
        return row.values_tuple
    return row.values_for(schema)


def batched(rows: Iterable[Row], size: int) -> Iterator[list[Row]]:
    """Slice an iterable of rows into lists of at most ``size`` rows."""
    batch: list[Row] = []
    append = batch.append
    for row in rows:
        append(row)
        if len(batch) >= size:
            yield batch
            batch = []
            append = batch.append
    if batch:
        yield batch


def chunked(tuples: Iterable[tuple[Any, ...]], schema: Schema, size: int) -> Iterator[Chunk]:
    """Slice an iterable of aligned value tuples into chunks of ``size``."""
    block: list[tuple[Any, ...]] = []
    append = block.append
    for values in tuples:
        append(values)
        if len(block) >= size:
            yield Chunk(schema, block)
            block = []
            append = block.append
    if block:
        yield Chunk(schema, block)


class PhysicalOperator:
    """Base class of all physical operators.

    Subclasses implement :meth:`_produce_chunks` (a generator of
    :class:`Chunk` objects).  The public :meth:`chunks` wraps it with tuple
    counting; :meth:`batches` and :meth:`rows` are row-materializing
    compatibility views; :meth:`execute` materializes the stream into a
    :class:`Relation` without per-operator row objects.
    """

    #: Human-readable operator name used in plans and statistics.
    name = "physical"

    #: Declarative cost/behaviour descriptor consumed by the physical cost
    #: model; subclasses override with their own coefficients.
    properties = PhysicalProperties()

    #: Cost-based planning decision that produced this operator (set by the
    #: planner on the instance; ``None`` for directly constructed plans).
    decision = None

    #: True for exchange operators that fan work out over partitions; their
    #: ``workers`` attribute is the runtime degree-of-parallelism knob
    #: :meth:`set_workers` adjusts.
    parallel = False

    #: Contract flag consumed by the parallel wrappers and the static
    #: verifier (RP202): True only for algorithms whose result over a
    #: key-disjoint partitioning of their inputs equals the union of the
    #: per-partition results.  Division and great-division algorithms
    #: qualify (quotient groups never span a partition of the quotient
    #: key), as do equi-joins and grouped aggregation partitioned on their
    #: key; anything else must stay False and never be wrapped.
    key_disjoint_safe = False

    #: Zero-argument callable returning a chunk iterator, installed by the
    #: compilation backend on segment roots; ``None`` means interpreted.
    #: :meth:`chunks` dispatches through it, while :meth:`rows` (and with it
    #: emptiness probes) deliberately keeps the interpreted reference path.
    _compiled_producer = None

    #: Wall-clock seconds this operator spent inside worker pools (exchange
    #: operators fill it; everything else stays at 0.0).
    worker_seconds = 0.0

    #: Supervision tallies (exchange operators fill them from the pool
    #: supervisor's report; everything else stays at 0).
    tasks_retried = 0
    tasks_degraded = 0

    #: Process-wide construction counter backing collision-free labels.
    _construction_ids = itertools.count()

    def __init__(self, schema: Schema, children: tuple["PhysicalOperator", ...] = ()) -> None:
        self._schema = Schema.interned(schema.names)
        self._children = children
        self.tuples_out = 0
        self.batch_size = DEFAULT_BATCH_SIZE
        self._ordinal = next(PhysicalOperator._construction_ids)
        self._plan_ordinal: Optional[int] = None

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """The output schema of this operator."""
        return self._schema

    @property
    def children(self) -> tuple["PhysicalOperator", ...]:
        """Input operators."""
        return self._children

    @property
    def label(self) -> str:
        """Stable identifier for this operator, for explain output and tooling.

        (:func:`collect_statistics` keys its counts by walk position,
        ``"NN:name"``, not by this label.)  After :meth:`assign_labels` ran
        on the plan root, labels are sequential in walk order
        (``name#0001``); before that, a process-wide construction ordinal is
        used.  Either way two distinct operators never share a label (unlike
        the earlier ``id(self) & 0xFFFF`` scheme, which could collide within
        one plan).
        """
        ordinal = self._plan_ordinal if self._plan_ordinal is not None else self._ordinal
        return f"{self.name}#{ordinal:04d}"

    def assign_labels(self) -> None:
        """Assign stable per-plan sequential labels (pre-order walk)."""
        for index, operator in enumerate(self.walk()):
            operator._plan_ordinal = index

    def walk(self) -> Iterator["PhysicalOperator"]:
        """Yield this operator and all descendants, pre-order."""
        yield self
        for child in self._children:
            yield from child.walk()

    def set_batch_size(self, size: int) -> None:
        """Set the chunk size of this operator and the whole subtree."""
        if size < 1:
            raise ExecutionError(f"batch size must be positive, got {size}")
        for operator in self.walk():
            operator.batch_size = size

    def set_workers(self, workers: int) -> None:
        """Set the degree of parallelism of every exchange in the subtree.

        A runtime knob like :meth:`set_batch_size`: it retargets existing
        exchange operators (``parallel = True``) without changing the plan
        shape, so a plan built for N workers can execute with M.  Serial
        plans are unaffected.
        """
        if workers < 1:
            raise ExecutionError(f"workers must be positive, got {workers}")
        for operator in self.walk():
            if operator.parallel:
                operator.workers = workers

    def set_memory_budget(self, memory_budget_mb: Optional[float]) -> None:
        """Set the spill budget of every exchange in the subtree.

        A runtime knob like :meth:`set_workers`: exchange operators
        (``parallel = True``) buffer their hash partitions in memory and,
        with a budget set, spill the largest buffered partitions to disk
        once the buffered tuples outgrow it (see
        :mod:`repro.storage.spill`).  ``None`` disables spilling; serial
        plans are unaffected.
        """
        if memory_budget_mb is not None and memory_budget_mb <= 0:
            raise ExecutionError(f"memory budget must be positive, got {memory_budget_mb}")
        for operator in self.walk():
            if operator.parallel:
                operator.memory_budget_mb = memory_budget_mb

    def partition_peaks(self) -> dict[str, int]:
        """Per-partition peak counters (exchange operators override)."""
        return {}

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    # contract: rows-ok (legacy adapter: _produce_batches/_produce are row-based by definition)
    def _produce_chunks(self) -> Iterator[Chunk]:
        """Produce the output as aligned-tuple chunks.

        The default implementation adapts a legacy row-batch
        :meth:`_produce_batches` generator (which itself adapts a legacy
        row-at-a-time :meth:`_produce`), so external subclasses written
        against the old interfaces keep working.
        """
        schema = self._schema
        for batch in self._produce_batches():
            yield Chunk.from_rows(schema, batch)

    def _produce_batches(self) -> Iterator[list[Row]]:
        """Legacy extension hook: produce the output as row batches."""
        yield from batched(self._produce(), self.batch_size)

    def _produce(self) -> Iterator[Row]:
        raise NotImplementedError(
            f"{type(self).__name__} must implement _produce_chunks() "
            "(or legacy _produce_batches()/_produce())"
        )

    def chunks(self) -> Iterator[Chunk]:
        """Stream the output chunks, counting tuples as chunks are pulled.

        When the compilation backend installed a fused producer for the
        segment rooted here, it replaces the interpreted generator stack;
        the counting wrapper is identical either way.
        """
        producer = self._compiled_producer
        stream = self._produce_chunks() if producer is None else producer()
        for chunk in stream:
            if chunk.tuples:
                self.tuples_out += len(chunk.tuples)
                yield chunk

    def batches(self) -> Iterator[list[Row]]:
        """Row-batch view of the output stream (counts whole chunks)."""
        for chunk in self.chunks():
            yield chunk.rows()

    def rows(self) -> Iterator[Row]:
        """Row-at-a-time view of the output stream.

        Counts per row actually pulled, so consumers that stop early (e.g.
        emptiness probes) charge this operator only for what they consumed —
        the same accounting as the historical row-at-a-time model.
        """
        from_schema = Row.from_schema
        for chunk in self._produce_chunks():
            schema = chunk.schema
            for values in chunk.tuples:
                self.tuples_out += 1
                yield from_schema(schema, values)

    def produces_any(self) -> bool:
        """Emptiness probe: does this operator emit at least one row?

        Temporarily forces batch size 1 throughout the subtree so the
        partially-consumed pipeline charges every operator the same tuple
        counts as the historical row-at-a-time model (a 1024-tuple chunk
        pulled for a one-row peek would otherwise inflate the counts of
        inner operators — and with them ``max_intermediate``).
        """
        saved = [(operator, operator.batch_size) for operator in self.walk()]
        for operator, _ in saved:
            operator.batch_size = 1
        try:
            for _ in self.rows():
                return True
            return False
        finally:
            for operator, size in saved:
                operator.batch_size = size

    def execute(self) -> Relation:
        """Materialize the output as a set-semantics relation.

        Consumes :meth:`chunks` directly — value tuples flow from the last
        operator straight into the relation; rows exist only inside the
        resulting :class:`Relation`.
        """
        schema = self._schema
        tuples: list[tuple[Any, ...]] = []
        extend = tuples.extend
        for chunk in self.chunks():
            extend(chunk.aligned(schema).tuples)
        return Relation.from_aligned(schema, tuples)

    def reset_counters(self) -> None:
        """Reset tuple counters in the whole subtree (before a fresh run)."""
        for operator in self.walk():
            operator.tuples_out = 0
            operator.worker_seconds = 0.0
            operator.tasks_retried = 0
            operator.tasks_degraded = 0

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def explain(self, indent: int = 0) -> str:
        """Indented physical plan, similar to EXPLAIN output."""
        pad = "  " * indent
        lines = [f"{pad}{self.describe()}"]
        for child in self._children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        """One-line description of this operator."""
        return self.name

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} schema={self._schema.names!r}>"

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def _require_children(children: tuple["PhysicalOperator", ...], count: int, name: str) -> None:
        if len(children) != count:
            raise ExecutionError(f"{name} expects {count} input(s), got {len(children)}")


def collect_statistics(plan: PhysicalOperator) -> PlanStatistics:
    """Collect the per-operator tuple counts after a plan has been executed.

    Exchange operators additionally contribute their per-partition peak
    counters (max over partitions) under ``"NN:name/inner-label"`` keys,
    feeding :attr:`PlanStatistics.max_intermediate` without inflating the
    plan-level totals.
    """
    stats = PlanStatistics()
    for index, operator in enumerate(plan.walk()):
        stats.tuples_by_operator[f"{index:02d}:{operator.name}"] = operator.tuples_out
        stats.worker_seconds += operator.worker_seconds
        stats.tasks_retried += operator.tasks_retried
        stats.tasks_degraded += operator.tasks_degraded
        for label, value in operator.partition_peaks().items():
            stats.partition_peaks[f"{index:02d}:{operator.name}/{label}"] = value
    return stats
