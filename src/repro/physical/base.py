"""Volcano-style physical operators.

Physical operators produce streams of :class:`~repro.relation.row.Row`
objects.  Every operator counts the tuples it emits, so the benchmark
harness can report *intermediate result sizes* — the metric behind the
paper's argument (after Leinders & Van den Bussche) that division must be a
first-class operator: any simulation through the basic algebra produces
quadratically large intermediate results, a special-purpose operator does
not.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import ExecutionError
from repro.relation.relation import Relation
from repro.relation.row import Row
from repro.relation.schema import Schema

__all__ = ["PhysicalOperator", "PlanStatistics", "collect_statistics"]


@dataclass
class PlanStatistics:
    """Tuple counts gathered from one executed physical plan."""

    #: operator label → number of tuples that operator emitted
    tuples_by_operator: dict[str, int] = field(default_factory=dict)

    @property
    def total_tuples(self) -> int:
        """Total number of tuples produced by all operators."""
        return sum(self.tuples_by_operator.values())

    @property
    def max_intermediate(self) -> int:
        """The largest single intermediate result (the paper's key metric)."""
        return max(self.tuples_by_operator.values(), default=0)

    def __getitem__(self, label: str) -> int:
        return self.tuples_by_operator.get(label, 0)


class PhysicalOperator:
    """Base class of all physical operators.

    Subclasses implement :meth:`_produce` (a row generator).  The public
    :meth:`rows` wraps it with tuple counting; :meth:`execute` materializes
    the stream into a :class:`Relation`.
    """

    #: Human-readable operator name used in plans and statistics.
    name = "physical"

    def __init__(self, schema: Schema, children: tuple["PhysicalOperator", ...] = ()) -> None:
        self._schema = schema
        self._children = children
        self.tuples_out = 0

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """The output schema of this operator."""
        return self._schema

    @property
    def children(self) -> tuple["PhysicalOperator", ...]:
        """Input operators."""
        return self._children

    @property
    def label(self) -> str:
        """Identifier used in plan statistics (name plus object id suffix)."""
        return f"{self.name}#{id(self) & 0xFFFF:04x}"

    def walk(self) -> Iterator["PhysicalOperator"]:
        """Yield this operator and all descendants, pre-order."""
        yield self
        for child in self._children:
            yield from child.walk()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _produce(self) -> Iterator[Row]:
        raise NotImplementedError

    def rows(self) -> Iterator[Row]:
        """Stream the output rows, counting them as they are produced."""
        for row in self._produce():
            self.tuples_out += 1
            yield row

    def execute(self) -> Relation:
        """Materialize the output as a set-semantics relation."""
        return Relation(self._schema, self.rows())

    def reset_counters(self) -> None:
        """Reset tuple counters in the whole subtree (before a fresh run)."""
        for operator in self.walk():
            operator.tuples_out = 0

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def explain(self, indent: int = 0) -> str:
        """Indented physical plan, similar to EXPLAIN output."""
        pad = "  " * indent
        lines = [f"{pad}{self.describe()}"]
        for child in self._children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        """One-line description of this operator."""
        return self.name

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} schema={self._schema.names!r}>"

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def _require_children(children: tuple["PhysicalOperator", ...], count: int, name: str) -> None:
        if len(children) != count:
            raise ExecutionError(f"{name} expects {count} input(s), got {len(children)}")


def collect_statistics(plan: PhysicalOperator) -> PlanStatistics:
    """Collect the per-operator tuple counts after a plan has been executed."""
    stats = PlanStatistics()
    for index, operator in enumerate(plan.walk()):
        stats.tuples_by_operator[f"{index:02d}:{operator.name}"] = operator.tuples_out
    return stats
