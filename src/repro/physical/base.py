"""Volcano-style physical operators with a batched pull model.

Physical operators produce streams of :class:`~repro.relation.row.Row`
objects in *batches* (lists of rows, :data:`DEFAULT_BATCH_SIZE` each), which
amortizes the per-call generator overhead of row-at-a-time iteration.  Every
operator counts the tuples it emits, so the benchmark harness can report
*intermediate result sizes* — the metric behind the paper's argument (after
Leinders & Van den Bussche) that division must be a first-class operator:
any simulation through the basic algebra produces quadratically large
intermediate results, a special-purpose operator does not.

Subclasses implement :meth:`PhysicalOperator._produce_batches`; the
row-at-a-time :meth:`PhysicalOperator.rows` remains as a flattening
compatibility shim (it counts per row actually pulled, so partially-consumed
streams keep the exact counting semantics of the old row-at-a-time model).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ExecutionError
from repro.relation.relation import Relation
from repro.relation.row import Row
from repro.relation.schema import AttributeNames, Schema, as_schema

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "PhysicalOperator",
    "PlanStatistics",
    "TupleProjector",
    "aligned_values",
    "batched",
    "collect_statistics",
]

#: Number of rows per batch pulled through the physical operators.
DEFAULT_BATCH_SIZE = 1024


@dataclass
class PlanStatistics:
    """Tuple counts (and wall-clock time) gathered from one executed plan."""

    #: operator label → number of tuples that operator emitted
    tuples_by_operator: dict[str, int] = field(default_factory=dict)
    #: wall-clock seconds spent executing the plan (filled by the executor)
    elapsed_seconds: float = 0.0

    @property
    def total_tuples(self) -> int:
        """Total number of tuples produced by all operators."""
        return sum(self.tuples_by_operator.values())

    @property
    def max_intermediate(self) -> int:
        """The largest single intermediate result (the paper's key metric)."""
        return max(self.tuples_by_operator.values(), default=0)

    def __getitem__(self, label: str) -> int:
        return self.tuples_by_operator.get(label, 0)


class TupleProjector:
    """Extract value tuples (or hashable group keys) for a fixed attribute
    list out of rows.

    Caches C-level :func:`operator.itemgetter` extractors per row schema;
    because schemas are interned and all rows of one input stream normally
    share a schema object, the per-row cost is an identity check plus one
    itemgetter call — no dict lookups per attribute.

    :meth:`keys` returns *bare* values (not 1-tuples) when the target is a
    single attribute; such keys are only for hashing/grouping — convert
    back with :meth:`key_tuple` before building rows.
    """

    __slots__ = ("_names", "_single", "_schema", "_tuple_get", "_key_get")

    def __init__(self, attributes: AttributeNames) -> None:
        self._names = tuple(as_schema(attributes).names)
        self._single = len(self._names) == 1
        self._schema: Optional[Schema] = None
        self._tuple_get = None
        self._key_get = None

    def _rebind(self, schema: Schema) -> None:
        self._tuple_get, self._key_get = schema.getters(self._names)
        self._schema = schema

    def __call__(self, row: Row) -> tuple[Any, ...]:
        """The target attributes of one row, as a value tuple."""
        if row._schema is not self._schema:
            self._rebind(row._schema)
        return self._tuple_get(row._values)

    def tuples(self, batch: list[Row]) -> list[tuple[Any, ...]]:
        """Value tuples for a whole batch of rows."""
        schema = self._schema
        get = self._tuple_get
        out: list[tuple[Any, ...]] = []
        append = out.append
        for row in batch:
            row_schema = row._schema
            if row_schema is not schema:
                self._rebind(row_schema)
                schema = row_schema
                get = self._tuple_get
            append(get(row._values))
        return out

    def keys(self, batch: list[Row]) -> list[Any]:
        """Hashable group keys for a whole batch of rows.

        A bare value for single-attribute targets, a tuple otherwise.
        """
        schema = self._schema
        get = self._key_get
        out: list[Any] = []
        append = out.append
        for row in batch:
            row_schema = row._schema
            if row_schema is not schema:
                self._rebind(row_schema)
                schema = row_schema
                get = self._key_get
            append(get(row._values))
        return out

    def key_tuple(self, key: Any) -> tuple[Any, ...]:
        """Convert a :meth:`keys`-style key back to an aligned value tuple."""
        return (key,) if self._single else key


def aligned_values(row: Row, schema: Schema) -> tuple[Any, ...]:
    """Value tuple of ``row`` aligned with ``schema``'s attribute order."""
    row_schema = row.schema
    if row_schema is schema or row_schema.names == schema.names:
        return row.values_tuple
    return row.values_for(schema)


def batched(rows: Iterable[Row], size: int) -> Iterator[list[Row]]:
    """Slice an iterable of rows into lists of at most ``size`` rows."""
    batch: list[Row] = []
    append = batch.append
    for row in rows:
        append(row)
        if len(batch) >= size:
            yield batch
            batch = []
            append = batch.append
    if batch:
        yield batch


class PhysicalOperator:
    """Base class of all physical operators.

    Subclasses implement :meth:`_produce_batches` (a generator of row
    lists).  The public :meth:`batches` wraps it with tuple counting;
    :meth:`rows` flattens the batches for row-at-a-time consumers;
    :meth:`execute` materializes the stream into a :class:`Relation`.
    """

    #: Human-readable operator name used in plans and statistics.
    name = "physical"

    #: Process-wide construction counter backing collision-free labels.
    _construction_ids = itertools.count()

    def __init__(self, schema: Schema, children: tuple["PhysicalOperator", ...] = ()) -> None:
        self._schema = Schema.interned(schema.names)
        self._children = children
        self.tuples_out = 0
        self.batch_size = DEFAULT_BATCH_SIZE
        self._ordinal = next(PhysicalOperator._construction_ids)
        self._plan_ordinal: Optional[int] = None

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """The output schema of this operator."""
        return self._schema

    @property
    def children(self) -> tuple["PhysicalOperator", ...]:
        """Input operators."""
        return self._children

    @property
    def label(self) -> str:
        """Stable identifier for this operator, for explain output and tooling.

        (:func:`collect_statistics` keys its counts by walk position,
        ``"NN:name"``, not by this label.)  After :meth:`assign_labels` ran
        on the plan root, labels are sequential in walk order
        (``name#0001``); before that, a process-wide construction ordinal is
        used.  Either way two distinct operators never share a label (unlike
        the earlier ``id(self) & 0xFFFF`` scheme, which could collide within
        one plan).
        """
        ordinal = self._plan_ordinal if self._plan_ordinal is not None else self._ordinal
        return f"{self.name}#{ordinal:04d}"

    def assign_labels(self) -> None:
        """Assign stable per-plan sequential labels (pre-order walk)."""
        for index, operator in enumerate(self.walk()):
            operator._plan_ordinal = index

    def walk(self) -> Iterator["PhysicalOperator"]:
        """Yield this operator and all descendants, pre-order."""
        yield self
        for child in self._children:
            yield from child.walk()

    def set_batch_size(self, size: int) -> None:
        """Set the batch size of this operator and the whole subtree."""
        if size < 1:
            raise ExecutionError(f"batch size must be positive, got {size}")
        for operator in self.walk():
            operator.batch_size = size

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _produce_batches(self) -> Iterator[list[Row]]:
        """Produce the output as row batches.

        The default implementation adapts a legacy row-at-a-time
        :meth:`_produce` generator, so external subclasses written against
        the old interface keep working.
        """
        yield from batched(self._produce(), self.batch_size)

    def _produce(self) -> Iterator[Row]:
        raise NotImplementedError(
            f"{type(self).__name__} must implement _produce_batches() (or legacy _produce())"
        )

    def batches(self) -> Iterator[list[Row]]:
        """Stream the output batches, counting tuples as batches are pulled."""
        for batch in self._produce_batches():
            if batch:
                self.tuples_out += len(batch)
                yield batch

    def rows(self) -> Iterator[Row]:
        """Row-at-a-time view of the output stream.

        Counts per row actually pulled, so consumers that stop early (e.g.
        emptiness probes) charge this operator only for what they consumed —
        the same accounting as the historical row-at-a-time model.
        """
        for batch in self._produce_batches():
            for row in batch:
                self.tuples_out += 1
                yield row

    def produces_any(self) -> bool:
        """Emptiness probe: does this operator emit at least one row?

        Temporarily forces batch size 1 throughout the subtree so the
        partially-consumed pipeline charges every operator the same tuple
        counts as the historical row-at-a-time model (a 1024-row batch
        pulled for a one-row peek would otherwise inflate the counts of
        inner operators — and with them ``max_intermediate``).
        """
        saved = [(operator, operator.batch_size) for operator in self.walk()]
        for operator, _ in saved:
            operator.batch_size = 1
        try:
            for _ in self.rows():
                return True
            return False
        finally:
            for operator, size in saved:
                operator.batch_size = size

    def execute(self) -> Relation:
        """Materialize the output as a set-semantics relation."""
        return Relation(self._schema, itertools.chain.from_iterable(self.batches()))

    def reset_counters(self) -> None:
        """Reset tuple counters in the whole subtree (before a fresh run)."""
        for operator in self.walk():
            operator.tuples_out = 0

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def explain(self, indent: int = 0) -> str:
        """Indented physical plan, similar to EXPLAIN output."""
        pad = "  " * indent
        lines = [f"{pad}{self.describe()}"]
        for child in self._children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        """One-line description of this operator."""
        return self.name

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} schema={self._schema.names!r}>"

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def _require_children(children: tuple["PhysicalOperator", ...], count: int, name: str) -> None:
        if len(children) != count:
            raise ExecutionError(f"{name} expects {count} input(s), got {len(children)}")


def collect_statistics(plan: PhysicalOperator) -> PlanStatistics:
    """Collect the per-operator tuple counts after a plan has been executed."""
    stats = PlanStatistics()
    for index, operator in enumerate(plan.walk()):
        stats.tuples_by_operator[f"{index:02d}:{operator.name}"] = operator.tuples_out
    return stats
