"""Basic physical operators: filter, project, rename, set operations, product.

All operators stream in batches (lists of rows) and, where the operation is
positional, work directly on the rows' value tuples via precomputed pick
indices instead of rebuilding per-row dicts.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping
from typing import Any

from repro.physical.base import PhysicalOperator, TupleProjector, aligned_values, batched
from repro.relation.row import Row
from repro.relation.schema import AttributeNames, as_schema

__all__ = [
    "Filter",
    "ProjectOp",
    "RenameOp",
    "UnionOp",
    "IntersectOp",
    "DifferenceOp",
    "ProductOp",
    "DuplicateElimination",
]


class Filter(PhysicalOperator):
    """Streaming selection σ_p."""

    name = "filter"

    def __init__(self, child: PhysicalOperator, predicate: Callable[[Row], bool]) -> None:
        super().__init__(child.schema, (child,))
        self.predicate = predicate

    def _produce_batches(self) -> Iterator[list[Row]]:
        predicate = self.predicate
        for batch in self._children[0].batches():
            matched = [row for row in batch if predicate(row)]
            if matched:
                yield matched

    def describe(self) -> str:
        return f"Filter({self.predicate!r})"


class ProjectOp(PhysicalOperator):
    """Projection with duplicate elimination (set semantics)."""

    name = "project"

    def __init__(self, child: PhysicalOperator, attributes: AttributeNames) -> None:
        schema = child.schema.project(as_schema(attributes))
        super().__init__(schema, (child,))

    def _produce_batches(self) -> Iterator[list[Row]]:
        schema = self._schema
        project = TupleProjector(schema)
        from_schema = Row.from_schema
        seen: set[tuple[Any, ...]] = set()
        add = seen.add

        def fresh_rows() -> Iterator[Row]:
            for batch in self._children[0].batches():
                for values in project.tuples(batch):
                    if values not in seen:
                        add(values)
                        yield from_schema(schema, values)

        yield from batched(fresh_rows(), self.batch_size)

    def describe(self) -> str:
        return f"Project[{', '.join(self._schema.names)}]"


class RenameOp(PhysicalOperator):
    """Streaming attribute renaming."""

    name = "rename"

    def __init__(self, child: PhysicalOperator, mapping: Mapping[str, str]) -> None:
        super().__init__(child.schema.rename(dict(mapping)), (child,))
        self.mapping = dict(mapping)

    def _produce_batches(self) -> Iterator[list[Row]]:
        schema = self._schema
        source = self._children[0].schema
        from_schema = Row.from_schema
        for batch in self._children[0].batches():
            yield [from_schema(schema, aligned_values(row, source)) for row in batch]


class DuplicateElimination(PhysicalOperator):
    """Explicit duplicate elimination (used after bag-producing operators)."""

    name = "distinct"

    def __init__(self, child: PhysicalOperator) -> None:
        super().__init__(child.schema, (child,))

    def _produce_batches(self) -> Iterator[list[Row]]:
        seen: set[Row] = set()
        for batch in self._children[0].batches():
            fresh = [row for row in batch if row not in seen]
            if fresh:
                seen.update(fresh)
                yield fresh


class UnionOp(PhysicalOperator):
    """Set union: stream the left input, then the unseen rows of the right."""

    name = "union"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema, (left, right))

    def _produce_batches(self) -> Iterator[list[Row]]:
        seen: set[Row] = set()
        for child in self._children:
            for batch in child.batches():
                fresh = [row for row in batch if row not in seen]
                if fresh:
                    seen.update(fresh)
                    yield fresh


class IntersectOp(PhysicalOperator):
    """Set intersection: build the right side, probe with the left."""

    name = "intersect"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema, (left, right))

    def _produce_batches(self) -> Iterator[list[Row]]:
        right_rows: set[Row] = set()
        for batch in self._children[1].batches():
            right_rows.update(batch)
        emitted: set[Row] = set()
        for batch in self._children[0].batches():
            fresh = [row for row in batch if row in right_rows and row not in emitted]
            if fresh:
                emitted.update(fresh)
                yield fresh


class DifferenceOp(PhysicalOperator):
    """Set difference: build the right side, stream the left through it."""

    name = "difference"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema, (left, right))

    def _produce_batches(self) -> Iterator[list[Row]]:
        right_rows: set[Row] = set()
        for batch in self._children[1].batches():
            right_rows.update(batch)
        emitted: set[Row] = set()
        for batch in self._children[0].batches():
            fresh = [row for row in batch if row not in right_rows and row not in emitted]
            if fresh:
                emitted.update(fresh)
                yield fresh


class ProductOp(PhysicalOperator):
    """Nested-loops Cartesian product (the right input is materialized)."""

    name = "product"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema.union(right.schema), (left, right))

    def _produce_batches(self) -> Iterator[list[Row]]:
        left, right = self._children
        schema = self._schema
        left_schema, right_schema = left.schema, right.schema
        if not left_schema.is_disjoint(right_schema):
            # Overlapping inputs: fall back to value-checked merging.
            right_rows = [row for batch in right.batches() for row in batch]
            merged = (
                left_row.merge(right_row)
                for batch in left.batches()
                for left_row in batch
                for right_row in right_rows
            )
            yield from batched(merged, self.batch_size)
            return
        from_schema = Row.from_schema
        right_values = [
            aligned_values(row, right_schema) for batch in right.batches() for row in batch
        ]
        def combined() -> Iterator[Row]:
            for batch in left.batches():
                for left_row in batch:
                    left_values = aligned_values(left_row, left_schema)
                    for values in right_values:
                        yield from_schema(schema, left_values + values)

        yield from batched(combined(), self.batch_size)
