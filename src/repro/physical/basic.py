"""Basic physical operators: filter, project, rename, set operations, product."""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping

from repro.physical.base import PhysicalOperator
from repro.relation.row import Row
from repro.relation.schema import AttributeNames, as_schema

__all__ = [
    "Filter",
    "ProjectOp",
    "RenameOp",
    "UnionOp",
    "IntersectOp",
    "DifferenceOp",
    "ProductOp",
    "DuplicateElimination",
]


class Filter(PhysicalOperator):
    """Streaming selection σ_p."""

    name = "filter"

    def __init__(self, child: PhysicalOperator, predicate: Callable[[Row], bool]) -> None:
        super().__init__(child.schema, (child,))
        self.predicate = predicate

    def _produce(self) -> Iterator[Row]:
        for row in self._children[0].rows():
            if self.predicate(row):
                yield row

    def describe(self) -> str:
        return f"Filter({self.predicate!r})"


class ProjectOp(PhysicalOperator):
    """Projection with duplicate elimination (set semantics)."""

    name = "project"

    def __init__(self, child: PhysicalOperator, attributes: AttributeNames) -> None:
        schema = child.schema.project(as_schema(attributes))
        super().__init__(schema, (child,))

    def _produce(self) -> Iterator[Row]:
        seen: set[Row] = set()
        for row in self._children[0].rows():
            projected = row.project(self._schema)
            if projected not in seen:
                seen.add(projected)
                yield projected

    def describe(self) -> str:
        return f"Project[{', '.join(self._schema.names)}]"


class RenameOp(PhysicalOperator):
    """Streaming attribute renaming."""

    name = "rename"

    def __init__(self, child: PhysicalOperator, mapping: Mapping[str, str]) -> None:
        super().__init__(child.schema.rename(dict(mapping)), (child,))
        self.mapping = dict(mapping)

    def _produce(self) -> Iterator[Row]:
        for row in self._children[0].rows():
            yield row.rename(self.mapping)


class DuplicateElimination(PhysicalOperator):
    """Explicit duplicate elimination (used after bag-producing operators)."""

    name = "distinct"

    def __init__(self, child: PhysicalOperator) -> None:
        super().__init__(child.schema, (child,))

    def _produce(self) -> Iterator[Row]:
        seen: set[Row] = set()
        for row in self._children[0].rows():
            if row not in seen:
                seen.add(row)
                yield row


class UnionOp(PhysicalOperator):
    """Set union: stream the left input, then the unseen rows of the right."""

    name = "union"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema, (left, right))

    def _produce(self) -> Iterator[Row]:
        seen: set[Row] = set()
        for child in self._children:
            for row in child.rows():
                if row not in seen:
                    seen.add(row)
                    yield row


class IntersectOp(PhysicalOperator):
    """Set intersection: build the right side, probe with the left."""

    name = "intersect"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema, (left, right))

    def _produce(self) -> Iterator[Row]:
        right_rows = set(self._children[1].rows())
        emitted: set[Row] = set()
        for row in self._children[0].rows():
            if row in right_rows and row not in emitted:
                emitted.add(row)
                yield row


class DifferenceOp(PhysicalOperator):
    """Set difference: build the right side, stream the left through it."""

    name = "difference"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema, (left, right))

    def _produce(self) -> Iterator[Row]:
        right_rows = set(self._children[1].rows())
        emitted: set[Row] = set()
        for row in self._children[0].rows():
            if row not in right_rows and row not in emitted:
                emitted.add(row)
                yield row


class ProductOp(PhysicalOperator):
    """Nested-loops Cartesian product (the right input is materialized)."""

    name = "product"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema.union(right.schema), (left, right))

    def _produce(self) -> Iterator[Row]:
        right_rows = list(self._children[1].rows())
        for left_row in self._children[0].rows():
            for right_row in right_rows:
                yield left_row.merge(right_row)
