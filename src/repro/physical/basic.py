"""Basic physical operators: filter, project, rename, set operations, product.

All operators stream :class:`~repro.physical.base.Chunk` objects and, where
the operation is positional, work directly on the chunks' value tuples via
cached schema pickers instead of materializing per-tuple ``Row`` objects.
Set semantics over tuples is safe because every consumer realigns incoming
chunks with its own schema order first (``Chunk.aligned``), so equal rows
always compare as equal tuples.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping
from typing import Any

from repro.physical.base import (
    Chunk,
    PhysicalOperator,
    PhysicalProperties,
    TupleProjector,
    batched,
    chunked,
)
from repro.relation.row import Row
from repro.relation.schema import AttributeNames, as_schema

__all__ = [
    "Filter",
    "ProjectOp",
    "RenameOp",
    "UnionOp",
    "IntersectOp",
    "DifferenceOp",
    "ProductOp",
    "DuplicateElimination",
]


class Filter(PhysicalOperator):
    """Streaming selection σ_p.

    Predicates take :class:`Row` objects (the public predicate API), so this
    is the one mid-pipeline operator that materializes a row per tuple — the
    row is dropped immediately after the predicate call.
    """

    name = "filter"

    #: Streams, but materializes one Row per tuple for the predicate call.
    properties = PhysicalProperties(per_input_cost=1.2, per_output_cost=0.0, preserves_order=True)

    def __init__(self, child: PhysicalOperator, predicate: Callable[[Row], bool]) -> None:
        super().__init__(child.schema, (child,))
        self.predicate = predicate

    # contract: rows-ok (the public predicate API takes a Row; compilation inlines it away)
    def _produce_chunks(self) -> Iterator[Chunk]:
        predicate = self.predicate
        schema = self._schema
        from_schema = Row.from_schema
        for chunk in self._children[0].chunks():
            tuples = chunk.aligned(schema).tuples
            matched = [values for values in tuples if predicate(from_schema(schema, values))]
            if matched:
                yield Chunk(schema, matched)

    def describe(self) -> str:
        return f"Filter({self.predicate!r})"


class ProjectOp(PhysicalOperator):
    """Projection with duplicate elimination (set semantics)."""

    name = "project"

    #: Duplicate elimination keeps a hash set over the output; first-seen
    #: order makes the output follow the input's scan order.
    properties = PhysicalProperties(per_input_cost=1.0, per_output_cost=1.0, preserves_order=True)

    def __init__(self, child: PhysicalOperator, attributes: AttributeNames) -> None:
        schema = child.schema.project(as_schema(attributes))
        super().__init__(schema, (child,))

    def _produce_chunks(self) -> Iterator[Chunk]:
        schema = self._schema
        project = TupleProjector(schema)
        seen: set[tuple[Any, ...]] = set()
        add = seen.add

        def fresh_tuples() -> Iterator[tuple[Any, ...]]:
            for chunk in self._children[0].chunks():
                for values in project.tuples_of(chunk):
                    if values not in seen:
                        add(values)
                        yield values

        yield from chunked(fresh_tuples(), schema, self.batch_size)

    def describe(self) -> str:
        return f"Project[{', '.join(self._schema.names)}]"


class RenameOp(PhysicalOperator):
    """Streaming attribute renaming (zero-copy over aligned chunks)."""

    name = "rename"

    properties = PhysicalProperties(per_input_cost=0.1, per_output_cost=0.0, preserves_order=True)

    def __init__(self, child: PhysicalOperator, mapping: Mapping[str, str]) -> None:
        super().__init__(child.schema.rename(dict(mapping)), (child,))
        self.mapping = dict(mapping)

    def _produce_chunks(self) -> Iterator[Chunk]:
        schema = self._schema
        source = self._children[0].schema
        for chunk in self._children[0].chunks():
            yield Chunk(schema, chunk.aligned(source).tuples)


class DuplicateElimination(PhysicalOperator):
    """Explicit duplicate elimination (used after bag-producing operators)."""

    name = "distinct"

    properties = PhysicalProperties(per_input_cost=1.0, per_output_cost=1.0, preserves_order=True)

    def __init__(self, child: PhysicalOperator) -> None:
        super().__init__(child.schema, (child,))

    def _produce_chunks(self) -> Iterator[Chunk]:
        schema = self._schema
        seen: set[tuple[Any, ...]] = set()
        for chunk in self._children[0].chunks():
            tuples = chunk.aligned(schema).tuples
            fresh = [values for values in tuples if values not in seen]
            if fresh:
                seen.update(fresh)
                yield Chunk(schema, fresh)


class UnionOp(PhysicalOperator):
    """Set union: stream the left input, then the unseen tuples of the right."""

    name = "union"

    properties = PhysicalProperties(per_input_cost=2.0, per_output_cost=1.0)

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema, (left, right))

    def _produce_chunks(self) -> Iterator[Chunk]:
        schema = self._schema
        seen: set[tuple[Any, ...]] = set()
        for child in self._children:
            for chunk in child.chunks():
                tuples = chunk.aligned(schema).tuples
                fresh = [values for values in tuples if values not in seen]
                if fresh:
                    seen.update(fresh)
                    yield Chunk(schema, fresh)


class IntersectOp(PhysicalOperator):
    """Set intersection: build the right side, probe with the left."""

    name = "intersect"

    properties = PhysicalProperties(streaming=False, per_input_cost=2.0, per_output_cost=1.0)

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema, (left, right))

    def _produce_chunks(self) -> Iterator[Chunk]:
        schema = self._schema
        right_tuples: set[tuple[Any, ...]] = set()
        for chunk in self._children[1].chunks():
            right_tuples.update(chunk.aligned(schema).tuples)
        emitted: set[tuple[Any, ...]] = set()
        for chunk in self._children[0].chunks():
            tuples = chunk.aligned(schema).tuples
            fresh = [v for v in tuples if v in right_tuples and v not in emitted]
            if fresh:
                emitted.update(fresh)
                yield Chunk(schema, fresh)


class DifferenceOp(PhysicalOperator):
    """Set difference: build the right side, stream the left through it."""

    name = "difference"

    properties = PhysicalProperties(streaming=False, per_input_cost=2.0, per_output_cost=1.0)

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema, (left, right))

    def _produce_chunks(self) -> Iterator[Chunk]:
        schema = self._schema
        right_tuples: set[tuple[Any, ...]] = set()
        for chunk in self._children[1].chunks():
            right_tuples.update(chunk.aligned(schema).tuples)
        emitted: set[tuple[Any, ...]] = set()
        for chunk in self._children[0].chunks():
            tuples = chunk.aligned(schema).tuples
            fresh = [v for v in tuples if v not in right_tuples and v not in emitted]
            if fresh:
                emitted.update(fresh)
                yield Chunk(schema, fresh)


class ProductOp(PhysicalOperator):
    """Nested-loops Cartesian product (the right input is materialized)."""

    name = "product"

    properties = PhysicalProperties(
        streaming=False, per_input_cost=1.0, per_output_cost=1.0, pairwise_factor=1.0
    )

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema.union(right.schema), (left, right))

    # contract: rows-ok (overlap fallback merges via Row; the disjoint fast path is tuple-only)
    def _produce_chunks(self) -> Iterator[Chunk]:
        left, right = self._children
        schema = self._schema
        left_schema, right_schema = left.schema, right.schema
        if not left_schema.is_disjoint(right_schema):
            # Overlapping inputs: fall back to value-checked row merging.
            right_rows = [row for chunk in right.chunks() for row in chunk.rows()]
            merged = (
                left_row.merge(right_row)
                for chunk in left.chunks()
                for left_row in chunk.rows()
                for right_row in right_rows
            )
            for batch in batched(merged, self.batch_size):
                yield Chunk.from_rows(schema, batch)
            return
        right_tuples = [
            values for chunk in right.chunks() for values in chunk.aligned(right_schema).tuples
        ]

        def combined() -> Iterator[tuple[Any, ...]]:
            for chunk in left.chunks():
                for left_values in chunk.aligned(left_schema).tuples:
                    for right_values in right_tuples:
                        yield left_values + right_values

        yield from chunked(combined(), schema, self.batch_size)
