"""Physical division algorithms (small and great divide)."""

from repro.physical.division.great_divide_ops import (
    GREAT_DIVIDE_ALGORITHMS,
    GreatDivisionOperator,
    GroupwiseSmallDivision,
    HashGreatDivision,
    NestedLoopsGreatDivision,
)
from repro.physical.division.small_divide_ops import (
    SMALL_DIVIDE_ALGORITHMS,
    AlgebraSimulationDivision,
    DivisionOperator,
    HashDivision,
    MergeCountDivision,
    MergeSortDivision,
    NestedLoopsDivision,
)

__all__ = [
    "DivisionOperator",
    "NestedLoopsDivision",
    "HashDivision",
    "MergeSortDivision",
    "MergeCountDivision",
    "AlgebraSimulationDivision",
    "SMALL_DIVIDE_ALGORITHMS",
    "GreatDivisionOperator",
    "NestedLoopsGreatDivision",
    "HashGreatDivision",
    "GroupwiseSmallDivision",
    "GREAT_DIVIDE_ALGORITHMS",
]
