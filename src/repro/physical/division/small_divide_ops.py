"""Physical algorithms for the small divide.

The paper motivates treating division as a first-class operator by pointing
at the algorithm repertoire of Graefe [14] and Graefe & Cole [16] and at the
complexity result of Leinders & Van den Bussche [25].  This module provides
that repertoire:

* :class:`NestedLoopsDivision` — the naive algorithm: for every quotient
  candidate scan its group and check containment;
* :class:`HashDivision` — Graefe's hash-division: one pass over the divisor
  to number its tuples, one pass over the dividend maintaining a bitmap per
  quotient candidate;
* :class:`MergeSortDivision` — merge-/sort-based division: sort the dividend
  by (quotient, divisor) attributes, sort the divisor, then merge each group
  against the divisor in one interleaved scan (merge-group division);
* :class:`MergeCountDivision` — the counting variant: a semi-join with the
  divisor followed by per-group counting (stream-aggregation style);
* :class:`AlgebraSimulationDivision` — Healy's expression
  ``π_A(r1) − π_A((π_A(r1) × r2) − r1)`` executed with the basic physical
  operators.  Its intermediate result ``π_A(r1) × r2`` is |π_A(r1)|·|r2|
  tuples — the quadratic blow-up the special-purpose algorithms avoid.

All algorithms pull their inputs in batches and extract the ``A`` (quotient)
and ``B`` (divisor) value tuples positionally out of the rows.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.division.schemas import DivisionSchemas
from repro.errors import ExecutionError
from repro.physical.base import PhysicalOperator, TupleProjector, batched
from repro.physical.basic import DifferenceOp, ProductOp, ProjectOp
from repro.relation.row import Row
from repro.relation.schema import Schema

__all__ = [
    "DivisionOperator",
    "NestedLoopsDivision",
    "HashDivision",
    "MergeSortDivision",
    "MergeCountDivision",
    "AlgebraSimulationDivision",
    "SMALL_DIVIDE_ALGORITHMS",
]


#: Sentinel distinct from every attribute value (None is a legal value).
_NO_CANDIDATE = object()


def _division_schemas(dividend: PhysicalOperator, divisor: PhysicalOperator) -> DivisionSchemas:
    divisor_schema = divisor.schema
    dividend_schema = dividend.schema
    if len(divisor_schema) == 0:
        raise ExecutionError("small divide: divisor schema must be nonempty")
    if not divisor_schema.is_subset(dividend_schema):
        raise ExecutionError(
            f"small divide: divisor attributes {divisor_schema.names!r} must appear in the "
            f"dividend schema {dividend_schema.names!r}"
        )
    quotient = dividend_schema.difference(divisor_schema)
    if len(quotient) == 0:
        raise ExecutionError("small divide: quotient schema must be nonempty")
    return DivisionSchemas(
        a=quotient,
        b=dividend_schema.intersection(divisor_schema),
        c=Schema(()),
        quotient=quotient,
    )


class DivisionOperator(PhysicalOperator):
    """Common base for all physical small-divide algorithms."""

    def __init__(self, dividend: PhysicalOperator, divisor: PhysicalOperator) -> None:
        schemas = _division_schemas(dividend, divisor)
        super().__init__(schemas.quotient, (dividend, divisor))
        self.schemas = schemas

    def _quotient_row(self, key: tuple[Any, ...]) -> Row:
        # self._schema is the interned quotient schema (= schemas.a order).
        return Row.from_schema(self._schema, key)

    def _projectors(self) -> tuple[TupleProjector, TupleProjector]:
        """(A-values, B-values) extractors for dividend/divisor rows."""
        return TupleProjector(self.schemas.a), TupleProjector(self.schemas.b)


class NestedLoopsDivision(DivisionOperator):
    """Naive division: check every candidate group against the whole divisor."""

    name = "nested_loops_division"

    def _produce_batches(self) -> Iterator[list[Row]]:
        dividend, divisor = self._children
        a_of, b_of = self._projectors()
        divisor_b = TupleProjector(self.schemas.b)
        divisor_values = {key for batch in divisor.batches() for key in divisor_b.keys(batch)}
        pairs: list[tuple[Any, Any]] = []
        for batch in dividend.batches():
            pairs.extend(zip(a_of.keys(batch), b_of.keys(batch)))
        candidates = {a for a, _ in pairs}

        def quotient() -> Iterator[Row]:
            for candidate in candidates:
                group = {b for a, b in pairs if a == candidate}
                if divisor_values <= group:
                    yield self._quotient_row(a_of.key_tuple(candidate))

        yield from batched(quotient(), self.batch_size)


class HashDivision(DivisionOperator):
    """Graefe's hash-division.

    The divisor is loaded into a hash table assigning each tuple an ordinal;
    the dividend is scanned once, maintaining one bit set per quotient
    candidate.  A candidate is output when its bit set is full.
    """

    name = "hash_division"

    def _produce_batches(self) -> Iterator[list[Row]]:
        dividend, divisor = self._children
        a_of, b_of = self._projectors()
        divisor_b = TupleProjector(self.schemas.b)
        divisor_index: dict[Any, int] = {}
        for batch in divisor.batches():
            for value in divisor_b.keys(batch):
                if value not in divisor_index:
                    divisor_index[value] = len(divisor_index)
        required = len(divisor_index)

        seen_bits: dict[Any, set[int]] = {}
        ordinal_of = divisor_index.get
        group_of = seen_bits.setdefault
        for batch in dividend.batches():
            for candidate, value in zip(a_of.keys(batch), b_of.keys(batch)):
                bits = group_of(candidate, set())
                ordinal = ordinal_of(value)
                if ordinal is not None:
                    bits.add(ordinal)

        quotient = (
            self._quotient_row(a_of.key_tuple(candidate))
            for candidate, bits in seen_bits.items()
            if len(bits) == required
        )
        yield from batched(quotient, self.batch_size)


class MergeSortDivision(DivisionOperator):
    """Merge-sort division: sort both inputs, merge each dividend group
    against the sorted divisor."""

    name = "merge_sort_division"

    def _produce_batches(self) -> Iterator[list[Row]]:
        dividend, divisor = self._children
        a_of, b_of = self._projectors()
        divisor_b = TupleProjector(self.schemas.b)
        divisor_sorted = sorted(
            {key for batch in divisor.batches() for key in divisor_b.keys(batch)}, key=repr
        )
        pairs: list[tuple[Any, Any]] = []
        for batch in dividend.batches():
            pairs.extend(zip(a_of.keys(batch), b_of.keys(batch)))
        pairs.sort(key=lambda pair: (repr(pair[0]), repr(pair[1])))

        def quotient() -> Iterator[Row]:
            # ``None`` is a valid attribute value, so use a distinct marker
            # for "no candidate seen yet".
            current: Any = _NO_CANDIDATE
            position = 0
            for candidate, value in pairs:
                if candidate != current:
                    if current is not _NO_CANDIDATE and position == len(divisor_sorted):
                        yield self._quotient_row(a_of.key_tuple(current))
                    current = candidate
                    position = 0
                if position < len(divisor_sorted) and value == divisor_sorted[position]:
                    position += 1
            if current is not _NO_CANDIDATE and position == len(divisor_sorted):
                yield self._quotient_row(a_of.key_tuple(current))

        yield from batched(quotient(), self.batch_size)


class MergeCountDivision(DivisionOperator):
    """Counting division: semi-join the dividend with the divisor, count the
    distinct divisor values per candidate and compare with |divisor|."""

    name = "merge_count_division"

    def _produce_batches(self) -> Iterator[list[Row]]:
        dividend, divisor = self._children
        a_of, b_of = self._projectors()
        divisor_b = TupleProjector(self.schemas.b)
        divisor_values = {key for batch in divisor.batches() for key in divisor_b.keys(batch)}
        required = len(divisor_values)
        counts: dict[Any, set[Any]] = {}
        all_candidates: set[Any] = set()
        matched_of = counts.setdefault
        for batch in dividend.batches():
            for candidate, value in zip(a_of.keys(batch), b_of.keys(batch)):
                all_candidates.add(candidate)
                if value in divisor_values:
                    matched_of(candidate, set()).add(value)
        if required == 0:
            quotient = (self._quotient_row(a_of.key_tuple(c)) for c in all_candidates)
        else:
            quotient = (
                self._quotient_row(a_of.key_tuple(candidate))
                for candidate, matched in counts.items()
                if len(matched) == required
            )
        yield from batched(quotient, self.batch_size)


class AlgebraSimulationDivision(DivisionOperator):
    """Division simulated by the basic algebra (Healy's Definition 2).

    Builds the physical plan
    ``Difference(Project_A(r1), Project_A(Difference(Product(Project_A(r1), r2), r1)))``
    and streams its result.  Exists to measure the quadratic intermediate
    result the paper (after [25]) argues is unavoidable without a
    first-class division operator; the inner operators' tuple counters are
    exposed through the plan statistics.
    """

    name = "algebra_simulation_division"

    def __init__(self, dividend: PhysicalOperator, divisor: PhysicalOperator) -> None:
        super().__init__(dividend, divisor)
        candidates = ProjectOp(dividend, self.schemas.a)
        # A second, independent projection of the dividend for the product
        # (re-scanning the same child keeps the counters honest).
        blow_up = ProductOp(ProjectOp(dividend, self.schemas.a), divisor)
        missing = ProjectOp(DifferenceOp(blow_up, dividend), self.schemas.a)
        self._plan = DifferenceOp(candidates, missing)
        # Expose the sub-plan in ``children`` so statistics include it.
        self._children = (self._plan,)

    def _produce_batches(self) -> Iterator[list[Row]]:
        return self._plan.batches()


#: Algorithm registry used by tests and by the Graefe-style comparison bench.
SMALL_DIVIDE_ALGORITHMS = {
    "nested_loops": NestedLoopsDivision,
    "hash": HashDivision,
    "merge_sort": MergeSortDivision,
    "merge_count": MergeCountDivision,
    "algebra_simulation": AlgebraSimulationDivision,
}
