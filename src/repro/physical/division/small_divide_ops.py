"""Physical algorithms for the small divide.

The paper motivates treating division as a first-class operator by pointing
at the algorithm repertoire of Graefe [14] and Graefe & Cole [16] and at the
complexity result of Leinders & Van den Bussche [25].  This module provides
that repertoire:

* :class:`NestedLoopsDivision` — the naive algorithm: for every quotient
  candidate scan all pairs and check containment;
* :class:`HashDivision` — Graefe's hash-division: one pass over the divisor
  to number its tuples, one pass over the dividend maintaining a bitmap per
  quotient candidate;
* :class:`MergeSortDivision` — merge-/sort-based division: encode, sort the
  dividend pairs, then merge each candidate run in one interleaved scan
  (merge-group division);
* :class:`MergeCountDivision` — the counting variant: a semi-join with the
  divisor followed by per-group counting (stream-aggregation style);
* :class:`AlgebraSimulationDivision` — Healy's expression
  ``π_A(r1) − π_A((π_A(r1) × r2) − r1)`` executed with the basic physical
  operators.  Its intermediate result ``π_A(r1) × r2`` is |π_A(r1)|·|r2|
  tuples — the quadratic blow-up the special-purpose algorithms avoid.

All algorithms pull their inputs as chunks, extract the ``A`` (quotient) and
``B`` (divisor) value tuples positionally, and run on **dictionary-encoded
bitsets**: the divisor values are mapped to single-bit masks (``b → 1 <<
ordinal``) once per operator open, quotient candidates to dense integer
ids, and the containment test per candidate becomes one ``int`` equality /
subset check instead of per-row set-of-tuples bookkeeping.
"""

from __future__ import annotations

from collections.abc import Iterator
from functools import reduce
from typing import Any

from repro.division.schemas import DivisionSchemas
from repro.errors import ExecutionError
from repro.physical.base import Chunk, PhysicalOperator, PhysicalProperties, TupleProjector, chunked
from repro.physical.basic import DifferenceOp, ProductOp, ProjectOp
from repro.physical.compile.kernels import active_kernel
from repro.relation.schema import Schema

__all__ = [
    "DivisionOperator",
    "NestedLoopsDivision",
    "HashDivision",
    "MergeSortDivision",
    "MergeCountDivision",
    "AlgebraSimulationDivision",
    "SMALL_DIVIDE_ALGORITHMS",
]


def _division_schemas(dividend: PhysicalOperator, divisor: PhysicalOperator) -> DivisionSchemas:
    divisor_schema = divisor.schema
    dividend_schema = dividend.schema
    if len(divisor_schema) == 0:
        raise ExecutionError("small divide: divisor schema must be nonempty")
    if not divisor_schema.is_subset(dividend_schema):
        raise ExecutionError(
            f"small divide: divisor attributes {divisor_schema.names!r} must appear in the "
            f"dividend schema {dividend_schema.names!r}"
        )
    quotient = dividend_schema.difference(divisor_schema)
    if len(quotient) == 0:
        raise ExecutionError("small divide: quotient schema must be nonempty")
    return DivisionSchemas(
        a=quotient,
        b=dividend_schema.intersection(divisor_schema),
        c=Schema(()),
        quotient=quotient,
    )


class DivisionOperator(PhysicalOperator):
    """Common base for all physical small-divide algorithms."""

    #: A quotient group is one A-value's B-set; partitioning the dividend
    #: on A keeps every group whole, so per-partition quotients union to
    #: the global quotient (the PartitionedDivision wrapper relies on it).
    key_disjoint_safe = True

    def __init__(self, dividend: PhysicalOperator, divisor: PhysicalOperator) -> None:
        schemas = _division_schemas(dividend, divisor)
        super().__init__(schemas.quotient, (dividend, divisor))
        self.schemas = schemas

    def _projectors(self) -> tuple[TupleProjector, TupleProjector]:
        """(A-values, B-values) extractors for dividend/divisor chunks."""
        return TupleProjector(self.schemas.a), TupleProjector(self.schemas.b)

    def _divisor_bits(self, divisor: PhysicalOperator) -> dict[Any, int]:
        """Dictionary-encode the divisor: ``b-key → single-bit mask``.

        Runs exactly once per operator open (not per probe); the bit
        positions are assigned in first-seen order, so ``len(bit_of)`` is
        the number of distinct divisor values and the all-ones mask
        ``(1 << len(bit_of)) - 1`` encodes "contains the whole divisor".
        """
        divisor_b = TupleProjector(self.schemas.b)
        bit_of: dict[Any, int] = {}
        for chunk in divisor.chunks():
            for key in divisor_b.keys_of(chunk):
                if key not in bit_of:
                    bit_of[key] = 1 << len(bit_of)
        return bit_of


class NestedLoopsDivision(DivisionOperator):
    """Naive division: check every candidate group against the whole divisor.

    Still quadratic (one full pair scan per candidate) — that is its point —
    but each containment check is a bitset subset test over dictionary
    codes, not a set-of-tuples comparison.
    """

    name = "nested_loops_division"

    #: No hash tables beyond the divisor dictionary, but one full pair scan
    #: per quotient candidate — the quadratic ``pairwise`` term.
    properties = PhysicalProperties(
        streaming=False,
        startup_cost=2.0,
        per_input_cost=1.0,
        per_output_cost=1.0,
        pairwise_factor=0.35,
        pairwise_operands=("candidates", "left"),
    )

    def _produce_chunks(self) -> Iterator[Chunk]:
        kernel = active_kernel()
        dividend, divisor = self._children
        a_of, b_of = self._projectors()
        bit_of = self._divisor_bits(divisor)
        full = (1 << len(bit_of)) - 1
        lookup = bit_of.get
        candidate_keys: list[Any] = []
        bits: list[int] = []
        for chunk in dividend.chunks():
            candidate_keys.extend(a_of.keys_of(chunk))
            bits.extend(lookup(value, 0) for value in b_of.keys_of(chunk))
        pairs = list(zip(candidate_keys, bits))
        candidates = list(dict.fromkeys(candidate_keys))

        # Deliberately quadratic: one full pair scan per candidate.  Only the
        # final full-mask scan goes through the kernel.
        or_ = int.__or__
        masks = [
            reduce(or_, [bit for pair_candidate, bit in pairs if pair_candidate == candidate], 0)
            for candidate in candidates
        ]
        key_tuple = a_of.key_tuple
        quotient = (key_tuple(candidates[i]) for i in kernel.full_matches(masks, full))
        yield from chunked(quotient, self._schema, self.batch_size)


class HashDivision(DivisionOperator):
    """Graefe's hash-division.

    The divisor is loaded into a hash table assigning each tuple a bit; the
    dividend is scanned once, maintaining one ``int`` bitmask per quotient
    candidate (candidates are dictionary-encoded to dense ids indexing a
    flat mask array).  A candidate is output when its bitmask is full.
    """

    name = "hash_division"

    #: Dictionary + candidate hash table builds, then one linear pass.
    properties = PhysicalProperties(
        streaming=False, startup_cost=24.0, per_input_cost=2.0, per_output_cost=1.0
    )

    def _produce_chunks(self) -> Iterator[Chunk]:
        kernel = active_kernel()
        dividend, divisor = self._children
        a_of, b_of = self._projectors()
        bit_of = self._divisor_bits(divisor)
        full = (1 << len(bit_of)) - 1
        lookup = bit_of.get

        # Dictionary-encode candidates to dense ids and gather the per-tuple
        # divisor bits; the OR-sweep and the full-mask scan run in the kernel.
        id_of: dict[Any, int] = {}
        candidate_ids: list[int] = []
        bits: list[int] = []
        get_id = id_of.get
        append_id = candidate_ids.append
        for chunk in dividend.chunks():
            for candidate in a_of.keys_of(chunk):
                candidate_id = get_id(candidate)
                if candidate_id is None:
                    id_of[candidate] = candidate_id = len(id_of)
                append_id(candidate_id)
            bits.extend(lookup(value, 0) for value in b_of.keys_of(chunk))
        masks = kernel.sweep_masks(len(id_of), candidate_ids, bits)
        candidates = list(id_of)

        key_tuple = a_of.key_tuple
        quotient = (key_tuple(candidates[i]) for i in kernel.full_matches(masks, full))
        yield from chunked(quotient, self._schema, self.batch_size)


class MergeSortDivision(DivisionOperator):
    """Merge-sort division over dictionary codes.

    Both inputs are dictionary-encoded to integers (candidates → dense ids,
    divisor values → bit masks), the dividend pairs are sorted by code —
    integer sort, no ``repr`` keys — and one interleaved merge scan
    accumulates each candidate run's bitmask against the divisor.

    With ``assume_clustered=True`` (set by the cost-based planner when the
    statistics show the dividend's scan order is already sorted on the
    quotient attributes) the sort — and the candidate dictionary — are
    skipped entirely: the merge scan streams the dividend, accumulating one
    bitmask per contiguous candidate run.  A run boundary writes the mask
    into a per-candidate dictionary, so the result stays correct even when
    the clustering assumption turns out to be wrong — only the performance
    degrades toward hash-division."""

    name = "merge_sort_division"

    #: The n·log2(n) sort is waived when the dividend arrives clustered on
    #: the quotient attributes, and the streaming merge also skips the
    #: candidate hash table (the per-input discount).
    properties = PhysicalProperties(
        streaming=False,
        startup_cost=16.0,
        per_input_cost=1.8,
        per_output_cost=1.0,
        sort_factor=0.25,
        clustered_input_discount=0.6,
    )

    def __init__(
        self,
        dividend: PhysicalOperator,
        divisor: PhysicalOperator,
        assume_clustered: bool = False,
    ) -> None:
        super().__init__(dividend, divisor)
        self.assume_clustered = assume_clustered

    def describe(self) -> str:
        return f"{self.name}(streaming)" if self.assume_clustered else self.name

    def _produce_chunks(self) -> Iterator[Chunk]:
        if self.assume_clustered:
            yield from self._produce_streaming()
            return
        kernel = active_kernel()
        dividend, divisor = self._children
        a_of, b_of = self._projectors()
        bit_of = self._divisor_bits(divisor)
        full = (1 << len(bit_of)) - 1
        lookup = bit_of.get

        id_of: dict[Any, int] = {}
        get_id = id_of.get
        encoded: list[tuple[int, int]] = []
        append_pair = encoded.append
        next_id = 0
        for chunk in dividend.chunks():
            for candidate, value in zip(a_of.keys_of(chunk), b_of.keys_of(chunk)):
                candidate_id = get_id(candidate)
                if candidate_id is None:
                    id_of[candidate] = candidate_id = next_id
                    next_id += 1
                bit = lookup(value)
                if bit is not None:
                    append_pair((candidate_id, bit))
        encoded.sort()
        candidates = list(id_of)
        key_tuple = a_of.key_tuple

        if full == 0:
            # Empty divisor: every candidate trivially contains it (no pair
            # carries a bit, so the merge scan below would see nothing).
            quotient = (key_tuple(candidate) for candidate in candidates)
            yield from chunked(quotient, self._schema, self.batch_size)
            return

        # Merge each sorted candidate run into one mask slot; candidates
        # without pairs keep mask 0 ≠ full.  The final scan is kernelized.
        masks = [0] * len(candidates)
        current = -1
        mask = 0
        for candidate_id, bit in encoded:
            if candidate_id != current:
                if current >= 0:
                    masks[current] = mask
                current = candidate_id
                mask = 0
            mask |= bit
        if current >= 0:
            masks[current] = mask

        quotient = (key_tuple(candidates[i]) for i in kernel.full_matches(masks, full))
        yield from chunked(quotient, self._schema, self.batch_size)

    def _produce_streaming(self) -> Iterator[Chunk]:
        """Merge-group scan over a (presumably) clustered dividend.

        One bitmask accumulates per contiguous candidate run; run boundaries
        OR the mask into ``mask_of`` keyed by the candidate, which both
        preserves first-seen emission order and absorbs non-contiguous runs
        (wrong clustering assumption) without changing the result.
        """
        kernel = active_kernel()
        dividend, divisor = self._children
        a_of, b_of = self._projectors()
        bit_of = self._divisor_bits(divisor)
        full = (1 << len(bit_of)) - 1
        lookup = bit_of.get
        mask_of: dict[Any, int] = {}
        get_mask = mask_of.get
        sentinel = object()
        current: Any = sentinel
        mask = 0
        for chunk in dividend.chunks():
            for candidate, value in zip(a_of.keys_of(chunk), b_of.keys_of(chunk)):
                if candidate != current:
                    if current is not sentinel:
                        mask_of[current] = get_mask(current, 0) | mask
                    current = candidate
                    mask = get_mask(candidate, 0)
                bit = lookup(value)
                if bit is not None:
                    mask |= bit
        if current is not sentinel:
            mask_of[current] = get_mask(current, 0) | mask

        key_tuple = a_of.key_tuple
        candidates = list(mask_of)
        masks = list(mask_of.values())
        quotient = (key_tuple(candidates[i]) for i in kernel.full_matches(masks, full))
        yield from chunked(quotient, self._schema, self.batch_size)


class MergeCountDivision(DivisionOperator):
    """Counting division: semi-join the dividend with the divisor, count the
    matched divisor values per candidate (``int.bit_count`` over the
    candidate's bitmask) and compare with |divisor|."""

    name = "merge_count_division"

    #: Same build structure as hash-division plus the per-candidate popcount.
    properties = PhysicalProperties(
        streaming=False, startup_cost=26.0, per_input_cost=2.0, per_output_cost=1.0
    )

    def _produce_chunks(self) -> Iterator[Chunk]:
        kernel = active_kernel()
        dividend, divisor = self._children
        a_of, b_of = self._projectors()
        bit_of = self._divisor_bits(divisor)
        required = len(bit_of)
        lookup = bit_of.get

        id_of: dict[Any, int] = {}
        candidate_ids: list[int] = []
        bits: list[int] = []
        get_id = id_of.get
        append_id = candidate_ids.append
        for chunk in dividend.chunks():
            for candidate in a_of.keys_of(chunk):
                candidate_id = get_id(candidate)
                if candidate_id is None:
                    id_of[candidate] = candidate_id = len(id_of)
                append_id(candidate_id)
            bits.extend(lookup(value, 0) for value in b_of.keys_of(chunk))
        masks = kernel.sweep_masks(len(id_of), candidate_ids, bits)
        candidates = list(id_of)

        key_tuple = a_of.key_tuple
        quotient = (key_tuple(candidates[i]) for i in kernel.popcount_matches(masks, required))
        yield from chunked(quotient, self._schema, self.batch_size)


class AlgebraSimulationDivision(DivisionOperator):
    """Division simulated by the basic algebra (Healy's Definition 2).

    Builds the physical plan
    ``Difference(Project_A(r1), Project_A(Difference(Product(Project_A(r1), r2), r1)))``
    and streams its result.  Exists to measure the quadratic intermediate
    result the paper (after [25]) argues is unavoidable without a
    first-class division operator; the inner operators' tuple counters are
    exposed through the plan statistics.
    """

    name = "algebra_simulation_division"

    #: The ``π_A(r1) × r2`` blow-up: |candidates| · |divisor| intermediate
    #: tuples, priced through the quadratic ``pairwise`` term.
    properties = PhysicalProperties(
        streaming=False,
        per_input_cost=2.0,
        per_output_cost=1.0,
        pairwise_factor=3.0,
        pairwise_operands=("candidates", "right"),
    )

    def __init__(self, dividend: PhysicalOperator, divisor: PhysicalOperator) -> None:
        super().__init__(dividend, divisor)
        candidates = ProjectOp(dividend, self.schemas.a)
        # A second, independent projection of the dividend for the product
        # (re-scanning the same child keeps the counters honest).
        blow_up = ProductOp(ProjectOp(dividend, self.schemas.a), divisor)
        missing = ProjectOp(DifferenceOp(blow_up, dividend), self.schemas.a)
        self._plan = DifferenceOp(candidates, missing)
        # Expose the sub-plan in ``children`` so statistics include it.
        self._children = (self._plan,)

    def _produce_chunks(self) -> Iterator[Chunk]:
        # No bitset loop of its own by design (the blow-up *is* the point);
        # consulting the seam keeps the dispatch uniform across all eight
        # algorithms and lets tests pin a kernel without special cases.
        self.kernel = active_kernel()
        return self._plan.chunks()


#: Algorithm registry used by tests and by the Graefe-style comparison bench.
SMALL_DIVIDE_ALGORITHMS = {
    "nested_loops": NestedLoopsDivision,
    "hash": HashDivision,
    "merge_sort": MergeSortDivision,
    "merge_count": MergeCountDivision,
    "algebra_simulation": AlgebraSimulationDivision,
}
