"""Physical algorithms for the small divide.

The paper motivates treating division as a first-class operator by pointing
at the algorithm repertoire of Graefe [14] and Graefe & Cole [16] and at the
complexity result of Leinders & Van den Bussche [25].  This module provides
that repertoire:

* :class:`NestedLoopsDivision` — the naive algorithm: for every quotient
  candidate scan its group and check containment;
* :class:`HashDivision` — Graefe's hash-division: one pass over the divisor
  to number its tuples, one pass over the dividend maintaining a bitmap per
  quotient candidate;
* :class:`MergeSortDivision` — merge-/sort-based division: sort the dividend
  by (quotient, divisor) attributes, sort the divisor, then merge each group
  against the divisor in one interleaved scan (merge-group division);
* :class:`MergeCountDivision` — the counting variant: a semi-join with the
  divisor followed by per-group counting (stream-aggregation style);
* :class:`AlgebraSimulationDivision` — Healy's expression
  ``π_A(r1) − π_A((π_A(r1) × r2) − r1)`` executed with the basic physical
  operators.  Its intermediate result ``π_A(r1) × r2`` is |π_A(r1)|·|r2|
  tuples — the quadratic blow-up the special-purpose algorithms avoid.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.division.schemas import DivisionSchemas
from repro.errors import ExecutionError
from repro.physical.base import PhysicalOperator
from repro.physical.basic import DifferenceOp, ProductOp, ProjectOp
from repro.relation.row import Row
from repro.relation.schema import Schema

__all__ = [
    "DivisionOperator",
    "NestedLoopsDivision",
    "HashDivision",
    "MergeSortDivision",
    "MergeCountDivision",
    "AlgebraSimulationDivision",
    "SMALL_DIVIDE_ALGORITHMS",
]


def _division_schemas(dividend: PhysicalOperator, divisor: PhysicalOperator) -> DivisionSchemas:
    divisor_schema = divisor.schema
    dividend_schema = dividend.schema
    if len(divisor_schema) == 0:
        raise ExecutionError("small divide: divisor schema must be nonempty")
    if not divisor_schema.is_subset(dividend_schema):
        raise ExecutionError(
            f"small divide: divisor attributes {divisor_schema.names!r} must appear in the "
            f"dividend schema {dividend_schema.names!r}"
        )
    quotient = dividend_schema.difference(divisor_schema)
    if len(quotient) == 0:
        raise ExecutionError("small divide: quotient schema must be nonempty")
    return DivisionSchemas(
        a=quotient,
        b=dividend_schema.intersection(divisor_schema),
        c=Schema(()),
        quotient=quotient,
    )


class DivisionOperator(PhysicalOperator):
    """Common base for all physical small-divide algorithms."""

    def __init__(self, dividend: PhysicalOperator, divisor: PhysicalOperator) -> None:
        schemas = _division_schemas(dividend, divisor)
        super().__init__(schemas.quotient, (dividend, divisor))
        self.schemas = schemas

    def _quotient_row(self, key: tuple[Any, ...]) -> Row:
        return Row(dict(zip(self.schemas.a.names, key)))


class NestedLoopsDivision(DivisionOperator):
    """Naive division: check every candidate group against the whole divisor."""

    name = "nested_loops_division"

    def _produce(self) -> Iterator[Row]:
        dividend, divisor = self._children
        divisor_values = {row.values_for(self.schemas.b) for row in divisor.rows()}
        dividend_rows = list(dividend.rows())
        candidates = {row.values_for(self.schemas.a) for row in dividend_rows}
        for candidate in candidates:
            group = {
                row.values_for(self.schemas.b)
                for row in dividend_rows
                if row.values_for(self.schemas.a) == candidate
            }
            if divisor_values <= group:
                yield self._quotient_row(candidate)


class HashDivision(DivisionOperator):
    """Graefe's hash-division.

    The divisor is loaded into a hash table assigning each tuple an ordinal;
    the dividend is scanned once, maintaining one bit set per quotient
    candidate.  A candidate is output when its bit set is full.
    """

    name = "hash_division"

    def _produce(self) -> Iterator[Row]:
        dividend, divisor = self._children
        divisor_index: dict[tuple[Any, ...], int] = {}
        for row in divisor.rows():
            value = row.values_for(self.schemas.b)
            if value not in divisor_index:
                divisor_index[value] = len(divisor_index)
        required = len(divisor_index)

        seen_bits: dict[tuple[Any, ...], set[int]] = {}
        for row in dividend.rows():
            candidate = row.values_for(self.schemas.a)
            bits = seen_bits.setdefault(candidate, set())
            ordinal = divisor_index.get(row.values_for(self.schemas.b))
            if ordinal is not None:
                bits.add(ordinal)
        for candidate, bits in seen_bits.items():
            if len(bits) == required:
                yield self._quotient_row(candidate)


class MergeSortDivision(DivisionOperator):
    """Merge-sort division: sort both inputs, merge each dividend group
    against the sorted divisor."""

    name = "merge_sort_division"

    def _produce(self) -> Iterator[Row]:
        dividend, divisor = self._children
        divisor_sorted = sorted(
            {row.values_for(self.schemas.b) for row in divisor.rows()}, key=repr
        )
        dividend_sorted = sorted(
            dividend.rows(),
            key=lambda row: (
                repr(row.values_for(self.schemas.a)),
                repr(row.values_for(self.schemas.b)),
            ),
        )

        current: tuple[Any, ...] | None = None
        position = 0
        for row in dividend_sorted:
            candidate = row.values_for(self.schemas.a)
            if candidate != current:
                if current is not None and position == len(divisor_sorted):
                    yield self._quotient_row(current)
                current = candidate
                position = 0
            if position < len(divisor_sorted) and row.values_for(self.schemas.b) == divisor_sorted[position]:
                position += 1
        if current is not None and position == len(divisor_sorted):
            yield self._quotient_row(current)


class MergeCountDivision(DivisionOperator):
    """Counting division: semi-join the dividend with the divisor, count the
    distinct divisor values per candidate and compare with |divisor|."""

    name = "merge_count_division"

    def _produce(self) -> Iterator[Row]:
        dividend, divisor = self._children
        divisor_values = {row.values_for(self.schemas.b) for row in divisor.rows()}
        required = len(divisor_values)
        counts: dict[tuple[Any, ...], set[tuple[Any, ...]]] = {}
        all_candidates: set[tuple[Any, ...]] = set()
        for row in dividend.rows():
            candidate = row.values_for(self.schemas.a)
            all_candidates.add(candidate)
            value = row.values_for(self.schemas.b)
            if value in divisor_values:
                counts.setdefault(candidate, set()).add(value)
        if required == 0:
            for candidate in all_candidates:
                yield self._quotient_row(candidate)
            return
        for candidate, matched in counts.items():
            if len(matched) == required:
                yield self._quotient_row(candidate)


class AlgebraSimulationDivision(DivisionOperator):
    """Division simulated by the basic algebra (Healy's Definition 2).

    Builds the physical plan
    ``Difference(Project_A(r1), Project_A(Difference(Product(Project_A(r1), r2), r1)))``
    and streams its result.  Exists to measure the quadratic intermediate
    result the paper (after [25]) argues is unavoidable without a
    first-class division operator; the inner operators' tuple counters are
    exposed through the plan statistics.
    """

    name = "algebra_simulation_division"

    def __init__(self, dividend: PhysicalOperator, divisor: PhysicalOperator) -> None:
        super().__init__(dividend, divisor)
        candidates = ProjectOp(dividend, self.schemas.a)
        # A second, independent projection of the dividend for the product
        # (re-scanning the same child keeps the counters honest).
        blow_up = ProductOp(ProjectOp(dividend, self.schemas.a), divisor)
        missing = ProjectOp(DifferenceOp(blow_up, dividend), self.schemas.a)
        self._plan = DifferenceOp(candidates, missing)
        # Expose the sub-plan in ``children`` so statistics include it.
        self._children = (self._plan,)

    def _produce(self) -> Iterator[Row]:
        return self._plan.rows()


#: Algorithm registry used by tests and by the Graefe-style comparison bench.
SMALL_DIVIDE_ALGORITHMS = {
    "nested_loops": NestedLoopsDivision,
    "hash": HashDivision,
    "merge_sort": MergeSortDivision,
    "merge_count": MergeCountDivision,
    "algebra_simulation": AlgebraSimulationDivision,
}
