"""Physical algorithms for the great divide (set containment division).

Three algorithms in the spirit of Rantzau et al. [36]:

* :class:`NestedLoopsGreatDivision` — materialize dividend and divisor
  groups, test every pair (quadratic in the number of groups but linear in
  the inputs);
* :class:`HashGreatDivision` — hash-division generalized to many divisor
  groups: each divisor tuple gets an ordinal within its group; one pass over
  the dividend maintains, per (candidate, group) pair *that is actually
  touched*, the set of matched ordinals;
* :class:`GroupwiseSmallDivision` — the strategy behind Definition 4: loop
  over the divisor groups and run an ordinary hash-division per group
  (pipelines well when the divisor has few groups).

All algorithms pull their inputs in batches and extract the ``A``
(candidate), ``B`` (shared) and ``C`` (group) value tuples positionally.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.errors import ExecutionError
from repro.physical.base import PhysicalOperator, TupleProjector, batched
from repro.relation.row import Row

__all__ = [
    "GreatDivisionOperator",
    "NestedLoopsGreatDivision",
    "HashGreatDivision",
    "GroupwiseSmallDivision",
    "GREAT_DIVIDE_ALGORITHMS",
]


class GreatDivisionOperator(PhysicalOperator):
    """Common base for the physical great-divide algorithms."""

    def __init__(self, dividend: PhysicalOperator, divisor: PhysicalOperator) -> None:
        shared = dividend.schema.intersection(divisor.schema)
        if len(shared) == 0:
            raise ExecutionError("great divide: dividend and divisor must share attributes")
        quotient_a = dividend.schema.difference(shared)
        if len(quotient_a) == 0:
            raise ExecutionError("great divide: the dividend needs attributes outside B")
        group_c = divisor.schema.difference(shared)
        super().__init__(quotient_a.union(group_c), (dividend, divisor))
        self.a = quotient_a
        self.b = shared
        self.c = group_c

    def _quotient_row(self, a_key: tuple[Any, ...], c_key: tuple[Any, ...]) -> Row:
        # self._schema is the interned A∪C schema (A names then C names).
        return Row.from_schema(self._schema, a_key + c_key)


class NestedLoopsGreatDivision(GreatDivisionOperator):
    """Materialize both group collections and test every pair."""

    name = "nested_loops_great_division"

    def _produce_batches(self) -> Iterator[list[Row]]:
        dividend, divisor = self._children
        a_of, b_of = TupleProjector(self.a), TupleProjector(self.b)
        c_of, divisor_b = TupleProjector(self.c), TupleProjector(self.b)
        dividend_groups: dict[Any, set[Any]] = {}
        for batch in dividend.batches():
            for a_key, b_key in zip(a_of.keys(batch), b_of.keys(batch)):
                dividend_groups.setdefault(a_key, set()).add(b_key)
        divisor_groups: dict[Any, set[Any]] = {}
        for batch in divisor.batches():
            for c_key, b_key in zip(c_of.keys(batch), divisor_b.keys(batch)):
                divisor_groups.setdefault(c_key, set()).add(b_key)
        quotient = (
            self._quotient_row(a_of.key_tuple(a_key), c_of.key_tuple(c_key))
            for c_key, needed in divisor_groups.items()
            for a_key, available in dividend_groups.items()
            if needed <= available
        )
        yield from batched(quotient, self.batch_size)


class HashGreatDivision(GreatDivisionOperator):
    """Hash-division generalized to many divisor groups.

    Builds an index ``b-value → [(group, ordinal)]`` over the divisor, then
    scans the dividend once; for every match it records the ordinal in a
    per-(candidate, group) bit set.  Pairs whose bit set reaches the group
    size are emitted.
    """

    name = "hash_great_division"

    def _produce_batches(self) -> Iterator[list[Row]]:
        dividend, divisor = self._children
        c_of, divisor_b = TupleProjector(self.c), TupleProjector(self.b)
        ordinal_index: dict[Any, list[tuple[Any, int]]] = {}
        group_sizes: dict[Any, int] = {}
        seen_divisor: set[tuple[Any, Any]] = set()
        for batch in divisor.batches():
            for c_value, b_value in zip(c_of.keys(batch), divisor_b.keys(batch)):
                if (c_value, b_value) in seen_divisor:
                    continue
                seen_divisor.add((c_value, b_value))
                ordinal = group_sizes.get(c_value, 0)
                group_sizes[c_value] = ordinal + 1
                ordinal_index.setdefault(b_value, []).append((c_value, ordinal))

        a_of, b_of = TupleProjector(self.a), TupleProjector(self.b)
        matched: dict[tuple[Any, Any], set[int]] = {}
        lookup = ordinal_index.get
        pair_bits = matched.setdefault
        for batch in dividend.batches():
            for a_value, b_value in zip(a_of.keys(batch), b_of.keys(batch)):
                hits = lookup(b_value)
                if not hits:
                    continue
                for c_value, ordinal in hits:
                    pair_bits((a_value, c_value), set()).add(ordinal)
        quotient = (
            self._quotient_row(a_of.key_tuple(a_value), c_of.key_tuple(c_value))
            for (a_value, c_value), bits in matched.items()
            if len(bits) == group_sizes[c_value]
        )
        yield from batched(quotient, self.batch_size)


class GroupwiseSmallDivision(GreatDivisionOperator):
    """Definition 4 as an execution strategy: one hash-division per divisor group."""

    name = "groupwise_small_division"

    def _produce_batches(self) -> Iterator[list[Row]]:
        dividend, divisor = self._children
        c_of, divisor_b = TupleProjector(self.c), TupleProjector(self.b)
        divisor_groups: dict[Any, set[Any]] = {}
        for batch in divisor.batches():
            for c_key, b_key in zip(c_of.keys(batch), divisor_b.keys(batch)):
                divisor_groups.setdefault(c_key, set()).add(b_key)

        a_of, b_of = TupleProjector(self.a), TupleProjector(self.b)
        pairs: list[tuple[Any, Any]] = []
        for batch in dividend.batches():
            pairs.extend(zip(a_of.keys(batch), b_of.keys(batch)))

        def quotient() -> Iterator[Row]:
            for c_key, needed in divisor_groups.items():
                # hash-division of the dividend by this group
                seen: dict[Any, set[Any]] = {}
                bucket_of = seen.setdefault
                for candidate, value in pairs:
                    bucket = bucket_of(candidate, set())
                    if value in needed:
                        bucket.add(value)
                for candidate, hits in seen.items():
                    if len(hits) == len(needed):
                        yield self._quotient_row(a_of.key_tuple(candidate), c_of.key_tuple(c_key))

        yield from batched(quotient(), self.batch_size)


#: Algorithm registry used by tests and benches.
GREAT_DIVIDE_ALGORITHMS = {
    "nested_loops": NestedLoopsGreatDivision,
    "hash": HashGreatDivision,
    "groupwise": GroupwiseSmallDivision,
}
