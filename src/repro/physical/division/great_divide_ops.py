"""Physical algorithms for the great divide (set containment division).

Three algorithms in the spirit of Rantzau et al. [36]:

* :class:`NestedLoopsGreatDivision` — materialize dividend and divisor
  groups as bitmasks over one shared divisor dictionary, then test every
  pair with an ``int`` subset check (quadratic in the number of groups but
  linear in the inputs);
* :class:`HashGreatDivision` — hash-division generalized to many divisor
  groups: each divisor tuple gets a bit within its group; one pass over the
  dividend maintains, per (candidate, group) pair *that is actually
  touched*, an ``int`` bitmask of matched bits;
* :class:`GroupwiseSmallDivision` — the strategy behind Definition 4: loop
  over the divisor groups and run an ordinary hash-division per group
  (pipelines well when the divisor has few groups).

All algorithms pull their inputs as chunks, extract the ``A`` (candidate),
``B`` (shared) and ``C`` (group) value tuples positionally, and
dictionary-encode every key side once per operator open: candidates and
groups become dense integer ids, divisor values become single-bit masks, so
the hot loops manipulate small ints instead of sets of value tuples.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.errors import ExecutionError
from repro.physical.base import Chunk, PhysicalOperator, PhysicalProperties, TupleProjector, chunked
from repro.physical.compile.kernels import active_kernel

__all__ = [
    "GreatDivisionOperator",
    "NestedLoopsGreatDivision",
    "HashGreatDivision",
    "GroupwiseSmallDivision",
    "GREAT_DIVIDE_ALGORITHMS",
]


def _great_division_schemas(dividend: PhysicalOperator, divisor: PhysicalOperator):
    """Validated ``(A, B, C)`` schemas of a great divide over two operators.

    Shared between :class:`GreatDivisionOperator` and the partition-parallel
    wrapper, so the two accept and reject exactly the same input shapes.
    """
    shared = dividend.schema.intersection(divisor.schema)
    if len(shared) == 0:
        raise ExecutionError("great divide: dividend and divisor must share attributes")
    quotient_a = dividend.schema.difference(shared)
    if len(quotient_a) == 0:
        raise ExecutionError("great divide: the dividend needs attributes outside B")
    group_c = divisor.schema.difference(shared)
    return quotient_a, shared, group_c


class GreatDivisionOperator(PhysicalOperator):
    """Common base for the physical great-divide algorithms."""

    #: Dividend groups are keyed by A; partitioning on A keeps each group
    #: (and its containment test against every divisor group) within one
    #: partition, so per-partition results union to the global result.
    key_disjoint_safe = True

    def __init__(self, dividend: PhysicalOperator, divisor: PhysicalOperator) -> None:
        quotient_a, shared, group_c = _great_division_schemas(dividend, divisor)
        super().__init__(quotient_a.union(group_c), (dividend, divisor))
        self.a = quotient_a
        self.b = shared
        self.c = group_c


class NestedLoopsGreatDivision(GreatDivisionOperator):
    """Materialize both group collections as bitmasks and test every pair.

    One shared dictionary assigns each distinct divisor ``B``-value a bit;
    dividend groups accumulate the bits of their values (values outside the
    divisor dictionary cannot influence containment and are dropped), and
    the pairwise test ``needed ⊆ available`` is one ``int`` AND/compare.
    """

    name = "nested_loops_great_division"

    #: Linear group-bitmask builds plus one subset test per
    #: (candidate group × divisor group) pair — the ``pairwise`` term.
    properties = PhysicalProperties(
        streaming=False,
        startup_cost=8.0,
        per_input_cost=1.2,
        per_output_cost=1.0,
        pairwise_factor=0.3,
        pairwise_operands=("candidates", "divisor_groups"),
    )

    def _produce_chunks(self) -> Iterator[Chunk]:
        kernel = active_kernel()
        dividend, divisor = self._children
        c_of, divisor_b = TupleProjector(self.c), TupleProjector(self.b)
        bit_of: dict[Any, int] = {}
        divisor_groups: dict[Any, int] = {}
        get_group = divisor_groups.get
        for chunk in divisor.chunks():
            for c_key, b_key in zip(c_of.keys_of(chunk), divisor_b.keys_of(chunk)):
                bit = bit_of.get(b_key)
                if bit is None:
                    bit_of[b_key] = bit = 1 << len(bit_of)
                divisor_groups[c_key] = get_group(c_key, 0) | bit

        a_of, b_of = TupleProjector(self.a), TupleProjector(self.b)
        lookup = bit_of.get
        dividend_groups: dict[Any, int] = {}
        get_candidate = dividend_groups.get
        for chunk in dividend.chunks():
            for a_key, b_key in zip(a_of.keys_of(chunk), b_of.keys_of(chunk)):
                bit = lookup(b_key)
                dividend_groups[a_key] = get_candidate(a_key, 0) | (bit or 0)

        a_tuple, c_tuple = a_of.key_tuple, c_of.key_tuple
        candidate_keys = list(dividend_groups)
        candidate_masks = kernel.prepare_masks(list(dividend_groups.values()))
        quotient = (
            a_tuple(candidate_keys[i]) + c_tuple(c_key)
            for c_key, needed in divisor_groups.items()
            for i in kernel.subset_matches(candidate_masks, needed)
        )
        yield from chunked(quotient, self._schema, self.batch_size)


class HashGreatDivision(GreatDivisionOperator):
    """Hash-division generalized to many divisor groups.

    Builds an index ``b-value → [(group id, bit)]`` over the divisor, then
    scans the dividend once; for every match it ORs the bit into a bitmask
    keyed by the packed integer ``candidate_id * num_groups + group_id``.
    Pairs whose bitmask reaches the group's full mask are emitted.
    """

    name = "hash_great_division"

    #: Per-(candidate, group) bitmask maintenance on every dividend match.
    properties = PhysicalProperties(
        streaming=False, startup_cost=32.0, per_input_cost=2.2, per_output_cost=1.0
    )

    def _produce_chunks(self) -> Iterator[Chunk]:
        kernel = active_kernel()
        dividend, divisor = self._children
        c_of, divisor_b = TupleProjector(self.c), TupleProjector(self.b)
        group_id_of: dict[Any, int] = {}
        group_keys: list[Any] = []
        group_sizes: list[int] = []
        hits_of: dict[Any, list[tuple[int, int]]] = {}
        seen_divisor: set[tuple[int, Any]] = set()
        for chunk in divisor.chunks():
            for c_key, b_key in zip(c_of.keys_of(chunk), divisor_b.keys_of(chunk)):
                group_id = group_id_of.get(c_key)
                if group_id is None:
                    group_id_of[c_key] = group_id = len(group_keys)
                    group_keys.append(c_key)
                    group_sizes.append(0)
                if (group_id, b_key) in seen_divisor:
                    continue
                seen_divisor.add((group_id, b_key))
                hits_of.setdefault(b_key, []).append((group_id, 1 << group_sizes[group_id]))
                group_sizes[group_id] += 1
        num_groups = len(group_keys)
        group_full = [(1 << size) - 1 for size in group_sizes]

        a_of, b_of = TupleProjector(self.a), TupleProjector(self.b)
        candidate_id_of: dict[Any, int] = {}
        candidate_keys: list[Any] = []
        masks: dict[int, int] = {}
        lookup = hits_of.get
        get_candidate = candidate_id_of.get
        get_mask = masks.get
        for chunk in dividend.chunks():
            for a_key, b_key in zip(a_of.keys_of(chunk), b_of.keys_of(chunk)):
                hits = lookup(b_key)
                if not hits:
                    continue
                candidate_id = get_candidate(a_key)
                if candidate_id is None:
                    candidate_id_of[a_key] = candidate_id = len(candidate_keys)
                    candidate_keys.append(a_key)
                base = candidate_id * num_groups
                for group_id, bit in hits:
                    code = base + group_id
                    masks[code] = get_mask(code, 0) | bit

        a_tuple, c_tuple = a_of.key_tuple, c_of.key_tuple
        codes = list(masks)
        mask_values = list(masks.values())
        fulls = [group_full[code % num_groups] for code in codes]
        quotient = (
            a_tuple(candidate_keys[codes[i] // num_groups])
            + c_tuple(group_keys[codes[i] % num_groups])
            for i in kernel.equal_matches(mask_values, fulls)
        )
        yield from chunked(quotient, self._schema, self.batch_size)


class GroupwiseSmallDivision(GreatDivisionOperator):
    """Definition 4 as an execution strategy: one hash-division per divisor group.

    The dividend is dictionary-encoded once — candidates and ``B``-values to
    dense ids — so each per-group pass is a flat sweep over integer pairs,
    ORing the group's per-value bits into one mask slot per candidate.
    """

    name = "groupwise_small_division"

    #: One flat sweep over the encoded dividend per divisor group — the
    #: ``pairwise`` term is divisor-groups × dividend tuples.
    properties = PhysicalProperties(
        streaming=False,
        startup_cost=8.0,
        per_input_cost=1.0,
        per_output_cost=1.0,
        pairwise_factor=0.6,
        pairwise_operands=("divisor_groups", "left"),
    )

    def _produce_chunks(self) -> Iterator[Chunk]:
        kernel = active_kernel()
        dividend, divisor = self._children
        c_of, divisor_b = TupleProjector(self.c), TupleProjector(self.b)
        divisor_groups: dict[Any, set[Any]] = {}
        for chunk in divisor.chunks():
            for c_key, b_key in zip(c_of.keys_of(chunk), divisor_b.keys_of(chunk)):
                divisor_groups.setdefault(c_key, set()).add(b_key)

        a_of, b_of = TupleProjector(self.a), TupleProjector(self.b)
        candidate_id_of: dict[Any, int] = {}
        candidate_keys: list[Any] = []
        value_id_of: dict[Any, int] = {}
        pair_candidates: list[int] = []
        pair_values: list[int] = []
        get_candidate = candidate_id_of.get
        get_value = value_id_of.get
        append_candidate = pair_candidates.append
        append_value = pair_values.append
        for chunk in dividend.chunks():
            for a_key, b_key in zip(a_of.keys_of(chunk), b_of.keys_of(chunk)):
                candidate_id = get_candidate(a_key)
                if candidate_id is None:
                    candidate_id_of[a_key] = candidate_id = len(candidate_keys)
                    candidate_keys.append(a_key)
                value_id = get_value(b_key)
                if value_id is None:
                    value_id_of[b_key] = value_id = len(value_id_of)
                append_candidate(candidate_id)
                append_value(value_id)
        num_values = len(value_id_of)
        # The encoded dividend is swept once per divisor group; convert the
        # index columns up front so the kernel reuses them across groups.
        prepared_candidates = kernel.prepare_indices(pair_candidates)
        prepared_values = kernel.prepare_indices(pair_values)

        a_tuple, c_tuple = a_of.key_tuple, c_of.key_tuple

        def quotient() -> Iterator[tuple[Any, ...]]:
            for c_key, needed in divisor_groups.items():
                # hash-division of the encoded dividend by this group: give
                # each needed value (that the dividend knows at all) a bit.
                bits = [0] * num_values
                for ordinal, b_key in enumerate(needed):
                    value_id = get_value(b_key)
                    if value_id is not None:
                        bits[value_id] = 1 << ordinal
                full = (1 << len(needed)) - 1
                masks = kernel.gather_sweep(
                    len(candidate_keys), prepared_candidates, prepared_values, bits
                )
                group_tuple = c_tuple(c_key)
                for candidate_id in kernel.full_matches(masks, full):
                    yield a_tuple(candidate_keys[candidate_id]) + group_tuple

        yield from chunked(quotient(), self._schema, self.batch_size)


#: Algorithm registry used by tests and benches.
GREAT_DIVIDE_ALGORITHMS = {
    "nested_loops": NestedLoopsGreatDivision,
    "hash": HashGreatDivision,
    "groupwise": GroupwiseSmallDivision,
}
