"""Physical algorithms for the great divide (set containment division).

Three algorithms in the spirit of Rantzau et al. [36]:

* :class:`NestedLoopsGreatDivision` — materialize dividend and divisor
  groups, test every pair (quadratic in the number of groups but linear in
  the inputs);
* :class:`HashGreatDivision` — hash-division generalized to many divisor
  groups: each divisor tuple gets an ordinal within its group; one pass over
  the dividend maintains, per (candidate, group) pair *that is actually
  touched*, the set of matched ordinals;
* :class:`GroupwiseSmallDivision` — the strategy behind Definition 4: loop
  over the divisor groups and run an ordinary hash-division per group
  (pipelines well when the divisor has few groups).
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.errors import ExecutionError
from repro.physical.base import PhysicalOperator
from repro.relation.row import Row

__all__ = [
    "GreatDivisionOperator",
    "NestedLoopsGreatDivision",
    "HashGreatDivision",
    "GroupwiseSmallDivision",
    "GREAT_DIVIDE_ALGORITHMS",
]


class GreatDivisionOperator(PhysicalOperator):
    """Common base for the physical great-divide algorithms."""

    def __init__(self, dividend: PhysicalOperator, divisor: PhysicalOperator) -> None:
        shared = dividend.schema.intersection(divisor.schema)
        if len(shared) == 0:
            raise ExecutionError("great divide: dividend and divisor must share attributes")
        quotient_a = dividend.schema.difference(shared)
        if len(quotient_a) == 0:
            raise ExecutionError("great divide: the dividend needs attributes outside B")
        group_c = divisor.schema.difference(shared)
        super().__init__(quotient_a.union(group_c), (dividend, divisor))
        self.a = quotient_a
        self.b = shared
        self.c = group_c

    def _quotient_row(self, a_key: tuple[Any, ...], c_key: tuple[Any, ...]) -> Row:
        values = dict(zip(self.a.names, a_key))
        values.update(zip(self.c.names, c_key))
        return Row(values)


class NestedLoopsGreatDivision(GreatDivisionOperator):
    """Materialize both group collections and test every pair."""

    name = "nested_loops_great_division"

    def _produce(self) -> Iterator[Row]:
        dividend, divisor = self._children
        dividend_groups: dict[tuple[Any, ...], set[tuple[Any, ...]]] = {}
        for row in dividend.rows():
            dividend_groups.setdefault(row.values_for(self.a), set()).add(row.values_for(self.b))
        divisor_groups: dict[tuple[Any, ...], set[tuple[Any, ...]]] = {}
        for row in divisor.rows():
            divisor_groups.setdefault(row.values_for(self.c), set()).add(row.values_for(self.b))
        for c_key, needed in divisor_groups.items():
            for a_key, available in dividend_groups.items():
                if needed <= available:
                    yield self._quotient_row(a_key, c_key)


class HashGreatDivision(GreatDivisionOperator):
    """Hash-division generalized to many divisor groups.

    Builds an index ``b-value → [(group, ordinal)]`` over the divisor, then
    scans the dividend once; for every match it records the ordinal in a
    per-(candidate, group) bit set.  Pairs whose bit set reaches the group
    size are emitted.
    """

    name = "hash_great_division"

    def _produce(self) -> Iterator[Row]:
        dividend, divisor = self._children
        ordinal_index: dict[tuple[Any, ...], list[tuple[tuple[Any, ...], int]]] = {}
        group_sizes: dict[tuple[Any, ...], int] = {}
        seen_divisor: set[tuple[tuple[Any, ...], tuple[Any, ...]]] = set()
        for row in divisor.rows():
            b_value = row.values_for(self.b)
            c_value = row.values_for(self.c)
            if (c_value, b_value) in seen_divisor:
                continue
            seen_divisor.add((c_value, b_value))
            ordinal = group_sizes.get(c_value, 0)
            group_sizes[c_value] = ordinal + 1
            ordinal_index.setdefault(b_value, []).append((c_value, ordinal))

        matched: dict[tuple[tuple[Any, ...], tuple[Any, ...]], set[int]] = {}
        for row in dividend.rows():
            a_value = row.values_for(self.a)
            for c_value, ordinal in ordinal_index.get(row.values_for(self.b), ()):
                matched.setdefault((a_value, c_value), set()).add(ordinal)
        for (a_value, c_value), bits in matched.items():
            if len(bits) == group_sizes[c_value]:
                yield self._quotient_row(a_value, c_value)


class GroupwiseSmallDivision(GreatDivisionOperator):
    """Definition 4 as an execution strategy: one hash-division per divisor group."""

    name = "groupwise_small_division"

    def _produce(self) -> Iterator[Row]:
        dividend, divisor = self._children
        divisor_groups: dict[tuple[Any, ...], set[tuple[Any, ...]]] = {}
        for row in divisor.rows():
            divisor_groups.setdefault(row.values_for(self.c), set()).add(row.values_for(self.b))

        dividend_rows = list(dividend.rows())
        for c_key, needed in divisor_groups.items():
            # hash-division of the dividend by this group
            seen: dict[tuple[Any, ...], set[tuple[Any, ...]]] = {}
            for row in dividend_rows:
                candidate = row.values_for(self.a)
                value = row.values_for(self.b)
                bucket = seen.setdefault(candidate, set())
                if value in needed:
                    bucket.add(value)
            for candidate, hits in seen.items():
                if len(hits) == len(needed):
                    yield self._quotient_row(candidate, c_key)


#: Algorithm registry used by tests and benches.
GREAT_DIVIDE_ALGORITHMS = {
    "nested_loops": NestedLoopsGreatDivision,
    "hash": HashGreatDivision,
    "groupwise": GroupwiseSmallDivision,
}
