"""Query compilation backend: fused pipeline segments + vectorized kernels.

``segments`` turns maximal ``Filter``/``ProjectOp``/``RenameOp`` chains of a
physical plan into single generated Python functions (textual codegen +
:func:`compile`), leaving division, joins, aggregation and exchanges as
pipeline breakers.  ``kernels`` provides the bitset-division kernel dispatch
seam shared by all eight division algorithms, with an optional numpy fast
path.  The interpreted operators remain the reference implementation.
"""

from repro.physical.compile.kernels import (
    BitsetKernel,
    KERNEL_NAMES,
    NumpyBitsetKernel,
    PythonBitsetKernel,
    active_kernel,
    available_kernels,
    numpy_available,
    set_kernel,
    use_kernel,
)
from repro.physical.compile.segments import (
    FUSABLE_OPERATORS,
    CompilationReport,
    CompiledSegment,
    clear_code_cache,
    code_cache_size,
    compile_plan,
)

__all__ = [
    "BitsetKernel",
    "KERNEL_NAMES",
    "NumpyBitsetKernel",
    "PythonBitsetKernel",
    "active_kernel",
    "available_kernels",
    "numpy_available",
    "set_kernel",
    "use_kernel",
    "FUSABLE_OPERATORS",
    "CompilationReport",
    "CompiledSegment",
    "clear_code_cache",
    "code_cache_size",
    "compile_plan",
]
