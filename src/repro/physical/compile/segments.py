"""Pipeline-segment compiler: fuse streaming operator chains into one loop.

The interpreter executes a plan as a stack of ``_produce_chunks()``
generators — every chunk crosses one Python generator frame per operator,
and ``Filter`` additionally materializes a :class:`Row` per tuple for the
predicate call.  This module removes that overhead for the *streaming*
operators: maximal chains of ``Filter`` / ``ProjectOp`` / ``RenameOp``
(anything that neither blocks nor reorders) are compiled into **one**
specialized Python function per chain via textual codegen + :func:`compile`.
Division, joins, aggregation, set operations and exchanges stay pipeline
breakers: they keep their interpreted implementations and simply pull the
compiled segment below them.

The generated function is a generator over the segment *input*'s chunks:

* predicates built from the AST (:class:`Comparison` over attribute refs
  and literals, ``And``/``Or``/``Not``) are inlined as positional tuple
  expressions (``t[2] == _b4``) — no ``Row`` objects, no per-tuple
  ``evaluate`` dispatch; opaque predicate callables keep the row-based
  call as a binding;
* projections are one cached :func:`operator.itemgetter` ``map`` plus the
  same first-seen duplicate elimination the interpreter uses;
* renames are free (positions do not change);
* every *interior* fused operator's ``tuples_out`` is bumped per chunk, so
  per-operator tuple counts — the paper's max-intermediate metric — are
  bit-identical to the interpreted pipeline.

Only literal values, schemas, getters and operator references differ
between structurally identical segments, and they all travel through the
``_bind`` tuple — the generated *source* is identical, so a module-level
``source → code object`` cache lets equal-shaped segments across plans
share one compiled code object (the analogue of the PR 2 fingerprint
cache, keyed by segment structure).

Compiled producers attach to the existing segment-root operator instances
(``root._compiled_producer``); the plan shape is untouched, and the
interpreted path remains available (``rows()`` and emptiness probes keep
using it, with identical row-at-a-time accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.algebra.predicates import (
    And,
    AttributeRef,
    Comparison,
    FalsePredicate,
    Literal,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.physical.base import Chunk, PhysicalOperator
from repro.physical.basic import Filter, ProjectOp, RenameOp
from repro.relation.row import Row
from repro.relation.schema import Schema

__all__ = [
    "FUSABLE_OPERATORS",
    "CompiledSegment",
    "CompilationReport",
    "compile_plan",
    "code_cache_size",
    "clear_code_cache",
]

#: Operators that fuse into streaming segments; everything else breaks the
#: pipeline (division, joins, aggregation, set operations, exchanges).
FUSABLE_OPERATORS = (Filter, ProjectOp, RenameOp)

#: Predicate AST operator → Python comparison source.
_COMPARISON_SOURCE = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

#: Module-wide ``source → code object`` cache (segment-structure keyed:
#: values are bindings, so equal-shaped segments emit identical source).
_CODE_CACHE: dict[str, Any] = {}


@dataclass(frozen=True)
class CompiledSegment:
    """One fused chain: its shape, generated source and cache provenance."""

    #: ``describe()`` of the segment root (the operator the producer runs as).
    root: str
    #: ``describe()`` of every fused operator, root first.
    operators: tuple[str, ...]
    #: The generated Python source of the segment function.
    source: str
    #: True when the code object came from the structure-keyed cache.
    shared: bool

    @property
    def fused_count(self) -> int:
        return len(self.operators)


@dataclass(frozen=True)
class CompilationReport:
    """What the compilation backend did to one prepared plan."""

    #: The normalized ``PlannerOptions.compile`` mode ("auto" or "on").
    mode: str
    #: One entry per compiled segment (empty when nothing fused).
    segments: tuple[CompiledSegment, ...] = ()

    @property
    def segment_count(self) -> int:
        return len(self.segments)

    def summary(self) -> str:
        """The one-line status ``explain()`` prints."""
        if not self.segments:
            return f"no (no fusable segments, mode={self.mode})"
        noun = "segment" if len(self.segments) == 1 else "segments"
        return f"yes · {len(self.segments)} {noun}"


class _SourceBuilder:
    """Accumulates the ``_bind`` tuple while the source is being written."""

    def __init__(self) -> None:
        self.bindings: list[Any] = []

    def bind(self, value: Any) -> str:
        name = f"_b{len(self.bindings)}"
        self.bindings.append(value)
        return name


# ----------------------------------------------------------------------
# predicate inlining
# ----------------------------------------------------------------------
def _term_source(term: Any, schema: Schema, builder: _SourceBuilder) -> Optional[str]:
    if isinstance(term, AttributeRef):
        try:
            return f"t[{schema.position(term.name)}]"
        except KeyError:
            return None
    if isinstance(term, Literal):
        return builder.bind(term.value)
    return None


def _predicate_source(
    predicate: Predicate, schema: Schema, builder: _SourceBuilder
) -> Optional[str]:
    """Positional tuple expression for an AST predicate (None = not inlinable)."""
    if isinstance(predicate, Comparison):
        operator = _COMPARISON_SOURCE.get(predicate.operator)
        left = _term_source(predicate.left, schema, builder)
        right = _term_source(predicate.right, schema, builder)
        if operator is None or left is None or right is None:
            return None
        return f"({left} {operator} {right})"
    if isinstance(predicate, And):
        parts = [_predicate_source(operand, schema, builder) for operand in predicate.operands]
        if any(part is None for part in parts):
            return None
        return "(" + " and ".join(parts) + ")"  # type: ignore[arg-type]
    if isinstance(predicate, Or):
        parts = [_predicate_source(operand, schema, builder) for operand in predicate.operands]
        if any(part is None for part in parts):
            return None
        return "(" + " or ".join(parts) + ")"  # type: ignore[arg-type]
    if isinstance(predicate, Not):
        inner = _predicate_source(predicate.operand, schema, builder)
        return None if inner is None else f"(not {inner})"
    if isinstance(predicate, TruePredicate):
        return "True"
    if isinstance(predicate, FalsePredicate):
        return "False"
    return None


# ----------------------------------------------------------------------
# segment discovery
# ----------------------------------------------------------------------
def _segment_roots(plan: PhysicalOperator) -> list[PhysicalOperator]:
    """Fusable operators whose parent does not fuse them (pre-order).

    Plans can share subtrees (the algebra-simulation division re-scans its
    dividend); an operator can be interior to one segment *and* the root of
    another — both producers then bump its counter exactly as often as the
    interpreter would have pulled it.
    """
    roots: list[PhysicalOperator] = []
    seen: set[int] = set()

    def visit(operator: PhysicalOperator, fused_by_parent: bool) -> None:
        fusable = isinstance(operator, FUSABLE_OPERATORS)
        if fusable and not fused_by_parent and id(operator) not in seen:
            seen.add(id(operator))
            roots.append(operator)
        for child in operator.children:
            visit(child, fusable)

    visit(plan, False)
    return roots


def _chain(root: PhysicalOperator) -> list[PhysicalOperator]:
    """The maximal fused chain under ``root``, bottom stage first."""
    stages = [root]
    while isinstance(stages[-1].children[0], FUSABLE_OPERATORS):
        stages.append(stages[-1].children[0])
    stages.reverse()
    return stages


# ----------------------------------------------------------------------
# codegen
# ----------------------------------------------------------------------
def _compile_segment(
    root: PhysicalOperator,
) -> Optional[tuple[Callable[[], Any], str, tuple[PhysicalOperator, ...], bool]]:
    """Producer closure + source for the chain rooted at ``root``.

    Returns ``None`` when the chain cannot be compiled safely (schema
    bookkeeping disagrees with the root's output schema); the interpreter
    then keeps running that chain.
    """
    stages = _chain(root)
    input_operator = stages[0].children[0]
    builder = _SourceBuilder()
    chunk_name = builder.bind(Chunk)
    entry_schema = input_operator.schema
    entry_name = builder.bind(entry_schema)
    current = entry_schema

    preamble: list[str] = []
    body: list[str] = []
    last = len(stages) - 1
    for position, stage in enumerate(stages):
        if isinstance(stage, Filter):
            expression = _predicate_source(stage.predicate, current, builder)
            if expression is None:
                # Opaque callable (or attribute outside the schema): keep
                # the interpreter's row-based call, still without the
                # per-operator generator frame.
                predicate_name = builder.bind(stage.predicate)
                row_name = builder.bind(Row.from_schema)
                schema_name = builder.bind(current)
                expression = f"{predicate_name}({row_name}({schema_name}, t))"
            body.append(f"        _t = [t for t in _t if {expression}]")
        elif isinstance(stage, ProjectOp):
            getter_name = builder.bind(current.tuple_getter(stage.schema.names))
            seen = f"_seen{position}"
            add = f"_add{position}"
            preamble.append(f"    {seen} = set()")
            preamble.append(f"    {add} = {seen}.add")
            body.append(
                f"        _t = [v for v in map({getter_name}, _t)"
                f" if not (v in {seen} or {add}(v))]"
            )
            current = stage.schema
        elif isinstance(stage, RenameOp):
            # Positions are unchanged; only the schema label moves.
            current = stage.schema
        else:  # pragma: no cover - FUSABLE_OPERATORS guards this
            return None
        if position != last:
            # Interior operators are bypassed at runtime; bump their
            # counters so tuple counts match the interpreted pipeline
            # (the root is counted by the ordinary chunks() wrapper).
            operator_name = builder.bind(stage)
            body.append(f"        {operator_name}.tuples_out += len(_t)")

    if current.names != root.schema.names:
        return None
    output_name = builder.bind(root.schema)

    lines = ["def _segment(_pull, _bind):"]
    unpack = ", ".join(f"_b{i}" for i in range(len(builder.bindings)))
    lines.append(f"    ({unpack},) = _bind")
    lines.extend(preamble)
    lines.append("    for _chunk in _pull():")
    lines.append(f"        _t = _chunk.aligned({entry_name}).tuples")
    lines.extend(body)
    lines.append("        if _t:")
    lines.append(f"            yield {chunk_name}({output_name}, _t)")
    source = "\n".join(lines)

    code = _CODE_CACHE.get(source)
    shared = code is not None
    if code is None:
        code = compile(source, "<repro-compiled-segment>", "exec")
        _CODE_CACHE[source] = code
    namespace: dict[str, Any] = {}
    exec(code, namespace)  # noqa: S102 - executing our own generated source
    function = namespace["_segment"]
    bindings = tuple(builder.bindings)
    pull = input_operator.chunks

    def producer() -> Any:
        return function(pull, bindings)

    return producer, source, tuple(stages), shared


def compile_plan(plan: PhysicalOperator, mode: str = "auto") -> CompilationReport:
    """Attach compiled producers to every fusable segment of ``plan``.

    The plan shape is untouched: producers hang off the existing segment
    roots and the interpreter remains the reference implementation for
    ``rows()`` / emptiness probes.  Idempotent — recompiling a plan simply
    replaces the producers (and hits the code cache).
    """
    segments: list[CompiledSegment] = []
    for root in _segment_roots(plan):
        compiled = _compile_segment(root)
        if compiled is None:
            continue
        producer, source, stages, shared = compiled
        root._compiled_producer = producer
        root._compiled_source = source
        root._compiled_fused = len(stages)
        segments.append(
            CompiledSegment(
                root=root.describe(),
                operators=tuple(stage.describe() for stage in reversed(stages)),
                source=source,
                shared=shared,
            )
        )
    return CompilationReport(mode=mode, segments=tuple(segments))


def code_cache_size() -> int:
    """Number of distinct segment structures compiled so far (diagnostics)."""
    return len(_CODE_CACHE)


def clear_code_cache() -> None:
    """Drop the structure-keyed code cache (tests only)."""
    _CODE_CACHE.clear()
