"""Vectorized kernels for the bitset-division inner loops.

All eight division algorithms funnel their hot loops through one dispatch
seam (:func:`active_kernel`): the *mask sweep* that ORs per-tuple divisor
bits into per-candidate bitmasks, and the *match scan* that finds the
candidates whose bitmask is full / a superset / has the required popcount.
Two implementations exist:

* :class:`PythonBitsetKernel` — the reference: plain loops over Python
  ``int`` bitmasks (arbitrary precision, always available);
* :class:`NumpyBitsetKernel` — batch operations over ``uint64`` arrays
  (``np.bitwise_or.at`` sweeps, vectorized compare/popcount scans), picked
  automatically when numpy is importable.  Any mask that does not fit in
  64 bits (or any conversion overflow) falls back to the Python reference
  *per call*, so results never depend on the kernel in use.

The partition-parallel wrappers run the unchanged serial operators inside
their workers, so the kernel dispatch applies per partition without any
further wiring.  Tests pin a kernel with :func:`use_kernel`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional, Sequence

from repro.errors import ExecutionError

try:  # pragma: no cover - exercised via both CI (absent) and local (present)
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "BitsetKernel",
    "PythonBitsetKernel",
    "NumpyBitsetKernel",
    "KERNEL_NAMES",
    "active_kernel",
    "available_kernels",
    "numpy_available",
    "set_kernel",
    "use_kernel",
]

#: Inputs smaller than this stay on the Python reference even under the
#: numpy kernel — the array conversion would cost more than it saves.
_MIN_VECTOR_SIZE = 32


class PythonBitsetKernel:
    """Reference implementation: loops over Python ``int`` bitmasks."""

    name = "python"

    # -- sweeps ---------------------------------------------------------
    def prepare_indices(self, indices: Sequence[int]) -> Any:
        """Pre-convert an index list reused across several sweeps."""
        return indices

    def prepare_masks(self, masks: Sequence[int]) -> Any:
        """Pre-convert a mask list reused across several match scans."""
        return masks

    def sweep_masks(self, count: int, indices: Sequence[int], bits: Sequence[int]) -> Any:
        """``masks[indices[i]] |= bits[i]`` over ``count`` zeroed masks."""
        masks = [0] * count
        for index, bit in zip(indices, bits):
            if bit:
                masks[index] |= bit
        return masks

    def gather_sweep(
        self,
        count: int,
        candidate_indices: Any,
        value_indices: Any,
        bits: Sequence[int],
    ) -> Any:
        """``masks[c] |= bits[v]`` for every ``(c, v)`` pair."""
        masks = [0] * count
        for candidate, value in zip(candidate_indices, value_indices):
            masks[candidate] |= bits[value]
        return masks

    # -- match scans ----------------------------------------------------
    def full_matches(self, masks: Any, full: int) -> list[int]:
        """Indices whose mask equals ``full``."""
        return [i for i, mask in enumerate(masks) if mask == full]

    def popcount_matches(self, masks: Any, required: int) -> list[int]:
        """Indices whose mask has exactly ``required`` bits set."""
        return [i for i, mask in enumerate(masks) if int(mask).bit_count() == required]

    def subset_matches(self, masks: Any, needed: int) -> list[int]:
        """Indices whose mask contains every bit of ``needed``."""
        return [i for i, mask in enumerate(masks) if needed & mask == needed]

    def equal_matches(self, masks: Any, fulls: Sequence[int]) -> list[int]:
        """Indices where ``masks[i] == fulls[i]`` (pairwise)."""
        return [i for i, (mask, full) in enumerate(zip(masks, fulls)) if mask == full]


class NumpyBitsetKernel(PythonBitsetKernel):
    """Batch kernel over ``uint64`` arrays; falls back per call on overflow.

    ``np.fromiter(..., dtype=np.uint64)`` raises :class:`OverflowError` for
    masks wider than 64 bits, which routes that call to the inherited
    Python reference — wide divisors stay correct, they just lose the
    vectorization.
    """

    name = "numpy"

    def _masks_array(self, masks: Any) -> Any:
        if isinstance(masks, _np.ndarray):
            return masks
        return _np.fromiter(masks, dtype=_np.uint64, count=len(masks))

    def prepare_indices(self, indices: Sequence[int]) -> Any:
        if len(indices) < _MIN_VECTOR_SIZE:
            return indices
        return _np.fromiter(indices, dtype=_np.intp, count=len(indices))

    def prepare_masks(self, masks: Sequence[int]) -> Any:
        if len(masks) < _MIN_VECTOR_SIZE:
            return masks
        try:
            return self._masks_array(masks)
        except (OverflowError, TypeError, ValueError):
            return masks

    def sweep_masks(self, count: int, indices: Sequence[int], bits: Sequence[int]) -> Any:
        if len(indices) < _MIN_VECTOR_SIZE:
            return super().sweep_masks(count, indices, bits)
        try:
            bit_array = _np.fromiter(bits, dtype=_np.uint64, count=len(bits))
            index_array = (
                indices
                if isinstance(indices, _np.ndarray)
                else _np.fromiter(indices, dtype=_np.intp, count=len(indices))
            )
            masks = _np.zeros(count, dtype=_np.uint64)
            _np.bitwise_or.at(masks, index_array, bit_array)
            return masks
        except (OverflowError, TypeError, ValueError):
            return super().sweep_masks(count, list(indices), bits)

    def gather_sweep(
        self,
        count: int,
        candidate_indices: Any,
        value_indices: Any,
        bits: Sequence[int],
    ) -> Any:
        if len(candidate_indices) < _MIN_VECTOR_SIZE:
            return super().gather_sweep(count, candidate_indices, value_indices, bits)
        try:
            bit_array = _np.fromiter(bits, dtype=_np.uint64, count=len(bits))
            candidates = (
                candidate_indices
                if isinstance(candidate_indices, _np.ndarray)
                else _np.fromiter(candidate_indices, dtype=_np.intp, count=len(candidate_indices))
            )
            values = (
                value_indices
                if isinstance(value_indices, _np.ndarray)
                else _np.fromiter(value_indices, dtype=_np.intp, count=len(value_indices))
            )
            masks = _np.zeros(count, dtype=_np.uint64)
            _np.bitwise_or.at(masks, candidates, bit_array[values])
            return masks
        except (OverflowError, TypeError, ValueError):
            return super().gather_sweep(count, candidate_indices, value_indices, bits)

    def full_matches(self, masks: Any, full: int) -> list[int]:
        if len(masks) < _MIN_VECTOR_SIZE and not isinstance(masks, _np.ndarray):
            return super().full_matches(masks, full)
        try:
            if full.bit_length() > 64:
                return super().full_matches(masks, full)
            return _np.flatnonzero(self._masks_array(masks) == full).tolist()
        except (OverflowError, TypeError, ValueError):
            return super().full_matches(masks, full)

    def popcount_matches(self, masks: Any, required: int) -> list[int]:
        if not hasattr(_np, "bitwise_count"):
            return super().popcount_matches(masks, required)
        if len(masks) < _MIN_VECTOR_SIZE and not isinstance(masks, _np.ndarray):
            return super().popcount_matches(masks, required)
        try:
            array = self._masks_array(masks)
            return _np.flatnonzero(_np.bitwise_count(array) == required).tolist()
        except (OverflowError, TypeError, ValueError):
            return super().popcount_matches(masks, required)

    def subset_matches(self, masks: Any, needed: int) -> list[int]:
        if len(masks) < _MIN_VECTOR_SIZE and not isinstance(masks, _np.ndarray):
            return super().subset_matches(masks, needed)
        try:
            if needed.bit_length() > 64:
                return super().subset_matches(masks, needed)
            array = self._masks_array(masks)
            return _np.flatnonzero((array & _np.uint64(needed)) == _np.uint64(needed)).tolist()
        except (OverflowError, TypeError, ValueError):
            return super().subset_matches(masks, needed)

    def equal_matches(self, masks: Any, fulls: Sequence[int]) -> list[int]:
        if len(masks) < _MIN_VECTOR_SIZE and not isinstance(masks, _np.ndarray):
            return super().equal_matches(masks, fulls)
        try:
            array = self._masks_array(masks)
            full_array = _np.fromiter(fulls, dtype=_np.uint64, count=len(fulls))
            return _np.flatnonzero(array == full_array).tolist()
        except (OverflowError, TypeError, ValueError):
            return super().equal_matches(masks, fulls)


#: Shared kernel instances (both are stateless).
_PYTHON_KERNEL = PythonBitsetKernel()
_NUMPY_KERNEL = NumpyBitsetKernel() if _np is not None else None

#: Valid kernel-selection names.
KERNEL_NAMES = ("auto", "python", "numpy")

BitsetKernel = PythonBitsetKernel

#: Process-wide override set by :func:`set_kernel` (None = auto).
_forced: Optional[str] = None


def numpy_available() -> bool:
    """True when the numpy fast path can be used in this process."""
    return _NUMPY_KERNEL is not None


def available_kernels() -> tuple[str, ...]:
    """The kernel names usable in this process."""
    return ("python", "numpy") if numpy_available() else ("python",)


def set_kernel(name: Optional[str]) -> None:
    """Force one bitset kernel process-wide (``None``/"auto" restores auto)."""
    global _forced
    if name is None or name == "auto":
        _forced = None
        return
    if name not in KERNEL_NAMES:
        raise ExecutionError(
            f"unknown bitset kernel {name!r}; choose from {sorted(KERNEL_NAMES)}"
        )
    if name == "numpy" and _NUMPY_KERNEL is None:
        raise ExecutionError("bitset kernel 'numpy' requested but numpy is not importable")
    _forced = name


def active_kernel() -> PythonBitsetKernel:
    """The kernel division operators should use for this execution.

    Consulted once per operator open, so :func:`use_kernel` affects any
    plan executed inside its scope.
    """
    name = _forced
    if name == "python":
        return _PYTHON_KERNEL
    if name == "numpy":
        return _NUMPY_KERNEL  # type: ignore[return-value]  (set_kernel validated)
    return _NUMPY_KERNEL if _NUMPY_KERNEL is not None else _PYTHON_KERNEL


@contextmanager
def use_kernel(name: Optional[str]) -> Iterator[None]:
    """Context manager pinning the bitset kernel (parity tests and benches)."""
    global _forced
    saved = _forced
    set_kernel(name)
    try:
        yield
    finally:
        _forced = saved
