"""Execution driver: run a physical plan and collect statistics.

The driver consumes the plan's chunk stream directly
(:meth:`~repro.physical.base.PhysicalOperator.execute` pulls
``_produce_chunks()`` through the counting ``chunks()`` wrapper); ``Row``
objects are materialized only inside the resulting
:class:`~repro.relation.relation.Relation`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import VerificationError
from repro.faults import registry as fault_registry
from repro.physical.base import PhysicalOperator, PlanStatistics, collect_statistics
from repro.relation.relation import Relation
from repro.relation.row import Row

__all__ = ["ExecutionResult", "execute_plan", "set_debug_verify"]

#: Process-wide debug switch: when True every execute_plan() call verifies
#: its plan first.  Seeded from the REPRO_VERIFY environment variable so
#: test runs and CI can switch the hook on without touching call sites.
_DEBUG_VERIFY = os.environ.get("REPRO_VERIFY", "").strip().lower() in {"1", "true", "on", "yes"}


def set_debug_verify(enabled: bool) -> bool:
    """Toggle the pre-execution verification hook; returns the old value."""
    global _DEBUG_VERIFY
    previous = _DEBUG_VERIFY
    _DEBUG_VERIFY = bool(enabled)
    return previous


def _verify_before_execution(plan: PhysicalOperator) -> None:
    # Imported lazily: the analysis package pulls in most of the physical
    # layer, and the hook is off on the production path.
    from repro.analysis.check import verify_plan

    report = verify_plan(plan)
    if not report.ok:
        raise VerificationError(
            "plan failed pre-execution verification:\n" + report.render(), report=report
        )


@dataclass(frozen=True)
class ExecutionResult:
    """The materialized result of a plan plus its runtime statistics."""

    relation: Relation
    statistics: PlanStatistics

    @property
    def max_intermediate(self) -> int:
        """Largest intermediate result produced while executing the plan."""
        return self.statistics.max_intermediate

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock seconds the plan execution took."""
        return self.statistics.elapsed_seconds

    def rows(self) -> Iterator[Row]:
        """Iterate over the rows of the (already materialized) result."""
        return iter(self.relation)

    def to_relation(self) -> Relation:
        """The result as a :class:`Relation` (convenience accessor)."""
        return self.relation

    def __len__(self) -> int:
        return len(self.relation)


def execute_plan(
    plan: PhysicalOperator,
    batch_size: Optional[int] = None,
    workers: Optional[int] = None,
    verify: Optional[bool] = None,
    memory_budget_mb: Optional[float] = None,
) -> ExecutionResult:
    """Execute ``plan`` from a cold start and return result + statistics.

    ``batch_size`` (when given) sets the chunk size for the whole plan
    before execution; ``workers`` (when given) retargets the degree of
    parallelism of any exchange operators in the plan;
    ``memory_budget_mb`` (when given) makes those exchanges spill buffered
    partitions to disk once they outgrow the budget.  The produced
    relation and per-operator tuple counts are independent of all three.

    ``verify=True`` (or the process-wide debug switch, ``REPRO_VERIFY=1``
    in the environment or :func:`set_debug_verify`) statically verifies the
    plan first and raises :class:`~repro.errors.VerificationError` on any
    severity-``error`` finding; ``verify=False`` skips the hook even when
    the debug switch is on.
    """
    if batch_size is not None:
        plan.set_batch_size(batch_size)
    if workers is not None:
        plan.set_workers(workers)
    if memory_budget_mb is not None:
        plan.set_memory_budget(memory_budget_mb)
    plan.reset_counters()
    plan.assign_labels()
    should_verify = _DEBUG_VERIFY if verify is None else verify
    if should_verify:
        _verify_before_execution(plan)
    faults_before = (
        fault_registry.injection_counters() if fault_registry.active_plan() else {}
    )
    start = time.perf_counter()
    relation = plan.execute()
    elapsed = time.perf_counter() - start
    statistics = collect_statistics(plan)
    statistics.elapsed_seconds = elapsed
    if fault_registry.active_plan():
        statistics.faults_injected = {
            point: count - faults_before.get(point, 0)
            for point, count in fault_registry.injection_counters().items()
            if count - faults_before.get(point, 0) > 0
        }
    return ExecutionResult(relation=relation, statistics=statistics)
