"""Execution driver: run a physical plan and collect statistics."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator

from repro.physical.base import PhysicalOperator, PlanStatistics, collect_statistics
from repro.relation.relation import Relation
from repro.relation.row import Row

__all__ = ["ExecutionResult", "execute_plan"]


@dataclass(frozen=True)
class ExecutionResult:
    """The materialized result of a plan plus its runtime statistics."""

    relation: Relation
    statistics: PlanStatistics

    @property
    def max_intermediate(self) -> int:
        """Largest intermediate result produced while executing the plan."""
        return self.statistics.max_intermediate

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock seconds the plan execution took."""
        return self.statistics.elapsed_seconds

    def rows(self) -> Iterator[Row]:
        """Iterate over the rows of the (already materialized) result."""
        return iter(self.relation)

    def to_relation(self) -> Relation:
        """The result as a :class:`Relation` (convenience accessor)."""
        return self.relation

    def __len__(self) -> int:
        return len(self.relation)


def execute_plan(plan: PhysicalOperator) -> ExecutionResult:
    """Execute ``plan`` from a cold start and return result + statistics."""
    plan.reset_counters()
    plan.assign_labels()
    start = time.perf_counter()
    relation = plan.execute()
    elapsed = time.perf_counter() - start
    statistics = collect_statistics(plan)
    statistics.elapsed_seconds = elapsed
    return ExecutionResult(relation=relation, statistics=statistics)
