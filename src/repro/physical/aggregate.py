"""Physical grouping/aggregation operator."""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from typing import Any

from repro.physical.base import PhysicalOperator
from repro.relation.aggregates import Aggregate
from repro.relation.row import Row
from repro.relation.schema import AttributeNames, Schema, as_schema

__all__ = ["HashAggregate"]


class HashAggregate(PhysicalOperator):
    """Hash-based grouping with the aggregate helpers of
    :mod:`repro.relation.aggregates` (``(label, fn)`` pairs keyed by output
    attribute)."""

    name = "hash_aggregate"

    def __init__(
        self,
        child: PhysicalOperator,
        grouping: AttributeNames,
        aggregations: Mapping[str, Aggregate],
    ) -> None:
        grouping_schema = child.schema.project(as_schema(grouping)) if len(as_schema(grouping)) else as_schema(grouping)
        schema = Schema(grouping_schema.names + tuple(aggregations.keys()))
        super().__init__(schema, (child,))
        self._grouping = grouping_schema
        self._aggregations = dict(aggregations)

    def _produce(self) -> Iterator[Row]:
        groups: dict[tuple[Any, ...], list[Row]] = {}
        for row in self._children[0].rows():
            groups.setdefault(row.values_for(self._grouping), []).append(row)
        if not groups and not len(self._grouping):
            groups[()] = []
        for key, members in groups.items():
            values: dict[str, Any] = dict(zip(self._grouping.names, key))
            for output, (_label, fn) in self._aggregations.items():
                values[output] = fn(members)
            yield Row(values)

    def describe(self) -> str:
        aggs = ", ".join(f"{label}→{out}" for out, (label, _fn) in self._aggregations.items())
        return f"HashAggregate[{', '.join(self._grouping.names)}; {aggs}]"
