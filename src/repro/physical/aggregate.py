"""Physical grouping/aggregation operator."""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import Any

from repro.physical.base import Chunk, PhysicalOperator, PhysicalProperties, TupleProjector, chunked
from repro.relation.aggregates import Aggregate
from repro.relation.row import Row
from repro.relation.schema import AttributeNames, Schema, as_schema

__all__ = ["HashAggregate"]


class HashAggregate(PhysicalOperator):
    """Hash-based grouping with the aggregate helpers of
    :mod:`repro.relation.aggregates` (``(label, fn)`` pairs keyed by output
    attribute).

    Group keys are extracted positionally out of chunks; group members are
    materialized as rows because the aggregate functions take rows (the
    public aggregate API).
    """

    name = "hash_aggregate"

    properties = PhysicalProperties(
        streaming=False, startup_cost=8.0, per_input_cost=2.0, per_output_cost=1.0
    )

    #: Groups are keyed by the grouping attributes; hash-partitioning the
    #: input on them keeps each group whole, so per-partition aggregates
    #: union to the global result (PartitionedAggregate relies on it).
    key_disjoint_safe = True

    def __init__(
        self,
        child: PhysicalOperator,
        grouping: AttributeNames,
        aggregations: Mapping[str, Aggregate],
    ) -> None:
        grouping_schema = child.schema.project(as_schema(grouping)) if len(as_schema(grouping)) else as_schema(grouping)
        schema = Schema(grouping_schema.names + tuple(aggregations.keys()))
        super().__init__(schema, (child,))
        self._grouping = grouping_schema
        self._aggregations = dict(aggregations)

    # contract: rows-ok (the public aggregate functions take row lists per group)
    def _produce_chunks(self) -> Iterator[Chunk]:
        key_of = TupleProjector(self._grouping)
        groups: dict[Any, list[Row]] = {}
        members_of = groups.setdefault
        for chunk in self._children[0].chunks():
            for key, row in zip(key_of.keys_of(chunk), chunk.rows()):
                members_of(key, []).append(row)
        if not groups and not len(self._grouping):
            groups[()] = []
        schema = self._schema
        key_tuple = key_of.key_tuple
        aggregate_fns = tuple(fn for (_label, fn) in self._aggregations.values())
        results = (
            key_tuple(key) + tuple(fn(members) for fn in aggregate_fns)
            for key, members in groups.items()
        )
        yield from chunked(results, schema, self.batch_size)

    def describe(self) -> str:
        aggs = ", ".join(f"{label}→{out}" for out, (label, _fn) in self._aggregations.items())
        return f"HashAggregate[{', '.join(self._grouping.names)}; {aggs}]"
