"""Physical join operators: nested-loops, hash join, semi-/anti-join, outer join."""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import Any

from repro.physical.base import PhysicalOperator
from repro.relation.relation import NULL
from repro.relation.row import Row
from repro.relation.schema import Schema

__all__ = [
    "NestedLoopsJoin",
    "HashJoin",
    "HashSemiJoin",
    "HashAntiJoin",
    "HashLeftOuterJoin",
]


class NestedLoopsJoin(PhysicalOperator):
    """Theta-join by nested loops over disjoint-schema inputs."""

    name = "nested_loops_join"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        predicate: Callable[[Row], bool],
    ) -> None:
        super().__init__(left.schema.union(right.schema), (left, right))
        self.predicate = predicate

    def _produce(self) -> Iterator[Row]:
        right_rows = list(self._children[1].rows())
        for left_row in self._children[0].rows():
            for right_row in right_rows:
                combined = left_row.merge(right_row)
                if self.predicate(combined):
                    yield combined


class _SharedKeyMixin:
    """Helpers for join operators keyed on the shared attributes."""

    @staticmethod
    def shared_schema(left: PhysicalOperator, right: PhysicalOperator) -> Schema:
        return left.schema.intersection(right.schema)

    @staticmethod
    def build_index(rows: Iterator[Row], key: Schema) -> dict[tuple[Any, ...], list[Row]]:
        index: dict[tuple[Any, ...], list[Row]] = {}
        for row in rows:
            index.setdefault(row.values_for(key), []).append(row)
        return index


class HashJoin(PhysicalOperator, _SharedKeyMixin):
    """Natural join: build a hash table on the right input, probe with the left."""

    name = "hash_join"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema.union(right.schema), (left, right))
        self._key = self.shared_schema(left, right)

    def _produce(self) -> Iterator[Row]:
        left, right = self._children
        if not len(self._key):
            # Degenerates to the Cartesian product.
            right_rows = list(right.rows())
            for left_row in left.rows():
                for right_row in right_rows:
                    yield left_row.merge(right_row)
            return
        index = self.build_index(right.rows(), self._key)
        emitted: set[Row] = set()
        for left_row in left.rows():
            for right_row in index.get(left_row.values_for(self._key), ()):
                combined = left_row.merge(right_row)
                if combined not in emitted:
                    emitted.add(combined)
                    yield combined

    def describe(self) -> str:
        return f"HashJoin[{', '.join(self._key.names)}]"


class HashSemiJoin(PhysicalOperator, _SharedKeyMixin):
    """Left semi-join with a hash set built on the right input."""

    name = "hash_semijoin"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema, (left, right))
        self._key = self.shared_schema(left, right)

    def _produce(self) -> Iterator[Row]:
        left, right = self._children
        if not len(self._key):
            has_right = any(True for _ in right.rows())
            if has_right:
                yield from left.rows()
            return
        keys = {row.values_for(self._key) for row in right.rows()}
        for row in left.rows():
            if row.values_for(self._key) in keys:
                yield row

    def describe(self) -> str:
        return f"HashSemiJoin[{', '.join(self._key.names)}]"


class HashAntiJoin(PhysicalOperator, _SharedKeyMixin):
    """Left anti-semi-join with a hash set built on the right input."""

    name = "hash_antijoin"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema, (left, right))
        self._key = self.shared_schema(left, right)

    def _produce(self) -> Iterator[Row]:
        left, right = self._children
        if not len(self._key):
            has_right = any(True for _ in right.rows())
            if not has_right:
                yield from left.rows()
            return
        keys = {row.values_for(self._key) for row in right.rows()}
        for row in left.rows():
            if row.values_for(self._key) not in keys:
                yield row


class HashLeftOuterJoin(PhysicalOperator, _SharedKeyMixin):
    """Left outer join padding unmatched left rows with NULL."""

    name = "hash_outer_join"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema.union(right.schema), (left, right))
        self._key = self.shared_schema(left, right)
        self._pad = right.schema.difference(left.schema)

    def _produce(self) -> Iterator[Row]:
        left, right = self._children
        index = self.build_index(right.rows(), self._key)
        emitted: set[Row] = set()
        for left_row in left.rows():
            partners = index.get(left_row.values_for(self._key), []) if len(self._key) else [
                row for rows in index.values() for row in rows
            ]
            if partners:
                for right_row in partners:
                    combined = left_row.merge(right_row)
                    if combined not in emitted:
                        emitted.add(combined)
                        yield combined
            else:
                yield left_row.with_values({name: NULL for name in self._pad})
