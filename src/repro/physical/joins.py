"""Physical join operators: nested-loops, hash join, semi-/anti-join, outer join.

The hash-based joins key their tables on value tuples picked positionally
out of chunks (via :class:`~repro.physical.base.TupleProjector`) and build
output tuples by concatenating aligned value tuples, so no per-tuple ``Row``
objects exist on the build or probe paths.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import Any

from repro.physical.base import (
    Chunk,
    PhysicalOperator,
    PhysicalProperties,
    TupleProjector,
    batched,
    chunked,
)
from repro.relation.relation import NULL
from repro.relation.row import Row
from repro.relation.schema import Schema

__all__ = [
    "NestedLoopsJoin",
    "HashJoin",
    "NestedLoopsNaturalJoin",
    "HashSemiJoin",
    "HashAntiJoin",
    "HashLeftOuterJoin",
    "JOIN_ALGORITHMS",
]


class NestedLoopsJoin(PhysicalOperator):
    """Theta-join by nested loops over disjoint-schema inputs.

    The theta predicate takes a merged :class:`Row`, so rows are
    materialized per pair — this operator exists for arbitrary predicates,
    not for speed.
    """

    name = "nested_loops_join"

    #: Rows are materialized and the predicate evaluated once per pair.
    properties = PhysicalProperties(
        streaming=False, per_input_cost=1.0, per_output_cost=1.0, pairwise_factor=2.0
    )

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        predicate: Callable[[Row], bool],
    ) -> None:
        super().__init__(left.schema.union(right.schema), (left, right))
        self.predicate = predicate

    # contract: rows-ok (the public theta-predicate API takes a merged Row per pair)
    def _produce_chunks(self) -> Iterator[Chunk]:
        left, right = self._children
        predicate = self.predicate
        schema = self._schema
        right_rows = [row for chunk in right.chunks() for row in chunk.rows()]

        def matches() -> Iterator[Row]:
            for chunk in left.chunks():
                for left_row in chunk.rows():
                    for right_row in right_rows:
                        combined = left_row.merge(right_row)
                        if predicate(combined):
                            yield combined

        for batch in batched(matches(), self.batch_size):
            yield Chunk.from_rows(schema, batch)


class _SharedKeyMixin:
    """Helpers for join operators keyed on the shared attributes."""

    @staticmethod
    def shared_schema(left: PhysicalOperator, right: PhysicalOperator) -> Schema:
        return left.schema.intersection(right.schema)


class HashJoin(PhysicalOperator, _SharedKeyMixin):
    """Natural join: build a hash table on the right input, probe with the left."""

    name = "hash_join"

    #: Hash-table build on the right input plus a probing pass on the left.
    properties = PhysicalProperties(startup_cost=16.0, per_input_cost=2.0, per_output_cost=1.0)

    #: Equi-join on the shared attributes: matching tuples agree on the
    #: join key, so hash-partitioning both inputs on (a subset of) it keeps
    #: every match within one partition.
    key_disjoint_safe = True

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema.union(right.schema), (left, right))
        self._key = self.shared_schema(left, right)

    def _produce_chunks(self) -> Iterator[Chunk]:
        left, right = self._children
        schema = self._schema
        left_schema = left.schema
        if not len(self._key):
            # Disjoint schemas: degenerates to the Cartesian product.
            right_schema = right.schema
            right_tuples = [
                values for chunk in right.chunks() for values in chunk.aligned(right_schema).tuples
            ]
            pairs = (
                left_values + right_values
                for chunk in left.chunks()
                for left_values in chunk.aligned(left_schema).tuples
                for right_values in right_tuples
            )
            yield from chunked(pairs, schema, self.batch_size)
            return
        extra = right.schema.difference(left_schema)
        right_key = TupleProjector(self._key)
        right_extra = TupleProjector(extra)
        left_key = TupleProjector(self._key)
        index: dict[Any, list[tuple[Any, ...]]] = {}
        for chunk in right.chunks():
            for key, extra_values in zip(right_key.keys_of(chunk), right_extra.tuples_of(chunk)):
                index.setdefault(key, []).append(extra_values)
        emitted: set[tuple[Any, ...]] = set()
        lookup = index.get

        def matches() -> Iterator[tuple[Any, ...]]:
            for chunk in left.chunks():
                aligned = chunk.aligned(left_schema)
                for left_values, key in zip(aligned.tuples, left_key.keys_of(aligned)):
                    partners = lookup(key)
                    if not partners:
                        continue
                    for extra_values in partners:
                        combined = left_values + extra_values
                        if combined not in emitted:
                            emitted.add(combined)
                            yield combined

        yield from chunked(matches(), schema, self.batch_size)

    def describe(self) -> str:
        return f"HashJoin[{', '.join(self._key.names)}]"


class NestedLoopsNaturalJoin(PhysicalOperator, _SharedKeyMixin):
    """Natural join by nested loops: no hash table, one key comparison per pair.

    Emits exactly the same tuple set (and therefore the same per-operator
    counts) as :class:`HashJoin`; it exists as the cost-based alternative
    for tiny inputs, where skipping the hash-table build beats the O(n·m)
    pair scan.
    """

    name = "nested_loops_natural_join"

    properties = PhysicalProperties(per_input_cost=1.0, per_output_cost=1.0, pairwise_factor=0.5)

    #: Same tuple set as :class:`HashJoin`, same key-partitioning argument.
    key_disjoint_safe = True

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema.union(right.schema), (left, right))
        self._key = self.shared_schema(left, right)

    def _produce_chunks(self) -> Iterator[Chunk]:
        left, right = self._children
        schema = self._schema
        left_schema = left.schema
        right_schema = right.schema
        right_key = TupleProjector(self._key) if len(self._key) else None
        right_extra = TupleProjector(right_schema.difference(left_schema))
        pairs: list[tuple[Any, tuple[Any, ...]]] = []
        for chunk in right.chunks():
            keys = right_key.keys_of(chunk) if right_key else [None] * len(chunk)
            pairs.extend(zip(keys, right_extra.tuples_of(chunk)))
        if right_key is None:
            # Disjoint schemas: degenerates to the Cartesian product.
            combined = (
                left_values + extra_values
                for chunk in left.chunks()
                for left_values in chunk.aligned(left_schema).tuples
                for _, extra_values in pairs
            )
            yield from chunked(combined, schema, self.batch_size)
            return
        left_key = TupleProjector(self._key)
        emitted: set[tuple[Any, ...]] = set()

        def matches() -> Iterator[tuple[Any, ...]]:
            for chunk in left.chunks():
                aligned = chunk.aligned(left_schema)
                for left_values, key in zip(aligned.tuples, left_key.keys_of(aligned)):
                    for right_key_value, extra_values in pairs:
                        if right_key_value != key:
                            continue
                        combined = left_values + extra_values
                        if combined not in emitted:
                            emitted.add(combined)
                            yield combined

        yield from chunked(matches(), schema, self.batch_size)

    def describe(self) -> str:
        return f"NestedLoopsNaturalJoin[{', '.join(self._key.names)}]"


class HashSemiJoin(PhysicalOperator, _SharedKeyMixin):
    """Left semi-join with a hash set built on the right input."""

    name = "hash_semijoin"

    properties = PhysicalProperties(startup_cost=8.0, per_input_cost=1.5, per_output_cost=0.0)

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema, (left, right))
        self._key = self.shared_schema(left, right)

    def _produce_chunks(self) -> Iterator[Chunk]:
        left, right = self._children
        if not len(self._key):
            if right.produces_any():
                yield from left.chunks()
            return
        right_key = TupleProjector(self._key)
        keys = {key for chunk in right.chunks() for key in right_key.keys_of(chunk)}
        left_key = TupleProjector(self._key)
        for chunk in left.chunks():
            matched = [
                values
                for values, key in zip(chunk.tuples, left_key.keys_of(chunk))
                if key in keys
            ]
            if matched:
                yield Chunk(chunk.schema, matched)

    def describe(self) -> str:
        return f"HashSemiJoin[{', '.join(self._key.names)}]"


class HashAntiJoin(PhysicalOperator, _SharedKeyMixin):
    """Left anti-semi-join with a hash set built on the right input."""

    name = "hash_antijoin"

    properties = PhysicalProperties(startup_cost=8.0, per_input_cost=1.5, per_output_cost=0.0)

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema, (left, right))
        self._key = self.shared_schema(left, right)

    def _produce_chunks(self) -> Iterator[Chunk]:
        left, right = self._children
        if not len(self._key):
            if not right.produces_any():
                yield from left.chunks()
            return
        right_key = TupleProjector(self._key)
        keys = {key for chunk in right.chunks() for key in right_key.keys_of(chunk)}
        left_key = TupleProjector(self._key)
        for chunk in left.chunks():
            dangling = [
                values
                for values, key in zip(chunk.tuples, left_key.keys_of(chunk))
                if key not in keys
            ]
            if dangling:
                yield Chunk(chunk.schema, dangling)


class HashLeftOuterJoin(PhysicalOperator, _SharedKeyMixin):
    """Left outer join padding unmatched left tuples with NULL."""

    name = "hash_outer_join"

    properties = PhysicalProperties(startup_cost=16.0, per_input_cost=2.0, per_output_cost=1.0)

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema.union(right.schema), (left, right))
        self._key = self.shared_schema(left, right)
        self._pad = right.schema.difference(left.schema)

    def _produce_chunks(self) -> Iterator[Chunk]:
        left, right = self._children
        schema = self._schema
        left_schema = left.schema
        # The output extras are exactly the right-only attributes (the pad
        # schema), both for matched tuples (partner values) and for dangling
        # tuples (NULL padding) — the shared attributes are already carried
        # by the aligned left tuple.
        right_key = TupleProjector(self._key)
        right_extra = TupleProjector(self._pad)
        index: dict[Any, list[tuple[Any, ...]]] = {}
        all_extras: list[tuple[Any, ...]] = []
        for chunk in right.chunks():
            for key, extra_values in zip(right_key.keys_of(chunk), right_extra.tuples_of(chunk)):
                index.setdefault(key, []).append(extra_values)
                all_extras.append(extra_values)
        left_key = TupleProjector(self._key)
        null_padding = (NULL,) * len(self._pad)
        keyed = bool(len(self._key))
        emitted: set[tuple[Any, ...]] = set()

        def joined() -> Iterator[tuple[Any, ...]]:
            for chunk in left.chunks():
                aligned = chunk.aligned(left_schema)
                for left_values, key in zip(aligned.tuples, left_key.keys_of(aligned)):
                    partners = index.get(key) if keyed else all_extras
                    if partners:
                        for extra_values in partners:
                            combined = left_values + extra_values
                            if combined not in emitted:
                                emitted.add(combined)
                                yield combined
                    else:
                        yield left_values + null_padding

        yield from chunked(joined(), schema, self.batch_size)


#: Natural-join algorithm registry used by the cost-based planner.
JOIN_ALGORITHMS = {
    "hash": HashJoin,
    "nested_loops": NestedLoopsNaturalJoin,
}
