"""Physical join operators: nested-loops, hash join, semi-/anti-join, outer join.

The hash-based joins key their tables on value tuples picked positionally
out of the rows (via :class:`~repro.physical.base.TupleProjector`) and build
output rows by concatenating aligned value tuples, so no per-row dicts are
rebuilt on the probe path.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import Any

from repro.physical.base import PhysicalOperator, TupleProjector, aligned_values, batched
from repro.relation.relation import NULL
from repro.relation.row import Row
from repro.relation.schema import Schema

__all__ = [
    "NestedLoopsJoin",
    "HashJoin",
    "HashSemiJoin",
    "HashAntiJoin",
    "HashLeftOuterJoin",
]


class NestedLoopsJoin(PhysicalOperator):
    """Theta-join by nested loops over disjoint-schema inputs."""

    name = "nested_loops_join"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        predicate: Callable[[Row], bool],
    ) -> None:
        super().__init__(left.schema.union(right.schema), (left, right))
        self.predicate = predicate

    def _produce_batches(self) -> Iterator[list[Row]]:
        left, right = self._children
        predicate = self.predicate
        right_rows = [row for batch in right.batches() for row in batch]

        def matches() -> Iterator[Row]:
            for batch in left.batches():
                for left_row in batch:
                    for right_row in right_rows:
                        combined = left_row.merge(right_row)
                        if predicate(combined):
                            yield combined

        yield from batched(matches(), self.batch_size)


class _SharedKeyMixin:
    """Helpers for join operators keyed on the shared attributes."""

    @staticmethod
    def shared_schema(left: PhysicalOperator, right: PhysicalOperator) -> Schema:
        return left.schema.intersection(right.schema)


class HashJoin(PhysicalOperator, _SharedKeyMixin):
    """Natural join: build a hash table on the right input, probe with the left."""

    name = "hash_join"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema.union(right.schema), (left, right))
        self._key = self.shared_schema(left, right)

    def _produce_batches(self) -> Iterator[list[Row]]:
        left, right = self._children
        if not len(self._key):
            # Degenerates to the Cartesian product.
            right_rows = [row for batch in right.batches() for row in batch]
            merged = (
                left_row.merge(right_row)
                for batch in left.batches()
                for left_row in batch
                for right_row in right_rows
            )
            yield from batched(merged, self.batch_size)
            return
        schema = self._schema
        from_schema = Row.from_schema
        left_schema = left.schema
        extra = right.schema.difference(left_schema)
        right_key = TupleProjector(self._key)
        right_extra = TupleProjector(extra)
        left_key = TupleProjector(self._key)
        index: dict[Any, list[tuple[Any, ...]]] = {}
        for batch in right.batches():
            for key, extra_values in zip(right_key.keys(batch), right_extra.tuples(batch)):
                index.setdefault(key, []).append(extra_values)
        emitted: set[tuple[Any, ...]] = set()
        lookup = index.get

        def matches() -> Iterator[Row]:
            for batch in left.batches():
                for left_row, key in zip(batch, left_key.keys(batch)):
                    partners = lookup(key)
                    if not partners:
                        continue
                    left_values = aligned_values(left_row, left_schema)
                    for extra_values in partners:
                        combined = left_values + extra_values
                        if combined not in emitted:
                            emitted.add(combined)
                            yield from_schema(schema, combined)

        yield from batched(matches(), self.batch_size)

    def describe(self) -> str:
        return f"HashJoin[{', '.join(self._key.names)}]"


class HashSemiJoin(PhysicalOperator, _SharedKeyMixin):
    """Left semi-join with a hash set built on the right input."""

    name = "hash_semijoin"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema, (left, right))
        self._key = self.shared_schema(left, right)

    def _produce_batches(self) -> Iterator[list[Row]]:
        left, right = self._children
        if not len(self._key):
            if right.produces_any():
                yield from left.batches()
            return
        right_key = TupleProjector(self._key)
        keys = {key for batch in right.batches() for key in right_key.keys(batch)}
        left_key = TupleProjector(self._key)
        for batch in left.batches():
            matched = [row for row, key in zip(batch, left_key.keys(batch)) if key in keys]
            if matched:
                yield matched

    def describe(self) -> str:
        return f"HashSemiJoin[{', '.join(self._key.names)}]"


class HashAntiJoin(PhysicalOperator, _SharedKeyMixin):
    """Left anti-semi-join with a hash set built on the right input."""

    name = "hash_antijoin"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema, (left, right))
        self._key = self.shared_schema(left, right)

    def _produce_batches(self) -> Iterator[list[Row]]:
        left, right = self._children
        if not len(self._key):
            if not right.produces_any():
                yield from left.batches()
            return
        right_key = TupleProjector(self._key)
        keys = {key for batch in right.batches() for key in right_key.keys(batch)}
        left_key = TupleProjector(self._key)
        for batch in left.batches():
            dangling = [row for row, key in zip(batch, left_key.keys(batch)) if key not in keys]
            if dangling:
                yield dangling


class HashLeftOuterJoin(PhysicalOperator, _SharedKeyMixin):
    """Left outer join padding unmatched left rows with NULL."""

    name = "hash_outer_join"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__(left.schema.union(right.schema), (left, right))
        self._key = self.shared_schema(left, right)
        self._pad = right.schema.difference(left.schema)

    def _produce_batches(self) -> Iterator[list[Row]]:
        left, right = self._children
        schema = self._schema
        from_schema = Row.from_schema
        left_schema = left.schema
        # The output extras are exactly the right-only attributes (the pad
        # schema), both for matched rows (partner values) and for dangling
        # rows (NULL padding) — the shared attributes are already carried by
        # the aligned left tuple.
        right_key = TupleProjector(self._key)
        right_extra = TupleProjector(self._pad)
        index: dict[Any, list[tuple[Any, ...]]] = {}
        all_extras: list[tuple[Any, ...]] = []
        for batch in right.batches():
            for key, extra_values in zip(right_key.keys(batch), right_extra.tuples(batch)):
                index.setdefault(key, []).append(extra_values)
                all_extras.append(extra_values)
        left_key = TupleProjector(self._key)
        null_padding = (NULL,) * len(self._pad)
        keyed = bool(len(self._key))
        emitted: set[tuple[Any, ...]] = set()

        def joined() -> Iterator[Row]:
            for batch in left.batches():
                for left_row, key in zip(batch, left_key.keys(batch)):
                    partners = index.get(key) if keyed else all_extras
                    left_values = aligned_values(left_row, left_schema)
                    if partners:
                        for extra_values in partners:
                            combined = left_values + extra_values
                            if combined not in emitted:
                                emitted.add(combined)
                                yield from_schema(schema, combined)
                    else:
                        yield from_schema(schema, left_values + null_padding)

        yield from batched(joined(), self.batch_size)
