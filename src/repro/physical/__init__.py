"""Volcano-style physical operators and the execution driver."""

from repro.physical import division
from repro.physical.aggregate import HashAggregate
from repro.physical.base import (
    DEFAULT_BATCH_SIZE,
    Chunk,
    PhysicalOperator,
    PhysicalProperties,
    PlanStatistics,
    TupleProjector,
    collect_statistics,
)
from repro.physical.basic import (
    DifferenceOp,
    DuplicateElimination,
    Filter,
    IntersectOp,
    ProductOp,
    ProjectOp,
    RenameOp,
    UnionOp,
)
from repro.physical.division import (
    GREAT_DIVIDE_ALGORITHMS,
    SMALL_DIVIDE_ALGORITHMS,
    AlgebraSimulationDivision,
    GroupwiseSmallDivision,
    HashDivision,
    HashGreatDivision,
    MergeCountDivision,
    MergeSortDivision,
    NestedLoopsDivision,
    NestedLoopsGreatDivision,
)
from repro.physical.executor import ExecutionResult, execute_plan, set_debug_verify
from repro.physical.parallel import (
    HashPartitionExchange,
    PartitionedAggregate,
    PartitionedDivision,
    PartitionedHashJoin,
    PartitionedOperator,
    PartitionSource,
)
from repro.physical.joins import (
    JOIN_ALGORITHMS,
    HashAntiJoin,
    HashJoin,
    HashLeftOuterJoin,
    HashSemiJoin,
    NestedLoopsJoin,
    NestedLoopsNaturalJoin,
)
from repro.physical.compile import (
    CompilationReport,
    CompiledSegment,
    active_kernel,
    available_kernels,
    compile_plan,
    numpy_available,
    set_kernel,
    use_kernel,
)
from repro.physical.scans import RelationScan, TableScan
from repro.physical.view_ops import CounterTableScan

__all__ = [
    "division",
    "DEFAULT_BATCH_SIZE",
    "Chunk",
    "PhysicalOperator",
    "PhysicalProperties",
    "PlanStatistics",
    "TupleProjector",
    "collect_statistics",
    "ExecutionResult",
    "execute_plan",
    "set_debug_verify",
    # leaves
    "RelationScan",
    "TableScan",
    "CounterTableScan",
    # basic
    "Filter",
    "ProjectOp",
    "RenameOp",
    "DuplicateElimination",
    "UnionOp",
    "IntersectOp",
    "DifferenceOp",
    "ProductOp",
    # joins
    "NestedLoopsJoin",
    "HashJoin",
    "NestedLoopsNaturalJoin",
    "JOIN_ALGORITHMS",
    "HashSemiJoin",
    "HashAntiJoin",
    "HashLeftOuterJoin",
    # aggregation
    "HashAggregate",
    # partition-parallel exchange
    "HashPartitionExchange",
    "PartitionSource",
    "PartitionedOperator",
    "PartitionedDivision",
    "PartitionedHashJoin",
    "PartitionedAggregate",
    # division
    "NestedLoopsDivision",
    "HashDivision",
    "MergeSortDivision",
    "MergeCountDivision",
    "AlgebraSimulationDivision",
    "SMALL_DIVIDE_ALGORITHMS",
    "NestedLoopsGreatDivision",
    "HashGreatDivision",
    "GroupwiseSmallDivision",
    "GREAT_DIVIDE_ALGORITHMS",
    # compilation backend
    "CompilationReport",
    "CompiledSegment",
    "compile_plan",
    "active_kernel",
    "available_kernels",
    "numpy_available",
    "set_kernel",
    "use_kernel",
]
