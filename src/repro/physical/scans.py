"""Leaf physical operators: table scans and literal relations."""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.errors import ExecutionError
from repro.physical.base import PhysicalOperator, batched
from repro.relation.relation import Relation
from repro.relation.row import Row

__all__ = ["TableScan", "RelationScan"]


class RelationScan(PhysicalOperator):
    """Scan of an in-memory relation value."""

    name = "relation_scan"

    def __init__(self, relation: Relation, label: str = "relation") -> None:
        super().__init__(relation.schema)
        self.relation = relation
        self._label = label

    def _produce_batches(self) -> Iterator[list[Row]]:
        return batched(self.relation, self.batch_size)

    def describe(self) -> str:
        return f"RelationScan({self._label}, {len(self.relation)} rows)"


class TableScan(PhysicalOperator):
    """Scan of a named table resolved from a database at construction time."""

    name = "table_scan"

    def __init__(self, database: Mapping[str, Relation], table: str) -> None:
        if table not in database:
            raise ExecutionError(f"unknown table {table!r}")
        relation = database[table]
        super().__init__(relation.schema)
        self.table = table
        self.relation = relation

    def _produce_batches(self) -> Iterator[list[Row]]:
        return batched(self.relation, self.batch_size)

    def describe(self) -> str:
        return f"TableScan({self.table}, {len(self.relation)} rows)"
