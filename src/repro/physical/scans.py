"""Leaf physical operators: table scans and literal relations.

Scans are the chunk producers at the bottom of every plan: they slice the
relation's cached aligned-tuple block (see
:meth:`~repro.relation.relation.Relation.aligned_tuples`) into
:class:`~repro.physical.base.Chunk` objects — no per-tuple work at all
beyond the list slice.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.errors import ExecutionError
from repro.physical.base import Chunk, PhysicalOperator, PhysicalProperties
from repro.relation.relation import Relation

__all__ = ["TableScan", "RelationScan"]


class _ScanBase(PhysicalOperator):
    """Shared chunk producer for leaf scans over an in-memory relation."""

    #: Pure list slicing over the cached tuple block; delivers the
    #: relation's physical scan order unchanged (clustered layouts survive).
    properties = PhysicalProperties(per_input_cost=0.0, per_output_cost=0.5, preserves_order=True)

    relation: Relation

    def _produce_chunks(self) -> Iterator[Chunk]:
        schema = self._schema
        tuples = self.relation.aligned_tuples()
        size = self.batch_size
        for start in range(0, len(tuples), size):
            yield Chunk(schema, tuples[start : start + size])


class RelationScan(_ScanBase):
    """Scan of an in-memory relation value."""

    name = "relation_scan"

    def __init__(self, relation: Relation, label: str = "relation") -> None:
        super().__init__(relation.schema)
        self.relation = relation
        self._label = label

    def describe(self) -> str:
        return f"RelationScan({self._label}, {len(self.relation)} rows)"


class TableScan(_ScanBase):
    """Scan of a named table resolved from a database at construction time."""

    name = "table_scan"

    def __init__(self, database: Mapping[str, Relation], table: str) -> None:
        if table not in database:
            raise ExecutionError(f"unknown table {table!r}")
        relation = database[table]
        super().__init__(relation.schema)
        self.table = table
        self.relation = relation

    def describe(self) -> str:
        return f"TableScan({self.table}, {len(self.relation)} rows)"
