"""Experiment harness: figure regeneration and the Section 4 queries."""

from repro.experiments.figures import FigureReproduction, all_figures
from repro.experiments.queries import (
    Q1,
    Q2,
    Q2_NOT_EXISTS,
    Q3,
    QueryExperiment,
    q1_equals_q3,
    run_query,
)

__all__ = [
    "FigureReproduction",
    "all_figures",
    "Q1",
    "Q2",
    "Q3",
    "Q2_NOT_EXISTS",
    "QueryExperiment",
    "run_query",
    "q1_equals_q3",
]
