"""Verification of the paper's qualitative efficiency claims.

The paper attaches an informal efficiency argument to most laws ("this can
save a lot of resources", "this allows to parallelize", "no join between
r1* and r1** is required", …) and rests its main motivation on the
complexity result that simulating division through the basic algebra forces
quadratic intermediate results.  These claims are *qualitative*; this module
turns each of them into a deterministic measurement on synthetic workloads
using the physical engine's tuple counters (wall-clock timings live in the
``benchmarks/`` suite instead, because they are machine-dependent).

Each ``claim_*`` function returns a :class:`ClaimCheck` whose ``holds`` flag
states whether the paper's prediction is confirmed on this substrate;
``all_claims()`` gathers them for the CLI and for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra import builders as B
from repro.algebra import predicates as P
from repro.experiments.queries import Q3
from repro.mining import apriori, frequent_itemsets_by_great_divide, generate_baskets
from repro.optimizer import PhysicalPlanner
from repro.physical import (
    AlgebraSimulationDivision,
    HashDivision,
    HashGreatDivision,
    RelationScan,
    execute_plan,
)
from repro.relation.relation import Relation
from repro.sql import translate_sql
from repro.workloads import (
    generate_catalog,
    make_division_workload,
    make_great_division_workload,
    split_dividend_by_quotient,
)

__all__ = ["ClaimCheck", "all_claims"]


@dataclass(frozen=True)
class ClaimCheck:
    """One verified claim: what the paper predicts and what we measure."""

    claim_id: str
    paper_claim: str
    metric: str
    baseline_label: str
    baseline_value: float
    improved_label: str
    improved_value: float
    holds: bool

    def summary(self) -> str:
        """One-line, human-readable outcome."""
        status = "CONFIRMED" if self.holds else "NOT CONFIRMED"
        return (
            f"[{status}] {self.claim_id}: {self.baseline_label}={self.baseline_value:.0f} "
            f"vs {self.improved_label}={self.improved_value:.0f} ({self.metric})"
        )


def _total_tuples(expression, catalog=None) -> tuple[int, Relation]:
    """Execute a logical expression and return (total tuples produced, result)."""
    plan = PhysicalPlanner(catalog or {}).plan(expression)
    outcome = execute_plan(plan)
    return outcome.statistics.total_tuples, outcome.relation


def _largest_non_scan_intermediate(outcome) -> int:
    """The largest relation materialized by any operator other than a base scan.

    Base-table scans are excluded because both strategies obviously read
    their inputs; the paper's complexity argument is about the intermediate
    results created *on top of* the inputs.
    """
    return max(
        (
            count
            for label, count in outcome.statistics.tuples_by_operator.items()
            if not label.endswith(":relation_scan") and not label.endswith(":table_scan")
        ),
        default=0,
    )


def claim_quadratic_intermediate() -> ClaimCheck:
    """Section 1/6: simulating the divide in basic algebra is quadratic."""
    workload = make_division_workload(
        num_groups=500, divisor_size=16, containing_fraction=0.25, extra_values_per_group=3, seed=5
    )
    simulated = execute_plan(
        AlgebraSimulationDivision(RelationScan(workload.dividend), RelationScan(workload.divisor))
    )
    first_class = execute_plan(
        HashDivision(RelationScan(workload.dividend), RelationScan(workload.divisor))
    )
    assert simulated.relation == first_class.relation
    baseline = _largest_non_scan_intermediate(simulated)
    improved = _largest_non_scan_intermediate(first_class)
    return ClaimCheck(
        claim_id="first-class-operator",
        paper_claim="Any simulation of division through the basic algebra produces intermediate "
        "results of quadratic size; a special-purpose operator does not (Leinders & Van den Bussche).",
        metric="largest intermediate result beyond the base-table scans (tuples)",
        baseline_label="algebra simulation",
        baseline_value=baseline,
        improved_label="hash-division",
        improved_value=improved,
        holds=baseline > 4 * improved and baseline >= len(workload.dividend.project(["a"])) * len(workload.divisor),
    )


def claim_law7_short_circuit() -> ClaimCheck:
    """Law 7: skipping the subtrahend division saves its whole evaluation."""
    workload = make_division_workload(num_groups=400, divisor_size=8, seed=6)
    low, high = split_dividend_by_quotient(workload.dividend, "a")
    divisor = B.literal(workload.divisor, "r2")
    both = B.difference(
        B.divide(B.literal(low, "low"), divisor), B.divide(B.literal(high, "high"), divisor)
    )
    single = B.divide(B.literal(low, "low"), divisor)
    baseline, baseline_result = _total_tuples(both)
    improved, improved_result = _total_tuples(single)
    assert baseline_result == improved_result
    return ClaimCheck(
        claim_id="law-7-short-circuit",
        paper_claim="Law 7 can save a lot of resources when computing r1'' ÷ r2 would be expensive.",
        metric="total tuples produced by the plan",
        baseline_label="(r1' ÷ r2) − (r1'' ÷ r2)",
        baseline_value=baseline,
        improved_label="r1' ÷ r2",
        improved_value=improved,
        holds=improved < baseline,
    )


def claim_law2_partitioning() -> ClaimCheck:
    """Law 2 + condition c2: each partition processes only part of the dividend."""
    workload = make_division_workload(num_groups=400, divisor_size=8, seed=7)
    low, high = split_dividend_by_quotient(workload.dividend, "a")
    divisor = workload.divisor
    full_plan = HashDivision(RelationScan(workload.dividend), RelationScan(divisor))
    full = execute_plan(full_plan)
    partition_sizes = [len(low), len(high)]
    merged = execute_plan(HashDivision(RelationScan(low), RelationScan(divisor))).relation.union(
        execute_plan(HashDivision(RelationScan(high), RelationScan(divisor))).relation
    )
    assert merged == full.relation
    return ClaimCheck(
        claim_id="law-2-parallel-scan",
        paper_claim="With condition c2 the dividend can be processed by two parallel scans, "
        "halving the per-node work.",
        metric="dividend tuples processed per node",
        baseline_label="single scan",
        baseline_value=len(workload.dividend),
        improved_label="largest partition",
        improved_value=max(partition_sizes),
        holds=max(partition_sizes) < len(workload.dividend),
    )


def claim_law13_partitioning() -> ClaimCheck:
    """Law 13: divisor groups can be spread over nodes and merged by union."""
    workload = make_great_division_workload(
        dividend_groups=150, divisor_groups=16, divisor_group_size=5, seed=8
    )
    parts = [
        workload.divisor.select(lambda row, k=k: row["c"] % 2 == k) for k in range(2)
    ]
    full = execute_plan(
        HashGreatDivision(RelationScan(workload.dividend), RelationScan(workload.divisor))
    )
    merged = execute_plan(
        HashGreatDivision(RelationScan(workload.dividend), RelationScan(parts[0]))
    ).relation.union(
        execute_plan(
            HashGreatDivision(RelationScan(workload.dividend), RelationScan(parts[1]))
        ).relation
    )
    assert merged == full.relation
    return ClaimCheck(
        claim_id="law-13-divisor-partitioning",
        paper_claim="Law 13 lets n nodes each process 1/n of the divisor groups and merge the "
        "partial quotients by union.",
        metric="divisor tuples processed per node",
        baseline_label="single node",
        baseline_value=len(workload.divisor),
        improved_label="largest partition",
        improved_value=max(len(part) for part in parts),
        holds=max(len(part) for part in parts) < len(workload.divisor),
    )


def claim_q3_recognition() -> ClaimCheck:
    """Section 4: recognizing the NOT-EXISTS pattern and using the divide wins."""
    catalog = generate_catalog(num_suppliers=80, num_parts=40, parts_per_supplier=15, seed=9)
    naive = translate_sql(Q3, catalog, recognize_division=False)
    recognized = translate_sql(Q3, catalog, recognize_division=True)
    baseline, baseline_result = _total_tuples(naive, catalog)
    improved, improved_result = _total_tuples(recognized, catalog)
    assert baseline_result == improved_result
    return ClaimCheck(
        claim_id="q3-divide-recognition",
        paper_claim="A query using the division syntax (or a recognizer) avoids the large "
        "intermediate results of the nested NOT EXISTS / basic-algebra formulation.",
        metric="total tuples produced by the plan",
        baseline_label="divide-less Q3 plan",
        baseline_value=baseline,
        improved_label="great-divide plan",
        improved_value=improved,
        holds=improved < baseline,
    )


def claim_example3_join_elimination() -> ClaimCheck:
    """Example 3: the rewritten expression avoids the join between r1* and r1**."""
    keep = Relation(
        ["a", "b1"],
        [(group, value) for group in range(200) for value in range(group % 6 + 1)],
    )
    drop = Relation(["b2"], [(value,) for value in range(3, 9)])
    divisor = Relation(["b1", "b2"], [(value, value + 3) for value in range(5)])
    predicate = P.less_than(P.attr("b1"), P.attr("b2"))
    from repro.laws.small_divide import Example3JoinElimination

    lhs, rhs = Example3JoinElimination.sides(
        B.literal(keep, "r1*"), B.literal(drop, "r1**"), B.literal(divisor, "r2"), predicate
    )
    baseline, baseline_result = _total_tuples(lhs)
    improved, improved_result = _total_tuples(rhs)
    assert baseline_result == improved_result
    return ClaimCheck(
        claim_id="example-3-join-elimination",
        paper_claim="The rewritten plan needs no join between r1* and r1** and may therefore be "
        "executed more efficiently.",
        metric="total tuples produced by the plan",
        baseline_label="with the theta-join",
        baseline_value=baseline,
        improved_label="join eliminated",
        improved_value=improved,
        holds=improved < baseline,
    )


def claim_mining_equivalence() -> ClaimCheck:
    """Section 3: the great-divide miner computes exactly the frequent itemsets."""
    dataset = generate_baskets(num_transactions=120, num_items=25, num_patterns=3, seed=10)
    min_support = max(2, int(0.2 * dataset.num_transactions))
    via_divide = frequent_itemsets_by_great_divide(dataset.relation, min_support, algorithm="hash")
    via_apriori = apriori(dataset.baskets, min_support)
    return ClaimCheck(
        claim_id="mining-support-counting",
        paper_claim="The support counting phase of frequent itemset discovery is exactly a great "
        "divide; candidates need not have the same size.",
        metric="number of frequent itemsets found",
        baseline_label="classic Apriori",
        baseline_value=len(via_apriori),
        improved_label="great-divide miner",
        improved_value=len(via_divide),
        holds=via_divide == via_apriori,
    )


def all_claims() -> list[ClaimCheck]:
    """Run every claim verification (deterministic, a few seconds in total)."""
    return [
        claim_quadratic_intermediate(),
        claim_law7_short_circuit(),
        claim_law2_partitioning(),
        claim_law13_partitioning(),
        claim_q3_recognition(),
        claim_example3_join_elimination(),
        claim_mining_equivalence(),
    ]
