"""The SQL queries of Section 4 (Q1, Q2, Q3) as reusable experiment inputs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.catalog import Catalog
from repro.algebra.expressions import Expression
from repro.relation.relation import Relation
from repro.sql import translate_sql

__all__ = ["Q1", "Q2", "Q3", "Q2_NOT_EXISTS", "QueryExperiment", "run_query", "q1_equals_q3"]

#: Query Q1: for each color, the suppliers that supply all parts of that color.
Q1 = "SELECT s_no, color FROM supplies AS s DIVIDE BY parts AS p ON s.p_no = p.p_no"

#: Query Q2: the suppliers that supply all blue parts.
Q2 = (
    "SELECT s_no FROM supplies AS s DIVIDE BY ("
    "SELECT p_no FROM parts WHERE color = 'blue') AS p ON s.p_no = p.p_no"
)

#: Query Q3: the double-NOT-EXISTS formulation equivalent to Q1.
Q3 = """
    SELECT DISTINCT s_no, color
    FROM supplies AS s1, parts AS p1
    WHERE NOT EXISTS (
        SELECT * FROM parts AS p2
        WHERE p2.color = p1.color AND NOT EXISTS (
            SELECT * FROM supplies AS s2
            WHERE s2.p_no = p2.p_no AND s2.s_no = s1.s_no))
"""

#: The NOT EXISTS formulation of Q2 (used by the recognizer experiments).
Q2_NOT_EXISTS = """
    SELECT DISTINCT s_no
    FROM supplies AS s1
    WHERE NOT EXISTS (
        SELECT * FROM parts AS p2
        WHERE p2.color = 'blue' AND NOT EXISTS (
            SELECT * FROM supplies AS s2
            WHERE s2.p_no = p2.p_no AND s2.s_no = s1.s_no))
"""


@dataclass(frozen=True)
class QueryExperiment:
    """One executed query: its translation and its result."""

    sql: str
    expression: Expression
    result: Relation


def run_query(sql: str, catalog: Catalog, recognize_division: bool = True) -> QueryExperiment:
    """Translate and evaluate ``sql`` against ``catalog``."""
    expression = translate_sql(sql, catalog, recognize_division=recognize_division)
    return QueryExperiment(sql=sql, expression=expression, result=expression.evaluate(catalog))


def q1_equals_q3(catalog: Catalog) -> bool:
    """The paper's claim that Q1 and Q3 denote the same result."""
    q1 = run_query(Q1, catalog).result
    q3 = run_query(Q3, catalog).result
    return q1 == q3
