"""The SQL queries of Section 4 (Q1, Q2, Q3) as reusable experiment inputs.

:func:`run_query` is kept as a thin shim over the public session API
(:func:`repro.connect`): translation, rewriting and execution all happen in
one :class:`~repro.api.database.Database` pass, and the returned
:class:`QueryExperiment` now also carries the full
:class:`~repro.api.result.QueryResult` for statistics-aware callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.algebra.catalog import Catalog
from repro.algebra.expressions import Expression
from repro.api.database import Database
from repro.api.result import QueryResult
from repro.relation.relation import Relation

__all__ = ["Q1", "Q2", "Q3", "Q2_NOT_EXISTS", "QueryExperiment", "run_query", "q1_equals_q3"]

#: Query Q1: for each color, the suppliers that supply all parts of that color.
Q1 = "SELECT s_no, color FROM supplies AS s DIVIDE BY parts AS p ON s.p_no = p.p_no"

#: Query Q2: the suppliers that supply all blue parts.
Q2 = (
    "SELECT s_no FROM supplies AS s DIVIDE BY ("
    "SELECT p_no FROM parts WHERE color = 'blue') AS p ON s.p_no = p.p_no"
)

#: Query Q3: the double-NOT-EXISTS formulation equivalent to Q1.
Q3 = """
    SELECT DISTINCT s_no, color
    FROM supplies AS s1, parts AS p1
    WHERE NOT EXISTS (
        SELECT * FROM parts AS p2
        WHERE p2.color = p1.color AND NOT EXISTS (
            SELECT * FROM supplies AS s2
            WHERE s2.p_no = p2.p_no AND s2.s_no = s1.s_no))
"""

#: The NOT EXISTS formulation of Q2 (used by the recognizer experiments).
Q2_NOT_EXISTS = """
    SELECT DISTINCT s_no
    FROM supplies AS s1
    WHERE NOT EXISTS (
        SELECT * FROM parts AS p2
        WHERE p2.color = 'blue' AND NOT EXISTS (
            SELECT * FROM supplies AS s2
            WHERE s2.p_no = p2.p_no AND s2.s_no = s1.s_no))
"""


@dataclass(frozen=True)
class QueryExperiment:
    """One executed query: its translation and its result."""

    sql: str
    expression: Expression
    result: Relation
    #: Full execution details (rules fired, tuple counts, timing); ``None``
    #: only for experiments constructed by legacy code paths.
    details: Optional[QueryResult] = None


def run_query(
    sql: str,
    catalog: Catalog,
    recognize_division: bool = True,
    database: Optional[Database] = None,
) -> QueryExperiment:
    """Translate and execute ``sql`` against ``catalog`` — one execution.

    A thin shim over the session API; pass an existing ``database`` (over
    the same catalog) to reuse its prepared-plan cache across queries.
    """
    db = database if database is not None else Database(catalog)
    outcome = db.sql(sql, recognize_division=recognize_division).run()
    return QueryExperiment(
        sql=sql, expression=outcome.expression, result=outcome.relation, details=outcome
    )


def q1_equals_q3(catalog: Catalog) -> bool:
    """The paper's claim that Q1 and Q3 denote the same result."""
    q1 = run_query(Q1, catalog).result
    q3 = run_query(Q3, catalog).result
    return q1 == q3
