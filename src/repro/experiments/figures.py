"""Regeneration of every figure of the paper (Figures 1–11).

Each ``figure_N()`` function rebuilds the input relations printed in the
paper, evaluates the operator or law the figure illustrates, and returns a
:class:`FigureReproduction` holding all inputs, the intermediates shown in
the figure, the computed output and the expected output transcribed from
the paper.  ``verify()`` checks computed == expected; ``render()`` prints
the relations side by side in the paper's layout.

The benchmark harness (``benchmarks/test_bench_figures.py``) times the
regeneration of every figure and asserts that it verifies, and
``EXPERIMENTS.md`` records the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra import predicates as P
from repro.division import great_divide, small_divide
from repro.division.set_containment_join import nest, set_containment_join
from repro.laws.small_divide import law11_divide, law12_divide
from repro.relation import Relation, aggregates
from repro.relation.render import render_relation, render_side_by_side

__all__ = ["FigureReproduction", "all_figures"] + [f"figure_{i}" for i in range(1, 12)]


@dataclass
class FigureReproduction:
    """One regenerated figure: inputs, intermediates, output, expected output."""

    figure_id: str
    caption: str
    relations: dict[str, Relation] = field(default_factory=dict)
    computed: Relation | None = None
    expected: Relation | None = None

    def verify(self) -> bool:
        """True if the computed result matches the paper's printed result."""
        return self.computed == self.expected

    def render(self) -> str:
        """ASCII rendering of all relations of the figure, side by side."""
        blocks = [
            render_relation(relation, title=f"({label})")
            for label, relation in self.relations.items()
        ]
        header = f"{self.figure_id}: {self.caption}"
        status = "reproduced" if self.verify() else "MISMATCH"
        return f"{header}  [{status}]\n" + render_side_by_side(blocks)


# ----------------------------------------------------------------------
# shared example relations
# ----------------------------------------------------------------------
def _figure1_dividend() -> Relation:
    return Relation(
        ["a", "b"],
        [(1, 1), (1, 4), (2, 1), (2, 2), (2, 3), (2, 4), (3, 1), (3, 3), (3, 4)],
    )


def _figure4_dividend() -> Relation:
    return Relation(
        ["a", "b"],
        [
            (1, 1), (1, 4),
            (2, 1), (2, 2), (2, 3), (2, 4),
            (3, 1), (3, 3), (3, 4),
            (4, 1), (4, 3),
        ],
    )


# ----------------------------------------------------------------------
# figures
# ----------------------------------------------------------------------
def figure_1() -> FigureReproduction:
    """Figure 1: small divide r1 ÷ r2 = r3."""
    r1 = _figure1_dividend()
    r2 = Relation(["b"], [(1,), (3,)])
    expected = Relation(["a"], [(2,), (3,)])
    computed = small_divide(r1, r2)
    return FigureReproduction(
        figure_id="Figure 1",
        caption="Division: r1 ÷ r2 = r3",
        relations={"r1 (dividend)": r1, "r2 (divisor)": r2, "r3 (quotient)": computed},
        computed=computed,
        expected=expected,
    )


def figure_2() -> FigureReproduction:
    """Figure 2: generalized division r1 ÷* r2 = r3."""
    r1 = _figure1_dividend()
    r2 = Relation(["b", "c"], [(1, 1), (2, 1), (4, 1), (1, 2), (3, 2)])
    expected = Relation(["a", "c"], [(2, 1), (2, 2), (3, 2)])
    computed = great_divide(r1, r2)
    return FigureReproduction(
        figure_id="Figure 2",
        caption="Generalized division: r1 ÷* r2 = r3",
        relations={"r1 (dividend)": r1, "r2 (divisor)": r2, "r3 (quotient)": computed},
        computed=computed,
        expected=expected,
    )


def figure_3() -> FigureReproduction:
    """Figure 3: set containment join over the nested representation."""
    r1 = nest(_figure1_dividend(), "b", "b1")
    r2 = nest(Relation(["b", "c"], [(1, 1), (2, 1), (4, 1), (1, 2), (3, 2)]), "b", "b2")
    computed = set_containment_join(r1, r2, "b1", "b2")
    expected = Relation(
        ["a", "b1", "b2", "c"],
        [
            (2, frozenset({1, 2, 3, 4}), frozenset({1, 2, 4}), 1),
            (2, frozenset({1, 2, 3, 4}), frozenset({1, 3}), 2),
            (3, frozenset({1, 3, 4}), frozenset({1, 3}), 2),
        ],
    )
    return FigureReproduction(
        figure_id="Figure 3",
        caption="Set containment join: r1 ⋈_{b1 ⊇ b2} r2 = r3",
        relations={"r1": r1, "r2": r2, "r3": computed},
        computed=computed,
        expected=expected,
    )


def figure_4() -> FigureReproduction:
    """Figure 4: the worked example of Law 1 (divisor union split)."""
    r1 = _figure4_dividend()
    r2_prime = Relation(["b"], [(1,), (3,)])
    r2_double_prime = Relation(["b"], [(3,), (4,)])
    r2 = r2_prime.union(r2_double_prime)
    inner = small_divide(r1, r2_prime)
    semi = r1.semijoin(inner)
    computed = small_divide(semi, r2_double_prime)
    expected = Relation(["a"], [(2,), (3,)])
    return FigureReproduction(
        figure_id="Figure 4",
        caption="Law 1: r1 ÷ (r2' ∪ r2'') = (r1 ⋉ (r1 ÷ r2')) ÷ r2''",
        relations={
            "r1": r1,
            "r2": r2,
            "r2'": r2_prime,
            "r2''": r2_double_prime,
            "r1 ÷ r2'": inner,
            "r1 ⋉ (r1 ÷ r2')": semi,
            "r3": computed,
        },
        computed=computed,
        expected=expected,
    )


def figure_5() -> FigureReproduction:
    """Figure 5: the dividend partitioning that violates condition c1 of Law 2."""
    r1_prime = Relation(["a", "b"], [(1, 1), (1, 2), (1, 3)])
    r1_double_prime = Relation(["a", "b"], [(1, 2), (1, 4)])
    r2 = Relation(["b"], [(1,), (4,)])
    union_quotient = small_divide(r1_prime.union(r1_double_prime), r2)
    split_quotient = small_divide(r1_prime, r2).union(small_divide(r1_double_prime, r2))
    # The figure illustrates the *violation*: the union qualifies a=1 although
    # neither partition does.  The expected value records the union quotient.
    return FigureReproduction(
        figure_id="Figure 5",
        caption="Law 2 precondition violation: (r1' ∪ r1'') ÷ r2 ≠ (r1' ÷ r2) ∪ (r1'' ÷ r2)",
        relations={
            "r1'": r1_prime,
            "r1''": r1_double_prime,
            "r2": r2,
            "(r1' ∪ r1'') ÷ r2": union_quotient,
            "(r1' ÷ r2) ∪ (r1'' ÷ r2)": split_quotient,
        },
        computed=union_quotient.difference(split_quotient),
        expected=Relation(["a"], [(1,)]),
    )


def figure_6() -> FigureReproduction:
    """Figure 6: Example 1 — a selection on the dividend's B attributes."""
    r1 = _figure4_dividend()
    r2 = Relation(["b"], [(1,), (3,), (4,)])
    predicate = P.less_than(P.attr("b"), 3)
    restricted_dividend = r1.select(predicate)
    restricted_divisor = r2.select(predicate)
    rejected_divisor = r2.select(predicate.negate())
    lhs = small_divide(restricted_dividend, r2)
    first = small_divide(restricted_dividend, restricted_divisor)
    switch = r1.project(["a"]).product(rejected_divisor).project(["a"])
    rhs = first.difference(switch)
    return FigureReproduction(
        figure_id="Figure 6",
        caption="Example 1: σ_b<3(r1) ÷ r2 rewritten to expose the empty result",
        relations={
            "r1": r1,
            "σ_b<3(r1)": restricted_dividend,
            "r2": r2,
            "σ_b<3(r2)": restricted_divisor,
            "σ_b<3(r1) ÷ r2": lhs,
            "σ_b<3(r1) ÷ σ_b<3(r2)": first,
            "π_a(π_a(r1) × σ_b≥3(r2))": switch,
            "result": rhs,
        },
        computed=rhs,
        expected=lhs,
    )


def figure_7() -> FigureReproduction:
    """Figure 7: the worked example of Law 8."""
    r1_star = Relation(["a1"], [(1,), (2,)])
    r1_star_star = Relation(
        ["a2", "b"], [(1, 1), (1, 2), (1, 3), (2, 1), (2, 3), (3, 2), (3, 3)]
    )
    r2 = Relation(["b"], [(2,), (3,)])
    product = r1_star.product(r1_star_star)
    inner = small_divide(r1_star_star, r2)
    computed = r1_star.product(inner)
    expected = Relation(["a1", "a2"], [(1, 1), (1, 3), (2, 1), (2, 3)])
    lhs = small_divide(product, r2)
    return FigureReproduction(
        figure_id="Figure 7",
        caption="Law 8: (r1* × r1**) ÷ r2 = r1* × (r1** ÷ r2)",
        relations={
            "r1*": r1_star,
            "r1**": r1_star_star,
            "r2": r2,
            "r1* × r1**": product,
            "r1** ÷ r2": inner,
            "r3": computed,
            "lhs": lhs,
        },
        computed=computed,
        expected=expected,
    )


def figure_8() -> FigureReproduction:
    """Figure 8: the worked example of Law 9."""
    r1_star = Relation(
        ["a", "b1"], [(1, 1), (1, 2), (1, 3), (2, 2), (2, 3), (3, 1), (3, 3), (3, 4)]
    )
    r1_star_star = Relation(["b2"], [(1,), (2,)])
    r2 = Relation(["b1", "b2"], [(1, 2), (3, 1), (3, 2)])
    product = r1_star.product(r1_star_star)
    lhs = small_divide(product, r2)
    computed = small_divide(r1_star, r2.project(["b1"]))
    expected = Relation(["a"], [(1,), (3,)])
    return FigureReproduction(
        figure_id="Figure 8",
        caption="Law 9: (r1* × r1**) ÷ r2 = r1* ÷ π_B1(r2)",
        relations={
            "r1*": r1_star,
            "r1**": r1_star_star,
            "r2": r2,
            "r1* × r1**": product,
            "π_b1(r2)": r2.project(["b1"]),
            "π_b2(r2)": r2.project(["b2"]),
            "r3": computed,
            "lhs": lhs,
        },
        computed=computed,
        expected=expected,
    )


def figure_9() -> FigureReproduction:
    """Figure 9: the worked example of Example 3 (join elimination)."""
    r1_star = Relation(
        ["a", "b1"], [(1, 1), (1, 2), (1, 3), (2, 2), (2, 3), (3, 1), (3, 3), (3, 4)]
    )
    r1_star_star = Relation(["b2"], [(1,), (2,), (4,)])
    r2 = Relation(["b1", "b2"], [(1, 4), (3, 4)])
    predicate = P.less_than(P.attr("b1"), P.attr("b2"))
    joined = r1_star.theta_join(r1_star_star, predicate)
    lhs = small_divide(joined, r2)
    selected = r2.select(predicate).project(["b1"])
    rejected = r2.select(predicate.negate())
    computed = small_divide(r1_star, selected).difference(
        r1_star.project(["a"]).product(rejected).project(["a"])
    )
    expected = Relation(["a"], [(1,), (3,)])
    return FigureReproduction(
        figure_id="Figure 9",
        caption="Example 3: (r1* ⋈_{b1<b2} r1**) ÷ r2 rewritten without the join",
        relations={
            "r1*": r1_star,
            "r1**": r1_star_star,
            "r2": r2,
            "r1* ⋈ r1**": joined,
            "π_b1(σ_b1<b2(r2))": selected,
            "r3": computed,
            "lhs": lhs,
        },
        computed=computed,
        expected=expected,
    )


def figure_10() -> FigureReproduction:
    """Figure 10: the worked example of Law 11 (grouped dividend)."""
    r0 = Relation(
        ["a", "x"], [(1, 1), (1, 2), (1, 3), (2, 1), (2, 3), (3, 1), (3, 3), (3, 4)]
    )
    r1 = r0.group_by(["a"], {"b": aggregates.sum_of("x")})
    r2 = Relation(["b"], [(4,)])
    semi = r1.semijoin(r2)
    computed = law11_divide(r1, r2)
    expected = Relation(["a"], [(2,)])
    return FigureReproduction(
        figure_id="Figure 10",
        caption="Law 11: r1 = γ_sum(x)→b(r0), quotient via a semi-join",
        relations={
            "r0": r0,
            "r1 = γ(r0)": r1,
            "r2": r2,
            "r1 ⋉ r2": semi,
            "π_a(r1 ⋉ r2)": computed,
        },
        computed=computed,
        expected=expected,
    )


def figure_11() -> FigureReproduction:
    """Figure 11: the worked example of Law 12 (grouped divisor key)."""
    r0 = Relation(
        ["x", "b"], [(1, 1), (1, 2), (1, 3), (2, 1), (2, 3), (3, 1), (3, 3), (3, 4)]
    )
    r1 = r0.group_by(["b"], {"a": aggregates.sum_of("x")})
    r2 = Relation(["b"], [(1,), (3,)])
    semi = r1.semijoin(r2)
    computed = law12_divide(r1, r2)
    expected = Relation(["a"], [(6,)])
    return FigureReproduction(
        figure_id="Figure 11",
        caption="Law 12: r1 = γ_sum(x)→a(r0), quotient via a semi-join and count",
        relations={
            "r0": r0,
            "r1 = γ(r0)": r1,
            "r2": r2,
            "r1 ⋉ r2": semi,
            "π_a(r1 ⋉ r2)": computed,
        },
        computed=computed,
        expected=expected,
    )


def all_figures() -> list[FigureReproduction]:
    """Regenerate every figure of the paper, in order."""
    return [
        figure_1(),
        figure_2(),
        figure_3(),
        figure_4(),
        figure_5(),
        figure_6(),
        figure_7(),
        figure_8(),
        figure_9(),
        figure_10(),
        figure_11(),
    ]
