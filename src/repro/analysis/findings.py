"""Findings: the common currency of every static-analysis pass.

A finding is one defect (or suspicion) located somewhere in a logical
expression, a physical plan, a compiled segment's generated source, or the
engine's own source code.  Findings carry a **stable code** (``RP101`` …)
so tests, CI gates and documentation can refer to a check without matching
message text, and a severity so CI can fail on errors while letting
warnings through.

Code ranges
-----------
* ``RP1xx`` — schema soundness of logical expressions and physical plans;
* ``RP2xx`` — operator-contract completeness (properties, parallel safety,
  partition keys, pickle-safety, streaming segments, exchange shape);
* ``RP3xx`` — codegen audit of compiled-segment source;
* ``RP4xx`` — engine-contract lint rules (``scripts/lint_engine.py``);
* ``RP5xx`` — storage invariants (stored-scan headers, zone maps, spill
  budgets);
* ``RP6xx`` — maintained-view invariants (counter-table/schema agreement,
  delta-rule coverage, version monotonicity, view-over-view rejection);
* ``RP7xx`` — fault-tolerance invariants (checksum coverage of stored
  files, retry-policy sanity, fault-point registration).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Any


__all__ = [
    "FINDING_CODES",
    "Finding",
    "Severity",
    "VerificationReport",
    "finding",
]


class Severity(enum.Enum):
    """How bad a finding is; CI gates on :attr:`ERROR` only."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


#: code → (default severity, one-line description).  The registry is the
#: single source of truth for the stable codes; tests assert against it and
#: the docs table is generated from the same names.
FINDING_CODES: dict[str, tuple[Severity, str]] = {
    # -- RP1xx: schema soundness -------------------------------------------
    "RP101": (Severity.ERROR, "attribute reference does not resolve against the input schema"),
    "RP102": (Severity.ERROR, "rename/grouping output collides with an existing attribute"),
    "RP103": (Severity.ERROR, "division schema law violated (quotient != dividend - divisor)"),
    "RP104": (Severity.ERROR, "set operation over inputs with different attribute sets"),
    "RP105": (Severity.ERROR, "product/theta-join inputs share attributes"),
    "RP106": (Severity.ERROR, "cached schema disagrees with the recomputed schema"),
    "RP107": (Severity.ERROR, "relation reference disagrees with the catalog"),
    "RP111": (Severity.ERROR, "physical operator schema inconsistent with its children"),
    "RP112": (Severity.WARNING, "join/division key typed differently on the two sides"),
    # -- RP2xx: operator contracts -----------------------------------------
    "RP201": (Severity.ERROR, "physical operator class does not declare its own PhysicalProperties"),
    "RP202": (Severity.ERROR, "parallel wrapper wraps an algorithm not marked key-disjoint safe"),
    "RP203": (Severity.ERROR, "exchange partition key does not cover the operator's grouping keys"),
    "RP204": (Severity.WARNING, "task payload is not statically pickle-safe"),
    "RP205": (Severity.ERROR, "compiled producer attached to a non-fusable/non-streaming chain"),
    "RP206": (Severity.ERROR, "exchange shape invalid (partitions/workers below 1)"),
    # -- RP3xx: codegen audit ----------------------------------------------
    "RP301": (Severity.ERROR, "generated source calls outside the binding whitelist"),
    "RP302": (Severity.ERROR, "generated source writes state outside the counter contract"),
    "RP303": (Severity.ERROR, "generated source shadows a _bind binding name"),
    "RP304": (Severity.ERROR, "generated source does not match the fused operator chain"),
    "RP305": (Severity.ERROR, "generated source does not parse"),
    # -- RP4xx: engine-contract lint ---------------------------------------
    "RP401": (Severity.ERROR, "_produce_chunks materializes Row objects without a waiver"),
    "RP402": (Severity.ERROR, "physical operator pulls rows() from a child operator"),
    "RP403": (Severity.ERROR, "law class does not declare its conditions"),
    "RP404": (Severity.ERROR, "physical operator class misses name/properties declarations"),
    # -- RP5xx: storage invariants -----------------------------------------
    "RP501": (Severity.ERROR, "stored scan schema disagrees with the table file header"),
    "RP502": (Severity.ERROR, "block zone map malformed (unknown attribute or min > max)"),
    "RP503": (Severity.ERROR, "skip predicate references attributes outside the scan schema"),
    "RP504": (Severity.ERROR, "block index tuple counts disagree with the header tuple count"),
    "RP505": (Severity.ERROR, "exchange memory budget is not positive"),
    # -- RP6xx: maintained-view invariants ---------------------------------
    "RP601": (Severity.ERROR, "counter table disagrees with the view's quotient schema"),
    "RP602": (Severity.ERROR, "maintained view lacks full delta-rule coverage"),
    "RP603": (Severity.ERROR, "view's applied versions are not monotone with the tables"),
    "RP604": (Severity.ERROR, "view is defined over another view"),
    # -- RP7xx: fault-tolerance invariants ---------------------------------
    "RP701": (Severity.WARNING, "stored table file predates per-block checksums (legacy v1 format)"),
    "RP702": (Severity.ERROR, "checksummed table file has a block without a CRC entry"),
    "RP703": (Severity.ERROR, "operator retry policy is unsound (negative retries/backoff or non-positive timeout)"),
    "RP704": (Severity.ERROR, "active fault plan targets an unregistered fault point"),
}


@dataclass(frozen=True)
class Finding:
    """One located defect reported by a static-analysis pass."""

    #: Stable code from :data:`FINDING_CODES` (``RP101`` …).
    code: str
    #: :class:`Severity` of this occurrence (defaults from the registry).
    severity: Severity
    #: Human-readable statement of what is wrong, with the offending names.
    message: str
    #: Where the defect sits: an operator label, a node rendering, a
    #: ``file:line`` pair — whatever locates it for the reader.
    where: str
    #: Which pass produced it: "logical", "physical", "codegen", "engine".
    origin: str = ""

    def to_dict(self) -> dict[str, str]:
        """JSON-ready representation (the CI gate consumes this)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "where": self.where,
            "origin": self.origin,
        }

    def render(self) -> str:
        """One-line rendering for terminals and explain output."""
        return f"{self.code} {self.severity.value:<7} [{self.where}] {self.message}"


def finding(code: str, message: str, where: str, origin: str = "") -> Finding:
    """Build a finding with the registry's default severity for ``code``."""
    try:
        severity, _description = FINDING_CODES[code]
    except KeyError:
        raise ValueError(f"unknown finding code {code!r}") from None
    return Finding(code=code, severity=severity, message=message, where=where, origin=origin)


@dataclass(frozen=True)
class VerificationReport:
    """The outcome of one verification run over one plan/expression."""

    #: Every finding, in discovery order.
    findings: tuple[Finding, ...] = ()
    #: Names of the passes that ran (e.g. ``("logical", "physical")``).
    passes: tuple[str, ...] = ()
    #: How many nodes/operators/segments were inspected (for rendering).
    checked: int = 0

    @property
    def ok(self) -> bool:
        """True when no finding has severity ``error``."""
        return not self.errors()

    def errors(self) -> tuple[Finding, ...]:
        """Only the severity-``error`` findings."""
        return tuple(f for f in self.findings if f.severity is Severity.ERROR)

    def warnings(self) -> tuple[Finding, ...]:
        """Only the severity-``warning`` findings."""
        return tuple(f for f in self.findings if f.severity is Severity.WARNING)

    def merged(self, other: "VerificationReport") -> "VerificationReport":
        """This report and ``other`` folded into one."""
        return VerificationReport(
            findings=self.findings + other.findings,
            passes=self.passes + tuple(p for p in other.passes if p not in self.passes),
            checked=self.checked + other.checked,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "ok": self.ok,
            "checked": self.checked,
            "passes": list(self.passes),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent: int = 2) -> str:
        """The report as a JSON document (``repro check --json``)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def summary(self) -> str:
        """One line: clean, or the error/warning counts."""
        if not self.findings:
            scope = f"{self.checked} node(s)" if self.checked else "all checks"
            return f"clean ({scope}, {len(self.passes)} pass(es))"
        errors = len(self.errors())
        warnings = len(self.warnings())
        return f"{errors} error(s), {warnings} warning(s) over {self.checked} node(s)"

    def render(self) -> str:
        """Multi-line rendering: summary plus one line per finding."""
        lines = [self.summary()]
        lines.extend("  " + f.render() for f in self.findings)
        return "\n".join(lines)
