"""`repro check`: verify prepared plans across the paper workloads.

This module glues the verification passes together:

* :func:`verify_expression_tree` — the logical pass alone;
* :func:`verify_plan` — the physical + codegen passes over one plan;
* :func:`verify_prepared` — everything a :class:`PreparedPlan` carries:
  the canonical expression, the rewritten expression, the physical plan,
  and any compiled segments;
* :func:`check_workloads` — the sweep the CLI and CI run: every paper
  query (Q1–Q3 and the NOT-EXISTS variant), optionally crossed with every
  division algorithm × compile mode × worker count, each prepared on a
  fresh database and verified.  Nothing is executed — preparation is
  planning only — so the sweep is safe to run anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.analysis.codegen_auditor import audit_plan
from repro.analysis.findings import VerificationReport
from repro.analysis.plan_verifier import verify_expression, verify_physical
from repro.physical.base import PhysicalOperator

__all__ = [
    "CheckRun",
    "WorkloadCheck",
    "check_workloads",
    "verify_expression_tree",
    "verify_plan",
    "verify_prepared",
]


def verify_expression_tree(expression: Any, catalog: Any = None) -> VerificationReport:
    """Run the logical schema-soundness pass over one expression tree."""
    findings, checked = verify_expression(expression, catalog)
    return VerificationReport(findings=tuple(findings), passes=("logical",), checked=checked)


def verify_plan(plan: PhysicalOperator) -> VerificationReport:
    """Run the physical-contract and codegen passes over one physical plan."""
    findings, checked = verify_physical(plan)
    report = VerificationReport(findings=tuple(findings), passes=("physical",), checked=checked)
    codegen_findings, audited = audit_plan(plan)
    if audited:
        report = report.merged(
            VerificationReport(
                findings=tuple(codegen_findings), passes=("codegen",), checked=audited
            )
        )
    return report


def verify_prepared(prepared: Any, catalog: Any = None) -> VerificationReport:
    """Verify everything one :class:`~repro.api.database.PreparedPlan` holds.

    The canonical and rewritten logical expressions are both checked (a
    law that corrupts schemas shows up as the *rewritten* tree failing
    while the canonical one is clean), then the physical plan and its
    compiled segments.
    """
    report = verify_expression_tree(prepared.canonical, catalog)
    rewritten = prepared.rewritten
    if rewritten is not prepared.canonical:
        report = report.merged(verify_expression_tree(rewritten, catalog))
    return report.merged(verify_plan(prepared.plan))


@dataclass(frozen=True)
class WorkloadCheck:
    """One (query, configuration) cell of the sweep and its report."""

    workload: str
    configuration: str
    report: VerificationReport

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "configuration": self.configuration,
            **self.report.to_dict(),
        }


@dataclass(frozen=True)
class CheckRun:
    """The outcome of one ``repro check`` invocation."""

    checks: tuple[WorkloadCheck, ...]

    @property
    def ok(self) -> bool:
        return all(check.report.ok for check in self.checks)

    @property
    def findings(self) -> tuple[Any, ...]:
        return tuple(f for check in self.checks for f in check.report.findings)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "cells": len(self.checks),
            "checks": [check.to_dict() for check in self.checks],
        }

    def to_json(self, indent: int = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        lines = []
        for check in self.checks:
            status = "ok" if check.report.ok else "FAIL"
            lines.append(
                f"{status:<4} {check.workload:<14} {check.configuration:<40} "
                f"{check.report.summary()}"
            )
            lines.extend("     " + f.render() for f in check.report.findings)
        verdict = "all clean" if self.ok else "errors found"
        lines.append(f"{len(self.checks)} cell(s) checked: {verdict}")
        return "\n".join(lines)


def _paper_queries() -> dict[str, str]:
    from repro.experiments import Q1, Q2, Q3, Q2_NOT_EXISTS

    return {"Q1": Q1, "Q2": Q2, "Q3": Q3, "Q2_NOT_EXISTS": Q2_NOT_EXISTS}


def _configurations(all_workloads: bool, query_name: str) -> list[tuple[str, dict[str, Any]]]:
    """(label, PlannerOptions kwargs) pairs for one query's sweep column."""
    if not all_workloads:
        return [("default", {})]
    from repro.physical import GREAT_DIVIDE_ALGORITHMS, SMALL_DIVIDE_ALGORITHMS

    # Q1 is the paper's great-divide query; the others plan small divides.
    if query_name == "Q1":
        option = "great_divide_algorithm"
        algorithms = sorted(GREAT_DIVIDE_ALGORITHMS)
    else:
        option = "small_divide_algorithm"
        algorithms = sorted(SMALL_DIVIDE_ALGORITHMS)
    cells = []
    for algorithm in algorithms:
        for compile_mode in ("off", "on"):
            for workers in (1, 4):
                label = f"algorithm={algorithm} compile={compile_mode} workers={workers}"
                cells.append(
                    (
                        label,
                        {option: algorithm, "compile": compile_mode, "workers": workers},
                    )
                )
    return cells


def check_workloads(
    source: Any = None, all_workloads: bool = False, queries: Optional[dict[str, str]] = None
) -> CheckRun:
    """Prepare and verify the paper workloads; nothing is executed.

    ``source`` is a catalog source (defaults to the textbook catalog);
    ``all_workloads`` crosses each query with every applicable division
    algorithm × compile mode ("off"/"on") × worker count (1/4).
    """
    from repro.api.database import connect
    from repro.optimizer.planner import PlannerOptions

    if source is None:
        from repro.workloads import textbook_catalog

        source = textbook_catalog
    checks: list[WorkloadCheck] = []
    for name, sql in sorted((queries or _paper_queries()).items()):
        for label, option_kwargs in _configurations(all_workloads, name):
            database = connect(source, planner_options=PlannerOptions(**option_kwargs))
            prepared, _cached = database._prepare(database.sql(sql).expression)
            report = verify_prepared(prepared, database.catalog)
            checks.append(WorkloadCheck(workload=name, configuration=label, report=report))
    return CheckRun(checks=tuple(checks))
