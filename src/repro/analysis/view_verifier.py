"""View verifier: maintained-view invariants (RP6xx).

A maintained view is a cache with an algebraic contract: its counter
table must agree with the view's quotient schema (RP601), the four delta
rules must actually cover {dividend, divisor} x {insert, delete} with
declared conditions (RP602), and the versions the view claims to have
applied must be monotone with the tables' current versions (RP603) —
a view "ahead" of its base table has incorporated a delta that never
happened.  RP604 rejects views defined over other views: delta routing
is keyed by *base-table* name, so a view-over-view would silently miss
every mutation.

All checks read the view duck-typed (plain attribute access), so the
corruption tests in ``tests/tooling/test_verifier_mutations.py`` can
break one invariant at a time on a real view and watch exactly one code
fire.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.analysis.findings import VerificationReport, finding
from repro.errors import ReproError

__all__ = ["verify_view"]

#: The coverage the maintenance path requires before trusting counters.
_REQUIRED_DELTAS: tuple[tuple[str, str], ...] = (
    ("dividend", "insert"),
    ("dividend", "delete"),
    ("divisor", "insert"),
    ("divisor", "delete"),
)


def _check_counter_schema(view: Any, where: str) -> list[Any]:
    """RP601: the counter table must mirror the view's quotient schema."""
    findings = []
    shape = getattr(view, "shape", None)
    counters = getattr(view, "counters", None)
    schema_names = tuple(getattr(view, "schema_names", ()))
    if shape is None:
        return findings  # fallback views have no counter table to check
    a_names = tuple(shape.a_names)
    c_names = tuple(shape.c_names)
    if schema_names != tuple(shape.schema_names) or len(schema_names) != len(
        a_names + c_names
    ):
        findings.append(
            finding(
                "RP601",
                f"quotient schema {schema_names!r} disagrees with the shape's "
                f"output schema {tuple(shape.schema_names)!r} "
                f"(A+C = {a_names + c_names!r})",
                where,
                origin="view",
            )
        )
    if counters is None:
        return findings  # not built yet: nothing else to compare
    if counters.kind != shape.kind:
        findings.append(
            finding(
                "RP601",
                f"counter table kind {counters.kind!r} disagrees with the "
                f"division shape kind {shape.kind!r}",
                where,
                origin="view",
            )
        )
    if counters.a_width != len(a_names) or counters.c_width != len(c_names):
        findings.append(
            finding(
                "RP601",
                f"counter widths a={counters.a_width} c={counters.c_width} "
                f"disagree with the shape's |A|={len(a_names)} |C|={len(c_names)}",
                where,
                origin="view",
            )
        )
    width = len(a_names) + len(c_names)
    bad = sorted(t for t in counters.quotient_tuples() if len(t) != width)
    if bad:
        findings.append(
            finding(
                "RP601",
                f"quotient tuple {bad[0]!r} has width {len(bad[0])}, "
                f"schema expects {width}",
                where,
                origin="view",
            )
        )
    return findings


def _check_delta_coverage(view: Any, where: str) -> list[Any]:
    """RP602: full {target} x {operation} rule coverage, with conditions."""
    findings = []
    rules = getattr(view, "delta_rules", {}) or {}
    for key in _REQUIRED_DELTAS:
        rule = rules.get(key)
        if rule is None:
            findings.append(
                finding(
                    "RP602",
                    f"no delta rule registered for {key[0]} {key[1]}",
                    where,
                    origin="view",
                )
            )
            continue
        if not getattr(rule, "conditions", ()):
            findings.append(
                finding(
                    "RP602",
                    f"delta rule {rule.name!r} declares no conditions "
                    "(RP403 contract)",
                    where,
                    origin="view",
                )
            )
        if getattr(view, "maintained", False) and not rule.matches(view.expression):
            findings.append(
                finding(
                    "RP602",
                    f"view is marked maintained but delta rule {rule.name!r} "
                    "does not match its expression",
                    where,
                    origin="view",
                )
            )
    return findings


def _check_version_monotonicity(view: Any, database: Any, where: str) -> list[Any]:
    """RP603: applied versions must be monotone with the tables' versions."""
    findings = []
    applied = dict(getattr(view, "applied_versions", {}) or {})
    counters = getattr(view, "counters", None)
    for table, version in sorted(applied.items()):
        try:
            current = database.table_version(table)
        except (KeyError, ReproError):
            findings.append(
                finding(
                    "RP603",
                    f"view applied versions name unknown table {table!r}",
                    where,
                    origin="view",
                )
            )
            continue
        if version > current:
            findings.append(
                finding(
                    "RP603",
                    f"view claims {table!r}@v{version} but the table is at "
                    f"v{current} — the view is ahead of its base table",
                    where,
                    origin="view",
                )
            )
        elif version < current and getattr(view, "maintained", False) and counters is not None:
            # Mutations are routed synchronously, so a built maintained
            # view behind its base table has missed a delta.
            findings.append(
                finding(
                    "RP603",
                    f"maintained view is behind {table!r}: applied v{version}, "
                    f"table at v{current} — a delta was not incorporated",
                    where,
                    origin="view",
                )
            )
    return findings


def _check_base_tables(view: Any, database: Any, where: str) -> list[Any]:
    """RP604: every referenced name must be a base table, never a view."""
    findings = []
    views = getattr(database, "views", ())
    name = getattr(view, "name", "")
    for table in sorted(view.tables):
        if table != name and table in views:
            findings.append(
                finding(
                    "RP604",
                    f"view reads {table!r}, which is itself a view — delta "
                    "routing is keyed by base-table name and would miss its "
                    "changes",
                    where,
                    origin="view",
                )
            )
    return findings


def verify_view(view: Any, database: Optional[Any] = None) -> VerificationReport:
    """Check one maintained view's RP601–RP604 invariants.

    ``database`` defaults to the view's owning session; passing one
    explicitly lets tests verify a view against a different (corrupted)
    catalog state.
    """
    if database is None:
        database = view.database
    where = f"view {getattr(view, 'name', '?')!r}"
    findings = []
    findings.extend(_check_counter_schema(view, where))
    findings.extend(_check_delta_coverage(view, where))
    findings.extend(_check_version_monotonicity(view, database, where))
    findings.extend(_check_base_tables(view, database, where))
    checked = 1 + len(_REQUIRED_DELTAS) + len(view.tables)
    return VerificationReport(findings=tuple(findings), passes=("view",), checked=checked)
