"""Schema-soundness and operator-contract verification of plans.

Two passes share this module:

* :func:`verify_expression` walks a **logical** expression bottom-up and
  recomputes every node's output schema from its children with independent
  logic (not the nodes' own cached ``_infer_schema`` results), so a tree
  corrupted *after* construction — a buggy rewrite mutating attributes in
  place, a stale cached schema — is caught even though the constructor-time
  validation never re-runs.

* :func:`verify_physical` walks a **physical** plan and checks (a) the same
  schema laws against each operator class's semantics, (b) the operator
  contracts: every class declares its own
  :class:`~repro.physical.base.PhysicalProperties`, parallel wrappers only
  wrap algorithms marked
  :attr:`~repro.physical.base.PhysicalOperator.key_disjoint_safe`, exchange
  partition keys cover the grouping/quotient keys, exchange shapes are
  sane, and task payloads are statically pickle-safe, and (c) join/division
  key **type agreement** by propagating sampled column types up from the
  leaf scans (a warning, since it is data-sampled, not declared).

All checks are static — nothing is executed, no operator state is consumed.
"""

from __future__ import annotations

import itertools
import pickle
from typing import Any, Optional

from repro.algebra.expressions import (
    AntiJoin,
    Difference,
    Expression,
    GreatDivide,
    GroupBy,
    Intersection,
    LeftOuterJoin,
    LiteralRelation,
    NaturalJoin,
    Product,
    Project,
    RelationRef,
    Rename,
    Select,
    SemiJoin,
    SmallDivide,
    ThetaJoin,
    Union,
)
from repro.algebra.predicates import Predicate
from repro.analysis.findings import Finding, finding
from repro.errors import ExecutionError, ReproError
from repro.faults import registry as fault_registry
from repro.physical.aggregate import HashAggregate
from repro.physical.base import PhysicalOperator, PhysicalProperties
from repro.physical.basic import (
    DifferenceOp,
    DuplicateElimination,
    Filter,
    IntersectOp,
    ProductOp,
    ProjectOp,
    RenameOp,
    UnionOp,
)
from repro.physical.division.great_divide_ops import (
    GREAT_DIVIDE_ALGORITHMS,
    GreatDivisionOperator,
    _great_division_schemas,
)
from repro.physical.division.small_divide_ops import (
    SMALL_DIVIDE_ALGORITHMS,
    DivisionOperator,
    _division_schemas,
)
from repro.physical.joins import (
    JOIN_ALGORITHMS,
    HashAntiJoin,
    HashJoin,
    HashLeftOuterJoin,
    HashSemiJoin,
    NestedLoopsJoin,
    NestedLoopsNaturalJoin,
)
from repro.physical.parallel.operators import (
    PartitionedAggregate,
    PartitionedDivision,
    PartitionedHashJoin,
    PartitionedOperator,
)
from repro.physical.scans import RelationScan, TableScan
from repro.relation.relation import NULL
from repro.relation.schema import Schema
from repro.storage.scan import StoredScan

__all__ = ["verify_expression", "verify_physical"]

#: How many leaf tuples the type-agreement check samples per scan.
_TYPE_SAMPLE = 200

#: Mapping of name → relation (duck-typed: Catalog or plain dict).
CatalogLike = Any


# ======================================================================
# logical pass
# ======================================================================
def verify_expression(
    expression: Expression, catalog: Optional[CatalogLike] = None
) -> tuple[list[Finding], int]:
    """Schema-soundness findings for a logical expression tree.

    Returns ``(findings, nodes_checked)``.  ``catalog`` (when given) lets
    :class:`RelationRef` declarations be checked against the live tables.
    """
    findings: list[Finding] = []
    seen: set[int] = set()
    order: list[Expression] = []

    def collect(node: Expression) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        for child in node.children:
            collect(child)
        order.append(node)  # post-order: children precede parents

    collect(expression)

    for index, node in enumerate(order):
        where = f"{index:02d}:{node._pretty_label()}"
        before = len(findings)
        expected = _expected_logical_schema(node, findings, where, catalog)
        if expected is None or len(findings) > before:
            continue  # a specific finding already explains this node
        try:
            cached = node.schema
        except ReproError as error:
            findings.append(
                finding("RP106", f"schema computation failed: {error}", where, "logical")
            )
            continue
        if cached.name_set != expected.name_set:
            findings.append(
                finding(
                    "RP106",
                    f"cached schema {sorted(cached.name_set)!r} differs from the recomputed "
                    f"schema {sorted(expected.name_set)!r}",
                    where,
                    "logical",
                )
            )
    return findings, len(order)


def _expected_logical_schema(
    node: Expression,
    findings: list[Finding],
    where: str,
    catalog: Optional[CatalogLike],
) -> Optional[Schema]:
    """Recompute ``node``'s output schema from its children's cached schemas.

    Appends specific findings (RP101–RP105, RP107) and returns ``None``
    when the node is too broken for a schema to exist.
    """

    def emit(code: str, message: str) -> None:
        findings.append(finding(code, message, where, "logical"))

    if isinstance(node, RelationRef):
        declared = node.schema
        if catalog is not None:
            try:
                relation = catalog[node.name]
            except KeyError:
                emit("RP107", f"relation {node.name!r} is not in the catalog")
                return None
            if relation.schema.name_set != declared.name_set:
                emit(
                    "RP107",
                    f"relation {node.name!r} declares {sorted(declared.name_set)!r} but the "
                    f"catalog table has {sorted(relation.schema.name_set)!r}",
                )
                return None
        return declared
    if isinstance(node, LiteralRelation):
        return node.relation.schema

    child_schemas = [child.schema for child in node.children]

    if isinstance(node, Project):
        (child,) = child_schemas
        missing = node.attributes.name_set - child.name_set
        if missing:
            emit("RP101", f"projection references unknown attributes {sorted(missing)!r}")
            return None
        return node.attributes
    if isinstance(node, Select):
        (child,) = child_schemas
        missing = node.predicate.attributes - child.name_set
        if missing:
            emit("RP101", f"selection predicate references unknown attributes {sorted(missing)!r}")
            return None
        return child
    if isinstance(node, Rename):
        (child,) = child_schemas
        unknown = set(node.mapping) - child.name_set
        if unknown:
            emit("RP101", f"rename maps unknown attributes {sorted(unknown)!r}")
            return None
        renamed = [node.mapping.get(name, name) for name in child.names]
        duplicates = sorted({name for name in renamed if renamed.count(name) > 1})
        if duplicates:
            emit("RP102", f"rename targets collide on {duplicates!r}")
            return None
        return Schema(tuple(renamed))
    if isinstance(node, GroupBy):
        (child,) = child_schemas
        missing = node.grouping.name_set - child.name_set
        if missing:
            emit("RP101", f"grouping references unknown attributes {sorted(missing)!r}")
            return None
        for spec in node.aggregates:
            if spec.attribute is not None and spec.attribute not in child.name_set:
                emit("RP101", f"aggregate {spec.to_text()} references unknown attribute")
                return None
        outputs = node.grouping.names + tuple(spec.output for spec in node.aggregates)
        duplicates = sorted({name for name in outputs if outputs.count(name) > 1})
        if duplicates:
            emit("RP102", f"grouping output attributes collide on {duplicates!r}")
            return None
        return Schema(outputs)
    if isinstance(node, (Union, Intersection, Difference)):
        left, right = child_schemas
        if left.name_set != right.name_set:
            emit(
                "RP104",
                f"{type(node).__name__.lower()} inputs have different attribute sets: "
                f"{sorted(left.name_set)!r} vs {sorted(right.name_set)!r}",
            )
            return None
        return left
    if isinstance(node, (Product, ThetaJoin)):
        left, right = child_schemas
        shared = left.intersection(right)
        if len(shared):
            emit("RP105", f"both inputs carry attributes {sorted(shared.name_set)!r}")
            return None
        combined = left.union(right)
        if isinstance(node, ThetaJoin):
            missing = node.predicate.attributes - combined.name_set
            if missing:
                emit(
                    "RP101",
                    f"theta-join predicate references unknown attributes {sorted(missing)!r}",
                )
                return None
        return combined
    if isinstance(node, (NaturalJoin, LeftOuterJoin)):
        left, right = child_schemas
        return left.union(right)
    if isinstance(node, (SemiJoin, AntiJoin)):
        return child_schemas[0]
    if isinstance(node, SmallDivide):
        dividend, divisor = child_schemas
        if len(divisor) == 0:
            emit("RP103", "small divide: divisor schema is empty")
            return None
        if not divisor.is_subset(dividend):
            extra = sorted(divisor.difference(dividend).name_set)
            emit("RP103", f"small divide: divisor attributes {extra!r} missing from the dividend")
            return None
        quotient = dividend.difference(divisor)
        if len(quotient) == 0:
            emit("RP103", "small divide: quotient schema A is empty")
            return None
        return quotient
    if isinstance(node, GreatDivide):
        dividend, divisor = child_schemas
        shared = dividend.intersection(divisor)
        if len(shared) == 0:
            emit("RP103", "great divide: dividend and divisor share no attributes (B is empty)")
            return None
        quotient_a = dividend.difference(shared)
        if len(quotient_a) == 0:
            emit("RP103", "great divide: dividend-only attribute set A is empty")
            return None
        return quotient_a.union(divisor.difference(shared))
    # Unknown node kinds (extensions) pass through on their own word.
    return node.schema


# ======================================================================
# physical pass
# ======================================================================
def verify_physical(plan: PhysicalOperator) -> tuple[list[Finding], int]:
    """Schema/contract findings for a physical plan.  ``(findings, count)``."""
    findings: list[Finding] = []
    type_cache: dict[int, dict[str, frozenset[str]]] = {}
    seen: set[int] = set()
    count = 0
    for operator in plan.walk():
        if id(operator) in seen:
            continue
        seen.add(id(operator))
        count += 1
        where = operator.label
        _check_properties_contract(operator, findings, where)
        _check_operator_schema(operator, findings, where, type_cache)
        if isinstance(operator, PartitionedOperator):
            _check_exchange_contract(operator, findings, where)
    _check_fault_plan(findings)
    return findings, count


def _check_fault_plan(findings: list[Finding]) -> None:
    """RP704: every point of the active fault plan must be registered.

    A typo in a ``REPRO_FAULTS`` entry (``pool.worker`` misspelled as
    ``pool.workers``) would otherwise arm a plan that silently never
    fires — the chaos run would pass without testing anything.
    """
    plan = fault_registry.active_plan()
    if plan is None:
        return
    for point in sorted(set(plan.points()) - fault_registry.FAULT_POINTS):
        findings.append(
            finding(
                "RP704",
                f"fault plan targets unregistered point {point!r}; "
                f"registered points: {sorted(fault_registry.FAULT_POINTS)}",
                "fault-plan",
                "physical",
            )
        )


def _check_properties_contract(
    operator: PhysicalOperator, findings: list[Finding], where: str
) -> None:
    """RP201: every concrete operator class owns a PhysicalProperties."""
    cls = type(operator)
    if not isinstance(cls.properties, PhysicalProperties):
        findings.append(
            finding(
                "RP201",
                f"{cls.__name__}.properties is {type(cls.properties).__name__}, "
                "not PhysicalProperties",
                where,
                "physical",
            )
        )
        return
    owner = next(base for base in cls.__mro__ if "properties" in vars(base))
    if owner is PhysicalOperator and cls is not PhysicalOperator:
        findings.append(
            finding(
                "RP201",
                f"{cls.__name__} inherits the base-class default PhysicalProperties; "
                "operator classes must declare their own cost descriptor",
                where,
                "physical",
            )
        )


def _check_operator_schema(
    operator: PhysicalOperator,
    findings: list[Finding],
    where: str,
    type_cache: dict[int, dict[str, frozenset[str]]],
) -> None:
    """RP101/102/103/104/105/111/112 for one physical operator."""

    def emit(code: str, message: str) -> None:
        findings.append(finding(code, message, where, "physical"))

    def require_schema(expected: Schema, what: str) -> None:
        if operator.schema.name_set != expected.name_set:
            emit(
                "RP111",
                f"output schema {sorted(operator.schema.name_set)!r} is not {what} "
                f"{sorted(expected.name_set)!r}",
            )

    children = operator.children
    if isinstance(operator, StoredScan):
        require_schema(operator.relation.schema, "the scanned relation's schema")
        _check_stored_scan(operator, findings, where)
        return
    if isinstance(operator, (TableScan, RelationScan)):
        require_schema(operator.relation.schema, "the scanned relation's schema")
        return
    if isinstance(operator, Filter):
        (child,) = children
        require_schema(child.schema, "the child schema")
        predicate = operator.predicate
        if isinstance(predicate, Predicate):
            missing = predicate.attributes - child.schema.name_set
            if missing:
                emit("RP101", f"filter predicate references unknown attributes {sorted(missing)!r}")
        return
    if isinstance(operator, (DuplicateElimination,)):
        require_schema(children[0].schema, "the child schema")
        return
    if isinstance(operator, ProjectOp):
        (child,) = children
        missing = operator.schema.name_set - child.schema.name_set
        if missing:
            emit("RP101", f"projection references unknown attributes {sorted(missing)!r}")
        return
    if isinstance(operator, RenameOp):
        (child,) = children
        unknown = set(operator.mapping) - child.schema.name_set
        if unknown:
            emit("RP101", f"rename maps unknown attributes {sorted(unknown)!r}")
            return
        renamed = [operator.mapping.get(name, name) for name in child.schema.names]
        duplicates = sorted({name for name in renamed if renamed.count(name) > 1})
        if duplicates:
            emit("RP102", f"rename targets collide on {duplicates!r}")
            return
        require_schema(Schema(tuple(renamed)), "the renamed child schema")
        return
    if isinstance(operator, (UnionOp, IntersectOp, DifferenceOp)):
        left, right = children
        if left.schema.name_set != right.schema.name_set:
            emit(
                "RP104",
                f"set-operation inputs have different attribute sets: "
                f"{sorted(left.schema.name_set)!r} vs {sorted(right.schema.name_set)!r}",
            )
            return
        require_schema(left.schema, "the input schema")
        return
    if isinstance(operator, ProductOp):
        left, right = children
        shared = left.schema.intersection(right.schema)
        if len(shared):
            emit("RP105", f"product inputs share attributes {sorted(shared.name_set)!r}")
            return
        require_schema(left.schema.union(right.schema), "the combined input schema")
        return
    if isinstance(operator, NestedLoopsJoin):
        left, right = children
        combined = left.schema.union(right.schema)
        require_schema(combined, "the combined input schema")
        predicate = operator.predicate
        if isinstance(predicate, Predicate):
            missing = predicate.attributes - combined.name_set
            if missing:
                emit("RP101", f"join predicate references unknown attributes {sorted(missing)!r}")
        return
    if isinstance(operator, (HashJoin, NestedLoopsNaturalJoin, HashLeftOuterJoin)):
        left, right = children
        require_schema(left.schema.union(right.schema), "the combined input schema")
        _check_key_types(
            operator,
            left.schema.intersection(right.schema),
            left,
            right,
            findings,
            where,
            type_cache,
        )
        return
    if isinstance(operator, (HashSemiJoin, HashAntiJoin)):
        require_schema(children[0].schema, "the left input schema")
        return
    if isinstance(operator, DivisionOperator):
        if len(children) != 2:
            # Expansion-style algorithms (algebra simulation) replace their
            # children with the expanded sub-plan, which streams the
            # quotient directly.
            require_schema(children[0].schema, "the expanded sub-plan's schema")
            return
        dividend, divisor = children
        try:
            schemas = _division_schemas(dividend, divisor)
        except ExecutionError as error:
            emit("RP103", str(error))
            return
        require_schema(schemas.quotient, "the quotient schema (dividend - divisor)")
        _check_key_types(operator, schemas.b, dividend, divisor, findings, where, type_cache)
        return
    if isinstance(operator, GreatDivisionOperator):
        if len(children) != 2:
            require_schema(children[0].schema, "the expanded sub-plan's schema")
            return
        dividend, divisor = children
        try:
            quotient_a, shared, group_c = _great_division_schemas(dividend, divisor)
        except ExecutionError as error:
            emit("RP103", str(error))
            return
        require_schema(quotient_a.union(group_c), "A + (divisor - B)")
        _check_key_types(operator, shared, dividend, divisor, findings, where, type_cache)
        return
    if isinstance(operator, HashAggregate):
        (child,) = children
        missing = operator._grouping.name_set - child.schema.name_set
        if missing:
            emit("RP101", f"grouping references unknown attributes {sorted(missing)!r}")
            return
        expected = operator._grouping.names + tuple(operator._aggregations.keys())
        duplicates = sorted({name for name in expected if expected.count(name) > 1})
        if duplicates:
            emit("RP102", f"grouping output attributes collide on {duplicates!r}")
            return
        require_schema(Schema(expected), "grouping + aggregate outputs")
        return
    if isinstance(operator, PartitionedDivision):
        dividend, divisor = children
        try:
            if operator.kind == "small":
                schemas = _division_schemas(dividend, divisor)
                expected_key, expected_schema = schemas.a, schemas.quotient
            else:
                quotient_a, _shared, group_c = _great_division_schemas(dividend, divisor)
                expected_key, expected_schema = quotient_a, quotient_a.union(group_c)
        except ExecutionError as error:
            emit("RP103", str(error))
            return
        require_schema(expected_schema, "the quotient schema")
        if operator.partition_key.name_set != expected_key.name_set:
            emit(
                "RP203",
                f"partition key {sorted(operator.partition_key.name_set)!r} does not match the "
                f"quotient attributes {sorted(expected_key.name_set)!r}",
            )
        return
    if isinstance(operator, PartitionedHashJoin):
        left, right = children
        shared = left.schema.intersection(right.schema)
        require_schema(left.schema.union(right.schema), "the combined input schema")
        if len(shared) == 0:
            emit("RP203", "partitioned join over inputs with no shared attributes")
            return
        key = operator.partition_key.name_set
        if not key or not key.issubset(shared.name_set):
            emit(
                "RP203",
                f"partition key {sorted(key)!r} is not a nonempty subset of the shared "
                f"attributes {sorted(shared.name_set)!r}",
            )
        _check_key_types(operator, shared, left, right, findings, where, type_cache)
        return
    if isinstance(operator, PartitionedAggregate):
        (child,) = children
        key = operator.partition_key.name_set
        if not key or not key.issubset(child.schema.name_set):
            emit(
                "RP203",
                f"partition key {sorted(key)!r} is not a nonempty subset of the input "
                f"schema {sorted(child.schema.name_set)!r}",
            )
            return
        if not key.issubset(operator.schema.name_set):
            emit(
                "RP203",
                f"partition key {sorted(key)!r} does not survive into the output schema "
                f"{sorted(operator.schema.name_set)!r} (groups would merge across partitions)",
            )
        return
    # Other operators (extensions, composite internals) carry their own word.


def _check_stored_scan(operator: StoredScan, findings: list[Finding], where: str) -> None:
    """RP501–RP504 for one stored-table scan.

    Cross-checks the operator's schema against the table file header, every
    block's zone map against the stored attributes (an unknown attribute or
    an inverted ``min > max`` interval would silently skip matching blocks),
    the block index's tuple counts against the header total, and any pushed
    skip predicate against the scan schema.  All metadata reads — no block
    is decoded.
    """

    def emit(code: str, message: str) -> None:
        findings.append(finding(code, message, where, "storage"))

    reader = operator.relation.reader
    stored = set(reader.attributes)
    if stored != set(operator.schema.name_set):
        emit(
            "RP501",
            f"scan schema {sorted(operator.schema.name_set)!r} disagrees with the "
            f"table file header {sorted(stored)!r} ({reader.path})",
        )
        return
    checksummed = reader.format_version >= 2
    if not checksummed:
        emit(
            "RP701",
            f"table file {reader.path} predates per-block checksums (format v1); "
            "re-save the store to upgrade it to the checksummed v2 format",
        )
    indexed = 0
    for number, meta in enumerate(reader.blocks):
        indexed += meta.get("count", 0)
        if checksummed and not isinstance(meta.get("crc"), int):
            emit(
                "RP702",
                f"block {number} of checksummed file {reader.path} has no CRC entry; "
                "corruption in it would go undetected",
            )
        zones = meta.get("zones") or {}
        for attribute, bounds in zones.items():
            if attribute not in stored:
                emit(
                    "RP502",
                    f"block {number} has a zone map for unknown attribute {attribute!r}",
                )
                continue
            try:
                low, high = bounds
                inverted = high < low
            except (TypeError, ValueError):
                emit(
                    "RP502",
                    f"block {number} zone map for {attribute!r} is not a comparable "
                    f"(min, max) pair: {bounds!r}",
                )
                continue
            if inverted:
                emit(
                    "RP502",
                    f"block {number} zone map for {attribute!r} is inverted: "
                    f"min {low!r} > max {high!r}",
                )
    if indexed != reader.tuple_count:
        emit(
            "RP504",
            f"block index holds {indexed} tuples but the header declares "
            f"{reader.tuple_count}",
        )
    predicate = operator.skip_predicate
    if predicate is not None:
        missing = predicate.attributes - operator.schema.name_set
        if missing:
            emit(
                "RP503",
                f"skip predicate references attributes {sorted(missing)!r} outside "
                f"the scan schema",
            )


def _check_exchange_contract(
    operator: PartitionedOperator, findings: list[Finding], where: str
) -> None:
    """RP202/RP204/RP206/RP505 for one exchange wrapper."""

    def emit(code: str, message: str) -> None:
        findings.append(finding(code, message, where, "physical"))

    budget = getattr(operator, "memory_budget_mb", None)
    if budget is not None and budget <= 0:
        emit("RP505", f"exchange memory budget must be positive, got {budget!r}")

    if operator.partitions < 1 or operator.workers < 1:
        emit(
            "RP206",
            f"exchange shape invalid: partitions={operator.partitions}, "
            f"workers={operator.workers}",
        )

    policy = getattr(operator, "retry_policy", None)
    if policy is not None:
        problems = []
        if policy.max_retries < 0:
            problems.append(f"max_retries={policy.max_retries} (must be >= 0)")
        if policy.backoff_seconds < 0:
            problems.append(f"backoff_seconds={policy.backoff_seconds} (must be >= 0)")
        if policy.backoff_multiplier < 1.0:
            problems.append(
                f"backoff_multiplier={policy.backoff_multiplier} (must be >= 1)"
            )
        if policy.jitter < 0:
            problems.append(f"jitter={policy.jitter} (must be >= 0)")
        if policy.timeout_seconds is not None and policy.timeout_seconds <= 0:
            problems.append(
                f"timeout_seconds={policy.timeout_seconds} (must be positive or None)"
            )
        if problems:
            emit("RP703", "retry policy is unsound: " + "; ".join(problems))

    registry: Optional[dict[str, type]] = None
    if isinstance(operator, PartitionedDivision):
        registry = dict(
            SMALL_DIVIDE_ALGORITHMS if operator.kind == "small" else GREAT_DIVIDE_ALGORITHMS
        )
    elif isinstance(operator, PartitionedHashJoin):
        registry = dict(JOIN_ALGORITHMS)
    if registry is not None:
        algorithm = getattr(operator, "algorithm", None)
        inner = registry.get(algorithm) if algorithm is not None else None
        if inner is None:
            emit(
                "RP202",
                f"wrapped algorithm {algorithm!r} is not registered; "
                f"choose from {sorted(registry)}",
            )
        elif not getattr(inner, "key_disjoint_safe", False):
            emit(
                "RP202",
                f"wrapped algorithm {algorithm!r} ({inner.__name__}) is not marked "
                "key_disjoint_safe; running it per partition is not proven sound",
            )
    if isinstance(operator, PartitionedAggregate):
        payload: Any = operator._specs if operator._specs is not None else operator._aggregations
        try:
            pickle.dumps(payload)
        except Exception as error:  # pickling raises a zoo of exception types
            degrade = (
                " (the pool layer will degrade to inline serial execution)"
                if operator._specs is None
                else ""
            )
            emit("RP204", f"aggregate payload does not pickle: {error}{degrade}")


# ----------------------------------------------------------------------
# sampled column types (RP112)
# ----------------------------------------------------------------------
def _normalize_type(value: Any) -> str:
    name = type(value).__name__
    return "int" if name == "bool" else name


def _column_types(
    operator: PhysicalOperator, cache: dict[int, dict[str, frozenset[str]]]
) -> dict[str, frozenset[str]]:
    """attribute → sampled value-type names, propagated up from leaf scans."""
    key = id(operator)
    cached = cache.get(key)
    if cached is not None:
        return cached
    result: dict[str, frozenset[str]]
    if isinstance(operator, StoredScan):
        # Sample from the leading blocks only — never the whole stored table.
        names = operator.relation.schema.names
        columns = [set() for _ in names]
        for values in operator.relation.sample_tuples(_TYPE_SAMPLE):
            for position, value in enumerate(values):
                if value is not None and value is not NULL:
                    columns[position].add(_normalize_type(value))
        result = {name: frozenset(types) for name, types in zip(names, columns) if types}
    elif isinstance(operator, (TableScan, RelationScan)):
        names = operator.relation.schema.names
        columns: list[set[str]] = [set() for _ in names]
        for values in itertools.islice(operator.relation.aligned_tuples(), _TYPE_SAMPLE):
            for position, value in enumerate(values):
                if value is not None and value is not NULL:
                    columns[position].add(_normalize_type(value))
        result = {name: frozenset(types) for name, types in zip(names, columns) if types}
    else:
        merged: dict[str, set[str]] = {}
        for child in operator.children:
            for name, types in _column_types(child, cache).items():
                merged.setdefault(name, set()).update(types)
        if isinstance(operator, RenameOp):
            merged = {operator.mapping.get(name, name): types for name, types in merged.items()}
        result = {
            name: frozenset(merged[name]) for name in operator.schema.names if merged.get(name)
        }
    cache[key] = result
    return result


def _check_key_types(
    operator: PhysicalOperator,
    key: Schema,
    left: PhysicalOperator,
    right: PhysicalOperator,
    findings: list[Finding],
    where: str,
    type_cache: dict[int, dict[str, frozenset[str]]],
) -> None:
    """RP112: both sides of a join/division key should carry the same types."""
    if len(key) == 0:
        return
    left_types = _column_types(left, type_cache)
    right_types = _column_types(right, type_cache)
    for name in key.names:
        on_left = left_types.get(name)
        on_right = right_types.get(name)
        if on_left and on_right and not (on_left & on_right):
            findings.append(
                finding(
                    "RP112",
                    f"key attribute {name!r} is {'/'.join(sorted(on_left))} on the left but "
                    f"{'/'.join(sorted(on_right))} on the right; equality can never hold",
                    where,
                    "physical",
                )
            )
