"""Static analysis of plans, compiled segments and engine contracts.

Three passes, one currency (:class:`~repro.analysis.findings.Finding`):

* the **plan verifier** (:mod:`repro.analysis.plan_verifier`) checks
  schema soundness of logical expressions and physical plans plus the
  operator contracts (RP1xx/RP2xx);
* the **codegen auditor** (:mod:`repro.analysis.codegen_auditor`) proves
  each compiled segment's generated source effect-free and structurally
  faithful to the chain it replaced (RP3xx);
* the **engine-contract linter** (``scripts/lint_engine.py``) enforces
  repo-wide source rules (RP4xx) and shares the finding registry.

Entry points: ``repro check`` (CLI), ``Query.verify()`` /
``explain(verify=True)`` (API), and the executor's debug pre-execution
hook (``REPRO_VERIFY=1`` or ``execute_plan(..., verify=True)``).
"""

from repro.analysis.check import (
    CheckRun,
    WorkloadCheck,
    check_workloads,
    verify_expression_tree,
    verify_plan,
    verify_prepared,
)
from repro.analysis.codegen_auditor import audit_plan, audit_source
from repro.analysis.findings import (
    FINDING_CODES,
    Finding,
    Severity,
    VerificationReport,
    finding,
)
from repro.analysis.plan_verifier import verify_expression, verify_physical
from repro.analysis.view_verifier import verify_view

__all__ = [
    "FINDING_CODES",
    "CheckRun",
    "Finding",
    "Severity",
    "VerificationReport",
    "WorkloadCheck",
    "audit_plan",
    "audit_source",
    "check_workloads",
    "finding",
    "verify_expression",
    "verify_expression_tree",
    "verify_physical",
    "verify_plan",
    "verify_prepared",
    "verify_view",
]
