"""Codegen audit: prove compiled-segment source effect-free and faithful.

The segment compiler (:mod:`repro.physical.compile.segments`) emits textual
Python and ``exec``\\ s it.  That is exactly the kind of code a reviewer
cannot eyeball per-plan, so this pass parses every generated source with
:mod:`ast` and proves three things statically:

* **effect-free** — the function calls nothing outside the binding
  whitelist (``_pull``, ``set``/``len``/``map``, ``_bN`` bindings,
  ``_addN`` dedup adders, ``_chunk.aligned``), never imports, never writes
  global/nonlocal state, and the only mutation is the sanctioned
  ``_bN.tuples_out += len(_t)`` counter contract (RP301/RP302);
* **binding-stable** — no statement or comprehension rebinds a ``_bN``
  name after the initial ``(_b0, …) = _bind`` unpack, so every binding
  still means what the compiler bound (RP303);
* **structurally faithful** — the statement sequence matches the fused
  operator chain one-for-one: one filter list-comprehension per ``Filter``
  (with one ``ast.Compare`` per inlined predicate comparison), one
  ``map``-comprehension per ``ProjectOp``, one counter bump per interior
  stage, and the trailing ``if _t: yield`` emit (RP304).

:func:`audit_plan` also re-derives each compiled root's chain and rejects
producers attached to non-fusable or non-streaming chains (RP205).
"""

from __future__ import annotations

import ast
import re
from typing import Callable, Optional

from repro.algebra.predicates import (
    And,
    Comparison,
    Not,
    Or,
    Predicate,
)
from repro.analysis.findings import Finding, finding
from repro.physical.base import PhysicalOperator
from repro.physical.basic import Filter, ProjectOp, RenameOp
from repro.physical.compile.segments import (
    FUSABLE_OPERATORS,
    _chain,
    _predicate_source,
    _SourceBuilder,
)

__all__ = ["audit_plan", "audit_source"]

#: Signature of the per-audit finding collector the helpers share.
Emit = Callable[[str, str], None]

_BINDING = re.compile(r"^_b\d+$")
_ADDER = re.compile(r"^_add\d+$")
_SEEN = re.compile(r"^_seen\d+$")

#: Plain-name calls the generated source may make besides bindings/adders.
_CALL_WHITELIST = frozenset({"_pull", "set", "len", "map"})


# ======================================================================
# entry points
# ======================================================================
def audit_plan(plan: PhysicalOperator) -> tuple[list[Finding], int]:
    """Audit every compiled segment attached to ``plan``.

    Returns ``(findings, segments_audited)``.
    """
    findings: list[Finding] = []
    seen: set[int] = set()
    audited = 0
    for operator in plan.walk():
        if id(operator) in seen or operator._compiled_producer is None:
            continue
        seen.add(id(operator))
        audited += 1
        where = operator.label
        if not isinstance(operator, FUSABLE_OPERATORS):
            findings.append(
                finding(
                    "RP205",
                    f"compiled producer attached to non-fusable {type(operator).__name__}",
                    where,
                    "codegen",
                )
            )
            continue
        stages = _chain(operator)
        broken = [
            type(stage).__name__
            for stage in stages
            if not type(stage).properties.streaming
        ]
        if broken:
            findings.append(
                finding(
                    "RP205",
                    f"fused chain contains non-streaming stage(s) {broken!r}",
                    where,
                    "codegen",
                )
            )
            continue
        fused = getattr(operator, "_compiled_fused", None)
        if fused is not None and fused != len(stages):
            findings.append(
                finding(
                    "RP205",
                    f"producer was compiled for {fused} stage(s) but the chain now has "
                    f"{len(stages)}; the plan changed after compilation",
                    where,
                    "codegen",
                )
            )
            continue
        source = getattr(operator, "_compiled_source", None)
        if not source:
            findings.append(
                finding("RP305", "compiled producer has no recorded source", where, "codegen")
            )
            continue
        findings.extend(audit_source(source, stages, where))
    return findings, audited


def audit_source(
    source: str,
    stages: Optional[list[PhysicalOperator]] = None,
    where: str = "segment",
) -> list[Finding]:
    """Audit one generated source string (optionally against its chain).

    ``stages`` is the fused chain bottom-first, as
    :func:`repro.physical.compile.segments._chain` returns it; without it
    only the effect-freedom checks (RP301/302/303/305) run.
    """
    findings: list[Finding] = []

    def emit(code: str, message: str) -> None:
        findings.append(finding(code, message, where, "codegen"))

    try:
        module = ast.parse(source)
    except SyntaxError as error:
        emit("RP305", f"generated source does not parse: {error}")
        return findings

    function = _segment_function(module, emit)
    if function is None:
        return findings

    _check_effects(function, emit)
    if stages is not None and not findings:
        _check_structure(function, stages, emit)
    return findings


# ======================================================================
# helpers
# ======================================================================
def _segment_function(module: ast.Module, emit: Emit) -> Optional[ast.FunctionDef]:
    """The single ``_segment(_pull, _bind)`` definition, or None + finding."""
    if len(module.body) != 1 or not isinstance(module.body[0], ast.FunctionDef):
        emit("RP304", "module is not exactly one function definition")
        return None
    function = module.body[0]
    arguments = [argument.arg for argument in function.args.args]
    if function.name != "_segment" or arguments != ["_pull", "_bind"]:
        emit("RP304", f"expected _segment(_pull, _bind), got {function.name}({arguments})")
        return None
    return function


def _call_allowed(call: ast.Call) -> bool:
    target = call.func
    if isinstance(target, ast.Name):
        name = target.id
        return name in _CALL_WHITELIST or bool(_BINDING.match(name) or _ADDER.match(name))
    if isinstance(target, ast.Attribute):
        # The only attribute call the compiler emits: _chunk.aligned(_bN).
        return (
            target.attr == "aligned"
            and isinstance(target.value, ast.Name)
            and target.value.id == "_chunk"
        )
    return False


def _check_effects(function: ast.FunctionDef, emit: Emit) -> None:
    """RP301 (calls), RP302 (writes), RP303 (binding shadowing)."""
    body = function.body
    unpack_ok = (
        bool(body)
        and isinstance(body[0], ast.Assign)
        and len(body[0].targets) == 1
        and isinstance(body[0].targets[0], ast.Tuple)
        and all(
            isinstance(element, ast.Name) and _BINDING.match(element.id)
            for element in body[0].targets[0].elts
        )
        and isinstance(body[0].value, ast.Name)
        and body[0].value.id == "_bind"
    )
    if not unpack_ok:
        emit("RP304", "first statement is not the (_b0, ...) = _bind unpack")
        return

    for node in ast.walk(function):
        if node is body[0]:
            continue  # the sanctioned unpack
        if isinstance(node, ast.Call) and not _call_allowed(node):
            emit("RP301", f"call outside the binding whitelist: {ast.unparse(node.func)}(...)")
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            emit("RP302", "generated source imports a module")
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            emit("RP302", f"generated source declares {type(node).__name__.lower()} names")
        elif isinstance(node, ast.Delete):
            emit("RP302", "generated source deletes names")
        elif isinstance(node, ast.AugAssign):
            sanctioned = (
                isinstance(node.target, ast.Attribute)
                and node.target.attr == "tuples_out"
                and isinstance(node.target.value, ast.Name)
                and bool(_BINDING.match(node.target.value.id))
                and isinstance(node.op, ast.Add)
            )
            if not sanctioned:
                emit("RP302", f"unsanctioned mutation: {ast.unparse(node)}")
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                _check_write_target(target, emit)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            for name_node in ast.walk(target):
                if isinstance(name_node, ast.Name) and _BINDING.match(name_node.id):
                    emit("RP303", f"loop target shadows binding {name_node.id}")
        elif (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and node is not function
        ):
            emit("RP302", f"generated source defines nested {type(node).__name__}")


def _check_write_target(target: ast.expr, emit: Emit) -> None:
    if isinstance(target, ast.Name):
        name = target.id
        if _BINDING.match(name):
            emit("RP303", f"assignment shadows binding {name}")
        elif name != "_t" and not (_SEEN.match(name) or _ADDER.match(name)):
            emit("RP302", f"assignment to unexpected name {name!r}")
    elif isinstance(target, (ast.Attribute, ast.Subscript)):
        emit("RP302", f"assignment to {ast.unparse(target)} mutates external state")
    else:  # tuple/starred targets never appear outside the unpack
        emit("RP302", f"unexpected assignment target {ast.unparse(target)}")


def _comparison_count(predicate: Predicate) -> int:
    if isinstance(predicate, Comparison):
        return 1
    if isinstance(predicate, (And, Or)):
        return sum(_comparison_count(operand) for operand in predicate.operands)
    if isinstance(predicate, Not):
        return _comparison_count(predicate.operand)
    return 0  # TruePredicate / FalsePredicate


def _check_structure(
    function: ast.FunctionDef, stages: list[PhysicalOperator], emit: Emit
) -> None:
    """RP304: the statement sequence matches the fused chain one-for-one."""
    loops = [node for node in function.body if isinstance(node, ast.For)]
    if len(loops) != 1:
        emit("RP304", f"expected exactly one chunk loop, found {len(loops)}")
        return
    loop = loops[0]

    statements = list(loop.body)
    if not statements:
        emit("RP304", "chunk loop body is empty")
        return
    entry = statements.pop(0)
    entry_ok = (
        isinstance(entry, ast.Assign)
        and isinstance(entry.value, ast.Attribute)
        and entry.value.attr == "tuples"
    )
    if not entry_ok:
        emit("RP304", "loop does not start with the _chunk.aligned(...).tuples entry")
        return

    tail = statements.pop() if statements else None
    emit_ok = (
        isinstance(tail, ast.If)
        and isinstance(tail.test, ast.Name)
        and tail.test.id == "_t"
        and len(tail.body) == 1
        and isinstance(tail.body[0], ast.Expr)
        and isinstance(tail.body[0].value, ast.Yield)
    )
    if not emit_ok:
        emit("RP304", "loop does not end with the `if _t: yield Chunk(...)` emit")
        return

    bumps = sum(1 for statement in statements if isinstance(statement, ast.AugAssign))
    expected_bumps = len(stages) - 1
    if bumps != expected_bumps:
        emit(
            "RP304",
            f"{bumps} interior counter bump(s) for {len(stages)} fused stage(s) "
            f"(expected {expected_bumps})",
        )

    transforms = [
        statement
        for statement in statements
        if isinstance(statement, ast.Assign) and not isinstance(statement.value, ast.Attribute)
    ]
    expected_stages = [stage for stage in stages if not isinstance(stage, RenameOp)]
    if len(transforms) != len(expected_stages):
        emit(
            "RP304",
            f"{len(transforms)} transform statement(s) for {len(expected_stages)} "
            "filter/projection stage(s)",
        )
        return

    # Replay the compiler's schema tracking so inlinability is judged the
    # same way the emitted source was produced.
    current = stages[0].children[0].schema
    position = 0
    for stage in stages:
        if isinstance(stage, RenameOp):
            current = stage.schema
            continue
        statement = transforms[position]
        position += 1
        value = statement.value
        if not isinstance(value, ast.ListComp):
            emit("RP304", f"stage {type(stage).__name__} is not a list comprehension")
            return
        if isinstance(stage, Filter):
            generators = value.generators
            if len(generators) != 1 or len(generators[0].ifs) != 1:
                emit("RP304", "filter stage must be one comprehension with one condition")
                return
            condition = generators[0].ifs[0]
            inlined = _predicate_source(stage.predicate, current, _SourceBuilder())
            if inlined is None:
                if not isinstance(condition, ast.Call):
                    emit(
                        "RP304",
                        "opaque predicate must compile to a bound row-based call",
                    )
                    return
            else:
                compares = sum(
                    1 for node in ast.walk(condition) if isinstance(node, ast.Compare)
                )
                expected = _comparison_count(stage.predicate)
                if compares != expected:
                    emit(
                        "RP304",
                        f"filter inlines {compares} comparison(s); the predicate has "
                        f"{expected}",
                    )
                    return
        elif isinstance(stage, ProjectOp):
            generators = value.generators
            map_ok = (
                len(generators) == 1
                and isinstance(generators[0].iter, ast.Call)
                and isinstance(generators[0].iter.func, ast.Name)
                and generators[0].iter.func.id == "map"
            )
            if not map_ok:
                emit("RP304", "projection stage must be one map-based comprehension")
                return
            current = stage.schema
        else:  # pragma: no cover - FUSABLE_OPERATORS guards the chain
            emit("RP304", f"unexpected fused stage {type(stage).__name__}")
            return
