"""repro — reproduction of "Laws for Rewriting Queries Containing Division
Operators" (Rantzau & Mangold, ICDE 2006).

The top-level package re-exports the most frequently used names; the
subpackages provide the full API:

* :mod:`repro.relation`   — set-semantics relational substrate
* :mod:`repro.division`   — small divide, great divide, set containment join
* :mod:`repro.algebra`    — logical expression trees and their evaluator
* :mod:`repro.laws`       — Laws 1–17 and Examples 1–4 as rewrite rules
* :mod:`repro.optimizer`  — rule-based rewriter, statistics, cost, planner
* :mod:`repro.physical`   — Volcano-style physical operators
* :mod:`repro.sql`        — SQL frontend with the DIVIDE BY syntax
* :mod:`repro.mining`     — frequent itemset discovery via great divide
* :mod:`repro.workloads`  — synthetic data generators
* :mod:`repro.fuzzy`      — fuzzy-division extension
* :mod:`repro.has`        — Carlis' HAS operator extension
* :mod:`repro.experiments`— figure regeneration and experiment harness
* :mod:`repro.api`        — the session front door (:func:`repro.connect`)
"""

from repro.api import AnalyzeReport, Database, Query, QueryResult, connect
from repro.division import great_divide, small_divide
from repro.errors import ReproError
from repro.relation import NULL, Relation, Row, Schema

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "NULL",
    "Relation",
    "Row",
    "Schema",
    "ReproError",
    "small_divide",
    "great_divide",
    "connect",
    "AnalyzeReport",
    "Database",
    "Query",
    "QueryResult",
]
