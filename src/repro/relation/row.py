"""Immutable rows (named tuples of attribute values).

A :class:`Row` maps attribute names to hashable values.  Rows are the
elements of a :class:`~repro.relation.relation.Relation`; because the paper
(and hence this library) uses *set* semantics throughout, rows must be
hashable and comparable by value.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import Any

from repro.errors import RelationError
from repro.relation.schema import AttributeNames, as_schema

__all__ = ["Row"]


class Row(Mapping):
    """An immutable mapping from attribute name to value.

    Examples
    --------
    >>> r = Row({"a": 1, "b": 2})
    >>> r["a"]
    1
    >>> r.project(["b"])
    Row(b=2)
    """

    __slots__ = ("_values", "_hash")

    def __init__(self, values: Mapping[str, Any]) -> None:
        items = {}
        for name, value in values.items():
            if not isinstance(name, str) or not name:
                raise RelationError(f"row attribute names must be nonempty strings, got {name!r}")
            items[name] = value
        self._values: dict[str, Any] = items
        try:
            self._hash = hash(frozenset(items.items()))
        except TypeError as exc:  # unhashable attribute value
            raise RelationError(f"row values must be hashable: {items!r}") from exc

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> Any:
        try:
            return self._values[name]
        except KeyError:
            raise RelationError(f"row has no attribute {name!r}; available: {sorted(self._values)}")

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, name: object) -> bool:
        return name in self._values

    # ------------------------------------------------------------------
    # value semantics
    # ------------------------------------------------------------------
    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._values == other._values
        if isinstance(other, Mapping):
            return self._values == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={value!r}" for name, value in sorted(self._values.items()))
        return f"Row({inner})"

    # ------------------------------------------------------------------
    # algebraic helpers
    # ------------------------------------------------------------------
    def project(self, attributes: AttributeNames) -> "Row":
        """Return a new row restricted to ``attributes``."""
        schema = as_schema(attributes)
        return Row({name: self[name] for name in schema})

    def rename(self, mapping: Mapping[str, str]) -> "Row":
        """Return a new row with attributes renamed according to ``mapping``."""
        return Row({mapping.get(name, name): value for name, value in self._values.items()})

    def merge(self, other: "Row") -> "Row":
        """Concatenate two rows (used by products and joins).

        Shared attributes must agree on their value; otherwise the merge is
        rejected, because the natural-join semantics of the library never
        merges rows that disagree on common attributes.
        """
        merged = dict(self._values)
        for name, value in other.items():
            if name in merged and merged[name] != value:
                raise RelationError(
                    f"cannot merge rows that disagree on attribute {name!r}: "
                    f"{merged[name]!r} != {value!r}"
                )
            merged[name] = value
        return Row(merged)

    def values_for(self, attributes: AttributeNames) -> tuple[Any, ...]:
        """Return the values of ``attributes`` as a tuple (in the given order)."""
        schema = as_schema(attributes)
        return tuple(self[name] for name in schema)

    def with_values(self, updates: Mapping[str, Any]) -> "Row":
        """Return a new row with the given attributes added or replaced."""
        merged = dict(self._values)
        merged.update(updates)
        return Row(merged)
