"""Immutable rows (named tuples of attribute values).

A :class:`Row` maps attribute names to hashable values.  Rows are the
elements of a :class:`~repro.relation.relation.Relation`; because the paper
(and hence this library) uses *set* semantics throughout, rows must be
hashable and comparable by value.

Representation: a row stores an interned :class:`~repro.relation.schema.Schema`
plus a plain value tuple aligned with it — no per-row dict.  Equality and
hashing remain attribute-order-insensitive (``Row({"a": 1, "b": 2}) ==
Row({"b": 2, "a": 1})``) because hashing permutes the values into canonical
(sorted-name) order.  The full :class:`Mapping` API is preserved, so rows
still behave like read-only dicts everywhere.

Hot paths construct rows with :meth:`Row.from_schema`, which takes an
already-interned schema and an aligned value tuple and touches no dict at
all.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import Any

from repro.errors import RelationError, RowAttributeError, SchemaError
from repro.relation.schema import AttributeNames, Schema, as_schema

__all__ = ["Row"]


class Row(Mapping):
    """An immutable mapping from attribute name to value.

    Examples
    --------
    >>> r = Row({"a": 1, "b": 2})
    >>> r["a"]
    1
    >>> r.project(["b"])
    Row(b=2)
    """

    __slots__ = ("_schema", "_values", "_hash")

    def __init__(self, values: Mapping[str, Any]) -> None:
        if isinstance(values, Row):
            self._schema = values._schema
            self._values = values._values
            self._hash = values._hash
            return
        names = tuple(values.keys())
        for name in names:
            if not isinstance(name, str) or not name:
                raise RelationError(f"row attribute names must be nonempty strings, got {name!r}")
        try:
            schema = Schema.interned(names)
        except SchemaError as exc:
            raise RelationError(str(exc)) from exc
        value_tuple = tuple(values.values())
        self._schema = schema
        self._values = value_tuple
        try:
            self._hash = schema.hash_values(value_tuple)
        except TypeError as exc:  # unhashable attribute value
            raise RelationError(
                f"row values must be hashable: {dict(zip(names, value_tuple))!r}"
            ) from exc

    @classmethod
    def from_schema(cls, schema: Schema, values: tuple[Any, ...]) -> "Row":
        """Fast constructor from an interned schema and an aligned value tuple.

        The caller guarantees ``len(values) == len(schema)`` and that
        ``schema`` came from :meth:`Schema.interned`; no dict is built.
        """
        row = object.__new__(cls)
        row._schema = schema
        row._values = values
        try:
            row._hash = schema.hash_values(values)
        except TypeError as exc:  # unhashable attribute value
            raise RelationError(f"row values must be hashable: {values!r}") from exc
        return row

    # ------------------------------------------------------------------
    # representation accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """The (interned) schema this row's value tuple is aligned with."""
        return self._schema

    @property
    def values_tuple(self) -> tuple[Any, ...]:
        """The raw value tuple, aligned with :attr:`schema`.

        Named ``values_tuple`` (not ``values``) so the :class:`Mapping`
        protocol's ``values()`` view stays intact.
        """
        return self._values

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> Any:
        position = self._schema._index.get(name)
        if position is None:
            raise RowAttributeError(
                f"row has no attribute {name!r}; available: {sorted(self._schema._names)}"
            )
        return self._values[position]

    def __iter__(self) -> Iterator[str]:
        return iter(self._schema._names)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, name: object) -> bool:
        return name in self._schema._index

    # ------------------------------------------------------------------
    # value semantics
    # ------------------------------------------------------------------
    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            if self._schema is other._schema:
                return self._values == other._values
            if self._schema._name_set != other._schema._name_set:
                return False
            other_index = other._schema._index
            other_values = other._values
            names = self._schema._names
            values = self._values
            return all(
                values[i] == other_values[other_index[names[i]]] for i in range(len(names))
            )
        if isinstance(other, Mapping):
            return dict(zip(self._schema._names, self._values)) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={value!r}" for name, value in sorted(zip(self._schema._names, self._values))
        )
        return f"Row({inner})"

    # ------------------------------------------------------------------
    # algebraic helpers
    # ------------------------------------------------------------------
    def project(self, attributes: AttributeNames) -> "Row":
        """Return a new row restricted to ``attributes``."""
        target = Schema.interned(as_schema(attributes).names)
        try:
            getter = self._schema.tuple_getter(target.names)
        except KeyError as exc:
            raise RowAttributeError(
                f"row has no attribute {exc.args[0]!r}; available: {sorted(self._schema._names)}"
            ) from None
        return Row.from_schema(target, getter(self._values))

    def rename(self, mapping: Mapping[str, str]) -> "Row":
        """Return a new row with attributes renamed according to ``mapping``."""
        names = tuple(mapping.get(name, name) for name in self._schema._names)
        try:
            schema = Schema.interned(names)
        except SchemaError as exc:
            raise RelationError(str(exc)) from exc
        return Row.from_schema(schema, self._values)

    def merge(self, other: "Row") -> "Row":
        """Concatenate two rows (used by products and joins).

        Shared attributes must agree on their value; otherwise the merge is
        rejected, because the natural-join semantics of the library never
        merges rows that disagree on common attributes.
        """
        self_schema, other_schema = self._schema, other._schema
        if self_schema._name_set.isdisjoint(other_schema._name_set):
            schema = Schema.interned(self_schema._names + other_schema._names)
            return Row.from_schema(schema, self._values + other._values)
        merged = dict(zip(self_schema._names, self._values))
        for name, value in zip(other_schema._names, other._values):
            if name in merged and merged[name] != value:
                raise RelationError(
                    f"cannot merge rows that disagree on attribute {name!r}: "
                    f"{merged[name]!r} != {value!r}"
                )
            merged[name] = value
        return Row(merged)

    def values_for(self, attributes: AttributeNames) -> tuple[Any, ...]:
        """Return the values of ``attributes`` as a tuple (in the given order)."""
        try:
            getter = self._schema.tuple_getter(attributes)
        except KeyError as exc:
            raise RowAttributeError(
                f"row has no attribute {exc.args[0]!r}; available: {sorted(self._schema._names)}"
            ) from None
        return getter(self._values)

    def with_values(self, updates: Mapping[str, Any]) -> "Row":
        """Return a new row with the given attributes added or replaced."""
        merged = dict(zip(self._schema._names, self._values))
        merged.update(updates)
        return Row(merged)
