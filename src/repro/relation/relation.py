"""Set-semantics relations and the basic operators of the relational algebra.

This module implements the substrate every other part of the library builds
on: the operators listed in Appendix A of the paper (union, intersection,
difference, Cartesian product, projection, selection, theta-join, natural
join, semi-join, anti-semi-join, left outer join, grouping) with strict
*set* semantics, plus renaming.

The division operators themselves live in :mod:`repro.division`; they are
derived operators and are kept separate because the paper studies several
alternative definitions for them.

Representation invariant: every row of a relation shares the relation's
*interned* schema object, so its value tuple is aligned with the schema's
attribute order.  The operators exploit this with precomputed attribute
index arrays ("pickers"): projection, joins, semi-joins and grouping pick
values positionally out of the tuples instead of rebuilding per-row dicts.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from typing import Any, Optional, Union

from repro.errors import RelationError, SchemaError
from repro.relation.row import Row
from repro.relation.schema import AttributeNames, Schema, as_schema

__all__ = ["Relation", "RowPredicate", "NULL"]

#: Predicates used by :meth:`Relation.select` take a row and return a bool.
RowPredicate = Callable[[Row], bool]


class _Null:
    """Singleton marker used by the left outer join for padded attributes."""

    _instance: Optional["_Null"] = None

    def __new__(cls) -> "_Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False


#: The null marker produced by the left outer join (Appendix A).
NULL = _Null()


class Relation:
    """An immutable relation: a schema plus a *set* of rows.

    Parameters
    ----------
    attributes:
        The attribute names of the schema, in display order.
    rows:
        An iterable of rows.  Each row may be a mapping from attribute name
        to value or a sequence of values aligned with ``attributes``.
        Duplicates are silently removed (set semantics).

    Examples
    --------
    >>> r = Relation(["a", "b"], [(1, 1), (1, 4), (2, 1)])
    >>> len(r)
    3
    >>> r.project(["a"]).to_set("a")
    {1, 2}
    """

    __slots__ = ("_schema", "_rows", "_tuples")

    def __init__(
        self,
        attributes: AttributeNames,
        rows: Iterable[Union[Mapping[str, Any], Sequence[Any]]] = (),
    ) -> None:
        schema = Schema.interned(as_schema(attributes).names)
        coerce = self._coerce_row
        self._schema = schema
        self._rows: frozenset[Row] = frozenset(coerce(schema, raw) for raw in rows)
        self._tuples: Optional[list[tuple[Any, ...]]] = None

    @staticmethod
    def _coerce_row(schema: Schema, raw: Union[Row, Mapping[str, Any], Sequence[Any]]) -> Row:
        if isinstance(raw, Row):
            raw_schema = raw.schema
            if raw_schema is schema:
                return raw
            if raw_schema.name_set == schema.name_set:
                # Same attribute set, possibly another declaration order:
                # realign the value tuple with this relation's schema.
                return Row.from_schema(schema, raw.values_for(schema))
            raise RelationError(
                f"row attributes {sorted(raw.keys())!r} do not match schema {schema.names!r}"
            )
        if isinstance(raw, Mapping):
            for name in raw:
                if not isinstance(name, str) or not name:
                    raise RelationError(
                        f"row attribute names must be nonempty strings, got {name!r}"
                    )
            if len(raw) != len(schema):
                raise RelationError(
                    f"row attributes {sorted(raw.keys())!r} do not match schema {schema.names!r}"
                )
            try:
                values = tuple(raw[name] for name in schema.names)
            except KeyError:
                raise RelationError(
                    f"row attributes {sorted(raw.keys())!r} do not match schema {schema.names!r}"
                ) from None
            return Row.from_schema(schema, values)
        values = tuple(raw)
        if len(values) != len(schema):
            raise RelationError(
                f"row {values!r} has {len(values)} values but schema {schema.names!r} "
                f"has {len(schema)} attributes"
            )
        return Row.from_schema(schema, values)

    @classmethod
    def _from_parts(cls, schema: Schema, rows: Iterable[Row]) -> "Relation":
        """Internal constructor: ``schema`` is interned and every row is
        already aligned with it — no coercion."""
        relation = object.__new__(cls)
        relation._schema = schema
        relation._rows = rows if isinstance(rows, frozenset) else frozenset(rows)
        relation._tuples = None
        return relation

    @classmethod
    def from_aligned(cls, attributes: AttributeNames, tuples: Iterable[Sequence[Any]]) -> "Relation":
        """Build a relation from value tuples already aligned with the schema.

        The columnar executor's boundary constructor: each element of
        ``tuples`` must be a tuple of values in schema attribute order, so
        no per-row mapping coercion or length checking is needed.
        """
        schema = Schema.interned(as_schema(attributes).names)
        from_schema = Row.from_schema
        relation = object.__new__(cls)
        relation._schema = schema
        relation._rows = frozenset(from_schema(schema, values) for values in tuples)
        relation._tuples = None
        return relation

    def aligned_tuples(self) -> list[tuple[Any, ...]]:
        """Value tuples of all rows, aligned with the schema (cached).

        Every row of a relation shares the relation's interned schema, so
        this is a plain attribute sweep; the result is cached because scans
        re-chunk the same relation on every execution.
        """
        tuples = self._tuples
        if tuples is None:
            tuples = [row._values for row in self._rows]
            self._tuples = tuples
        return tuples

    def _align(self, row: Row) -> Row:
        """Realign a same-attribute-set row with this relation's schema."""
        if row.schema is self._schema:
            return row
        return Row.from_schema(self._schema, row.values_for(self._schema))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, attributes: AttributeNames) -> "Relation":
        """An empty relation over the given schema."""
        return cls(attributes, ())

    @classmethod
    def from_rows(cls, attributes: AttributeNames, rows: Iterable[Any]) -> "Relation":
        """Alias of the constructor, provided for readability at call sites."""
        return cls(attributes, rows)

    @classmethod
    def from_columns(cls, columns: Mapping[str, Sequence[Any]]) -> "Relation":
        """Build a relation from parallel columns.

        >>> Relation.from_columns({"a": [1, 2], "b": [10, 20]}).schema.names
        ('a', 'b')
        """
        names = tuple(columns.keys())
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise RelationError(f"columns have different lengths: { {n: len(v) for n, v in columns.items()} }")
        count = lengths.pop() if lengths else 0
        rows = [tuple(columns[name][i] for name in names) for i in range(count)]
        return cls(names, rows)

    @classmethod
    def singleton(cls, values: Mapping[str, Any]) -> "Relation":
        """A one-tuple relation, written ``(t)`` in the paper."""
        return cls(tuple(values.keys()), [values])

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """The relation schema."""
        return self._schema

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names in display order."""
        return self._schema.names

    @property
    def rows(self) -> frozenset[Row]:
        """The set of rows."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __contains__(self, row: object) -> bool:
        if isinstance(row, Mapping) and not isinstance(row, Row):
            row = Row(dict(row))
        return row in self._rows

    def is_empty(self) -> bool:
        """Return ``True`` if the relation has no rows."""
        return not self._rows

    def sorted_rows(self, attributes: Optional[AttributeNames] = None) -> list[Row]:
        """Rows sorted by the given attributes (defaults to the full schema).

        Used for deterministic rendering and by sort-based physical
        operators.  Values of each attribute must be mutually comparable.
        """
        schema = self._schema if attributes is None else as_schema(attributes)
        self._schema.require(schema, "sort")
        picks = self._schema.picker(schema)
        return sorted(
            self._rows,
            key=lambda row: tuple(_sort_key(row.values_tuple[i]) for i in picks),
        )

    def clustered(self, attributes: Optional[AttributeNames] = None) -> "Relation":
        """A copy whose *physical scan order* is sorted by ``attributes``.

        The relation value (set of rows) is unchanged — only the cached
        aligned-tuple block that scans slice from is pre-sorted, the way a
        clustered index lays out a table.  ``TableStatistics.from_relation``
        detects this order and flags the attributes as sorted, which lets
        the cost-based planner pick order-exploiting algorithms (e.g. the
        streaming merge-group division).  Defaults to the full schema.
        """
        schema = self._schema if attributes is None else as_schema(attributes)
        self._schema.require(schema, "clustered")
        picks = self._schema.picker(schema)
        relation = Relation._from_parts(self._schema, self._rows)
        relation._tuples = sorted(
            self.aligned_tuples(),
            key=lambda values: tuple(_sort_key(values[i]) for i in picks),
        )
        return relation

    def to_set(self, attribute: str) -> set[Any]:
        """Values of a single attribute as a Python set."""
        self._schema.require([attribute], "to_set")
        position = self._schema.position(attribute)
        return {row.values_tuple[position] for row in self._rows}

    def to_tuples(self, attributes: Optional[AttributeNames] = None) -> set[tuple[Any, ...]]:
        """Rows as value tuples (ordered by ``attributes`` or the schema)."""
        schema = self._schema if attributes is None else as_schema(attributes)
        self._schema.require(schema, "to_tuples")
        get = self._schema.tuple_getter(schema)
        return {get(row.values_tuple) for row in self._rows}

    # ------------------------------------------------------------------
    # value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Relation):
            return self._schema == other._schema and self._rows == other._rows
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._schema, self._rows))

    def __repr__(self) -> str:
        return f"Relation(attributes={self._schema.names!r}, rows={len(self._rows)})"

    # ------------------------------------------------------------------
    # unary operators
    # ------------------------------------------------------------------
    def project(self, attributes: AttributeNames) -> "Relation":
        """Projection ``π_A(r)`` with duplicate elimination."""
        target = Schema.interned(self._schema.project(attributes).names)
        get = self._schema.tuple_getter(target)
        projected = {get(row.values_tuple) for row in self._rows}
        return Relation._from_parts(
            target, frozenset(Row.from_schema(target, values) for values in projected)
        )

    def select(self, predicate: RowPredicate) -> "Relation":
        """Selection ``σ_θ(r)``; ``predicate`` is evaluated on every row."""
        return Relation._from_parts(
            self._schema, frozenset(row for row in self._rows if predicate(row))
        )

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Rename attributes according to ``mapping`` (ρ operator)."""
        new_schema = Schema.interned(self._schema.rename(dict(mapping)).names)
        return Relation._from_parts(
            new_schema,
            frozenset(Row.from_schema(new_schema, row.values_tuple) for row in self._rows),
        )

    def prefix(self, prefix: str, separator: str = ".") -> "Relation":
        """Rename every attribute to ``prefix`` + separator + name.

        Convenience used by the SQL frontend for correlation names.
        """
        return self.rename({name: f"{prefix}{separator}{name}" for name in self._schema})

    # ------------------------------------------------------------------
    # binary set operators (require identical attribute sets)
    # ------------------------------------------------------------------
    def _require_same_schema(self, other: "Relation", operation: str) -> None:
        if self._schema != other._schema:
            raise SchemaError(
                f"{operation}: schemas differ: {self._schema.names!r} vs {other._schema.names!r}"
            )

    def union(self, other: "Relation") -> "Relation":
        """Set union ``r1 ∪ r2``."""
        self._require_same_schema(other, "union")
        if other._schema is self._schema:
            rows = self._rows | other._rows
        else:
            rows = self._rows | frozenset(self._align(row) for row in other._rows)
        return Relation._from_parts(self._schema, rows)

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection ``r1 ∩ r2``."""
        self._require_same_schema(other, "intersection")
        if other._schema is self._schema:
            rows = self._rows & other._rows
        else:
            # Row hashing is order-insensitive, so membership tests work
            # across schema orders; keep elements of `self` for alignment.
            rows = frozenset(row for row in self._rows if row in other._rows)
        return Relation._from_parts(self._schema, rows)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference ``r1 − r2``."""
        self._require_same_schema(other, "difference")
        return Relation._from_parts(self._schema, self._rows - other._rows)

    def __or__(self, other: "Relation") -> "Relation":
        return self.union(other)

    def __and__(self, other: "Relation") -> "Relation":
        return self.intersection(other)

    def __sub__(self, other: "Relation") -> "Relation":
        return self.difference(other)

    # ------------------------------------------------------------------
    # products and joins
    # ------------------------------------------------------------------
    def product(self, other: "Relation") -> "Relation":
        """Cartesian product ``r1 × r2`` (attribute sets must be disjoint)."""
        if not self._schema.is_disjoint(other._schema):
            shared = self._schema.intersection(other._schema).names
            raise SchemaError(
                f"product: attribute sets must be disjoint, both sides contain {shared!r}"
            )
        schema = Schema.interned(self._schema.union(other._schema).names)
        rows = frozenset(
            Row.from_schema(schema, left.values_tuple + right.values_tuple)
            for left in self._rows
            for right in other._rows
        )
        return Relation._from_parts(schema, rows)

    def __mul__(self, other: "Relation") -> "Relation":
        return self.product(other)

    def theta_join(self, other: "Relation", predicate: RowPredicate) -> "Relation":
        """Theta-join ``r1 ⋈_θ r2 = σ_θ(r1 × r2)`` (disjoint attribute sets)."""
        return self.product(other).select(predicate)

    def natural_join(self, other: "Relation") -> "Relation":
        """Natural join ``r1 ⋈ r2`` on the shared attributes."""
        shared = self._schema.intersection(other._schema)
        if not len(shared):
            # Degenerates to the Cartesian product, exactly as in the
            # textbook definition.
            return self.product(other)
        schema = Schema.interned(self._schema.union(other._schema).names)
        extra = other._schema.difference(self._schema)
        left_key = self._schema.key_getter(shared)
        right_key = other._schema.key_getter(shared)
        right_extra = other._schema.tuple_getter(extra)
        index: dict[Any, list[tuple[Any, ...]]] = {}
        for row in other._rows:
            values = row.values_tuple
            index.setdefault(right_key(values), []).append(right_extra(values))
        rows: set[Row] = set()
        add = rows.add
        lookup = index.get
        from_schema = Row.from_schema
        for left in self._rows:
            values = left.values_tuple
            for extras in lookup(left_key(values), ()):
                add(from_schema(schema, values + extras))
        return Relation._from_parts(schema, frozenset(rows))

    def semijoin(self, other: "Relation") -> "Relation":
        """Left semi-join ``r1 ⋉ r2``: rows of ``r1`` with a join partner."""
        shared = self._schema.intersection(other._schema)
        if not len(shared):
            return self if other._rows else Relation.empty(self._schema)
        left_key = self._schema.key_getter(shared)
        right_key = other._schema.key_getter(shared)
        keys = {right_key(row.values_tuple) for row in other._rows}
        return Relation._from_parts(
            self._schema,
            frozenset(row for row in self._rows if left_key(row.values_tuple) in keys),
        )

    def antijoin(self, other: "Relation") -> "Relation":
        """Left anti-semi-join ``r1 ▷ r2 = r1 − (r1 ⋉ r2)``."""
        return self.difference(self.semijoin(other))

    def left_outer_join(self, other: "Relation") -> "Relation":
        """Left outer join ``r1 ⟕ r2`` padding missing partners with NULL."""
        joined = self.natural_join(other)
        dangling = self.antijoin(other)
        pad_attributes = other._schema.difference(self._schema)
        padded_rows = {
            row.with_values({name: NULL for name in pad_attributes}) for row in dangling
        }
        schema = self._schema.union(other._schema)
        return Relation(schema, set(joined.rows) | padded_rows)

    # ------------------------------------------------------------------
    # grouping / aggregation
    # ------------------------------------------------------------------
    def group_by(
        self,
        grouping: AttributeNames,
        aggregations: Mapping[str, tuple[str, Callable[[Iterable[Row]], Any]]],
    ) -> "Relation":
        """Grouping operator ``GγF(r)`` of Appendix A.

        Parameters
        ----------
        grouping:
            The grouping attributes ``G`` (may be empty for a global
            aggregate over the whole relation).
        aggregations:
            Maps each *output* attribute name to a pair ``(doc, fn)`` where
            ``fn`` receives the iterable of rows of one group and returns the
            aggregate value, and ``doc`` is a short human-readable label
            (e.g. ``"count(b)"``) used only for rendering and debugging.

        The helpers in :mod:`repro.relation.aggregates` build suitable
        ``(doc, fn)`` pairs for the common aggregates.
        """
        group_schema = as_schema(grouping)
        self._schema.require(group_schema, "group_by")
        output_schema = Schema.interned(group_schema.names + tuple(aggregations.keys()))
        key_of = self._schema.tuple_getter(group_schema)

        groups: dict[tuple[Any, ...], list[Row]] = {}
        for row in self._rows:
            groups.setdefault(key_of(row.values_tuple), []).append(row)

        if not groups and not len(group_schema):
            # Global aggregate over an empty relation: one row of aggregates
            # over the empty group, mirroring SQL's behaviour for COUNT.
            groups[()] = []
        aggregate_fns = tuple(fn for (_doc, fn) in aggregations.values())
        result_rows = frozenset(
            Row.from_schema(output_schema, key + tuple(fn(members) for fn in aggregate_fns))
            for key, members in groups.items()
        )
        return Relation._from_parts(output_schema, result_rows)

    # ------------------------------------------------------------------
    # convenience used throughout the law implementations
    # ------------------------------------------------------------------
    def image_set(self, row_values: Mapping[str, Any], over: AttributeNames) -> "Relation":
        """Codd's image set ``i_r(x)``: the ``over``-values co-occurring with ``x``.

        ``row_values`` fixes the values of some attributes; the result is the
        projection to ``over`` of the rows agreeing with ``row_values``.
        """
        fixed = Row(dict(row_values))
        self._schema.require(list(fixed.keys()), "image_set")
        over_schema = Schema.interned(self._schema.project(over).names)
        over_get = self._schema.tuple_getter(over_schema)
        fixed_get = self._schema.tuple_getter(fixed.schema)
        fixed_values = fixed.values_tuple
        projected = {
            over_get(row.values_tuple)
            for row in self._rows
            if fixed_get(row.values_tuple) == fixed_values
        }
        return Relation._from_parts(
            over_schema,
            frozenset(Row.from_schema(over_schema, values) for values in projected),
        )

    def partition_horizontal(self, predicate: RowPredicate) -> tuple["Relation", "Relation"]:
        """Split rows into (matching, non-matching) relations."""
        matching = frozenset(row for row in self._rows if predicate(row))
        return (
            Relation._from_parts(self._schema, matching),
            Relation._from_parts(self._schema, self._rows - matching),
        )


def _sort_key(value: Any) -> tuple[str, Any]:
    """Total order over heterogeneous attribute values (None/NULL first)."""
    if value is None or value is NULL:
        return ("0", "")
    if isinstance(value, bool):
        return ("1", int(value))
    if isinstance(value, (int, float)):
        return ("2", value)
    if isinstance(value, str):
        return ("3", value)
    if isinstance(value, (tuple, frozenset)):
        return ("4", tuple(sorted(map(repr, value))))
    return ("5", repr(value))
