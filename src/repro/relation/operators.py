"""Free-function spellings of the basic relational operators.

The :class:`~repro.relation.relation.Relation` methods are the primary API;
these functions exist so that algebraic expressions in the laws and tests
can be written in the same prefix style as the paper
(``project(select(r, p), A)`` mirrors ``π_A(σ_p(r))``).
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.relation.relation import Relation, RowPredicate
from repro.relation.schema import AttributeNames

__all__ = [
    "project",
    "select",
    "rename",
    "union",
    "intersection",
    "difference",
    "product",
    "theta_join",
    "natural_join",
    "semijoin",
    "antijoin",
    "left_outer_join",
    "group_by",
    "singleton",
]


def project(relation: Relation, attributes: AttributeNames) -> Relation:
    """Projection ``π_A(r)``."""
    return relation.project(attributes)


def select(relation: Relation, predicate: RowPredicate) -> Relation:
    """Selection ``σ_θ(r)``."""
    return relation.select(predicate)


def rename(relation: Relation, mapping: Mapping[str, str]) -> Relation:
    """Renaming ``ρ(r)``."""
    return relation.rename(mapping)


def union(left: Relation, right: Relation) -> Relation:
    """Set union ``r1 ∪ r2``."""
    return left.union(right)


def intersection(left: Relation, right: Relation) -> Relation:
    """Set intersection ``r1 ∩ r2``."""
    return left.intersection(right)


def difference(left: Relation, right: Relation) -> Relation:
    """Set difference ``r1 − r2``."""
    return left.difference(right)


def product(left: Relation, right: Relation) -> Relation:
    """Cartesian product ``r1 × r2``."""
    return left.product(right)


def theta_join(left: Relation, right: Relation, predicate: RowPredicate) -> Relation:
    """Theta-join ``r1 ⋈_θ r2``."""
    return left.theta_join(right, predicate)


def natural_join(left: Relation, right: Relation) -> Relation:
    """Natural join ``r1 ⋈ r2``."""
    return left.natural_join(right)


def semijoin(left: Relation, right: Relation) -> Relation:
    """Left semi-join ``r1 ⋉ r2``."""
    return left.semijoin(right)


def antijoin(left: Relation, right: Relation) -> Relation:
    """Left anti-semi-join ``r1 ▷ r2``."""
    return left.antijoin(right)


def left_outer_join(left: Relation, right: Relation) -> Relation:
    """Left outer join ``r1 ⟕ r2``."""
    return left.left_outer_join(right)


def group_by(relation: Relation, grouping: AttributeNames, aggregations) -> Relation:
    """Grouping ``GγF(r)``."""
    return relation.group_by(grouping, aggregations)


def singleton(values: Mapping[str, Any]) -> Relation:
    """One-tuple relation ``(t)`` as used by Definition 4 of the paper."""
    return Relation.singleton(values)
