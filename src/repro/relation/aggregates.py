"""Aggregate functions for the grouping operator.

Each helper returns a pair ``(label, fn)`` suitable for
:meth:`repro.relation.relation.Relation.group_by`.  The label is only used
for rendering; ``fn`` maps the rows of one group to the aggregate value.

The paper's grouping-based laws (Laws 11 and 12) and the counting-based
definition of division (footnote 1) use ``count``; the worked figures use
``sum``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Any, Optional

from repro.errors import RelationError
from repro.relation.row import Row

__all__ = ["count", "count_distinct", "sum_of", "min_of", "max_of", "avg_of", "collect_set"]

Aggregate = tuple[str, Callable[[Iterable[Row]], Any]]


def count(attribute: Optional[str] = None) -> Aggregate:
    """``count(*)`` or ``count(attribute)`` over a group."""
    if attribute is None:
        return ("count(*)", lambda rows: sum(1 for _ in rows))
    return (f"count({attribute})", lambda rows: sum(1 for row in rows if row[attribute] is not None))


def count_distinct(attribute: str) -> Aggregate:
    """``count(distinct attribute)`` over a group."""
    return (
        f"count(distinct {attribute})",
        lambda rows: len({row[attribute] for row in rows if row[attribute] is not None}),
    )


def sum_of(attribute: str) -> Aggregate:
    """``sum(attribute)`` over a group (0 for an empty group)."""
    return (f"sum({attribute})", lambda rows: sum(row[attribute] for row in rows))


def min_of(attribute: str) -> Aggregate:
    """``min(attribute)`` over a group."""

    def _fn(rows: Iterable[Row]) -> Any:
        values = [row[attribute] for row in rows]
        if not values:
            raise RelationError(f"min({attribute}) of an empty group is undefined")
        return min(values)

    return (f"min({attribute})", _fn)


def max_of(attribute: str) -> Aggregate:
    """``max(attribute)`` over a group."""

    def _fn(rows: Iterable[Row]) -> Any:
        values = [row[attribute] for row in rows]
        if not values:
            raise RelationError(f"max({attribute}) of an empty group is undefined")
        return max(values)

    return (f"max({attribute})", _fn)


def avg_of(attribute: str) -> Aggregate:
    """``avg(attribute)`` over a group."""

    def _fn(rows: Iterable[Row]) -> Any:
        values = [row[attribute] for row in rows]
        if not values:
            raise RelationError(f"avg({attribute}) of an empty group is undefined")
        return sum(values) / len(values)

    return (f"avg({attribute})", _fn)


def collect_set(attribute: str) -> Aggregate:
    """Collect the distinct values of ``attribute`` into a frozenset.

    Used to nest a first-normal-form relation into the NF² representation
    needed by the set containment join (Figure 3 of the paper).
    """
    return (
        f"collect_set({attribute})",
        lambda rows: frozenset(row[attribute] for row in rows),
    )
