"""Relation schemas.

A :class:`Schema` is an ordered collection of distinct attribute names.  The
paper treats schemas as plain attribute *sets* (named perspective); we keep
the declaration order purely for stable rendering of figures, while all
comparisons and algebraic operations use set semantics.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Union

from repro.errors import SchemaError

__all__ = ["Schema", "AttributeNames", "as_schema"]

#: Anything accepted where a schema (or attribute list) is expected.
AttributeNames = Union["Schema", Sequence[str], Iterable[str]]


class Schema:
    """An ordered set of attribute names.

    Parameters
    ----------
    attributes:
        Attribute names in declaration order.  Names must be nonempty
        strings and must not repeat.

    Examples
    --------
    >>> s = Schema(["a", "b"])
    >>> s.names
    ('a', 'b')
    >>> s | Schema(["c"])
    Schema('a', 'b', 'c')
    """

    __slots__ = ("_names", "_name_set")

    def __init__(self, attributes: AttributeNames) -> None:
        if isinstance(attributes, Schema):
            names = attributes.names
        else:
            names = tuple(attributes)
        seen: set[str] = set()
        for name in names:
            if not isinstance(name, str) or not name:
                raise SchemaError(f"attribute names must be nonempty strings, got {name!r}")
            if name in seen:
                raise SchemaError(f"duplicate attribute name {name!r} in schema {names!r}")
            seen.add(name)
        self._names: tuple[str, ...] = names
        self._name_set: frozenset[str] = frozenset(names)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names in declaration order."""
        return self._names

    @property
    def name_set(self) -> frozenset[str]:
        """Attribute names as a frozen set."""
        return self._name_set

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._name_set

    def __getitem__(self, index: int) -> str:
        return self._names[index]

    # ------------------------------------------------------------------
    # comparisons (set semantics)
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Schema):
            return self._name_set == other._name_set
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._name_set)

    def is_disjoint(self, other: AttributeNames) -> bool:
        """Return ``True`` if the two schemas share no attribute."""
        return self._name_set.isdisjoint(as_schema(other).name_set)

    def is_subset(self, other: AttributeNames) -> bool:
        """Return ``True`` if every attribute of ``self`` appears in ``other``."""
        return self._name_set <= as_schema(other).name_set

    def is_superset(self, other: AttributeNames) -> bool:
        """Return ``True`` if ``self`` contains every attribute of ``other``."""
        return self._name_set >= as_schema(other).name_set

    # ------------------------------------------------------------------
    # set operations (order of the left operand is preserved)
    # ------------------------------------------------------------------
    def union(self, other: AttributeNames) -> "Schema":
        """Attributes of ``self`` followed by the new attributes of ``other``."""
        other = as_schema(other)
        extra = [name for name in other.names if name not in self._name_set]
        return Schema(self._names + tuple(extra))

    def intersection(self, other: AttributeNames) -> "Schema":
        """Attributes of ``self`` that also appear in ``other``."""
        other_set = as_schema(other).name_set
        return Schema(tuple(name for name in self._names if name in other_set))

    def difference(self, other: AttributeNames) -> "Schema":
        """Attributes of ``self`` that do not appear in ``other``."""
        other_set = as_schema(other).name_set
        return Schema(tuple(name for name in self._names if name not in other_set))

    def __or__(self, other: AttributeNames) -> "Schema":
        return self.union(other)

    def __and__(self, other: AttributeNames) -> "Schema":
        return self.intersection(other)

    def __sub__(self, other: AttributeNames) -> "Schema":
        return self.difference(other)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def require(self, attributes: AttributeNames, context: str = "operation") -> None:
        """Raise :class:`SchemaError` unless every listed attribute exists."""
        missing = as_schema(attributes).name_set - self._name_set
        if missing:
            raise SchemaError(
                f"{context}: attributes {sorted(missing)!r} are not part of schema {self._names!r}"
            )

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Return a schema with attributes renamed according to ``mapping``.

        Attributes not mentioned in ``mapping`` keep their names.
        """
        unknown = set(mapping) - self._name_set
        if unknown:
            raise SchemaError(f"rename: unknown attributes {sorted(unknown)!r}")
        return Schema(tuple(mapping.get(name, name) for name in self._names))

    def project(self, attributes: AttributeNames) -> "Schema":
        """Return a schema restricted to ``attributes`` (in the given order)."""
        target = as_schema(attributes)
        self.require(target, "projection")
        return target

    def __repr__(self) -> str:
        inner = ", ".join(repr(name) for name in self._names)
        return f"Schema({inner})"


def as_schema(value: AttributeNames) -> Schema:
    """Coerce ``value`` (schema, sequence or iterable of names) to a Schema."""
    if isinstance(value, Schema):
        return value
    if isinstance(value, str):
        # A bare string is almost always a bug (it would be iterated
        # character by character); treat it as a single attribute name.
        return Schema((value,))
    return Schema(value)
