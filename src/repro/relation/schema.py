"""Relation schemas.

A :class:`Schema` is an ordered collection of distinct attribute names.  The
paper treats schemas as plain attribute *sets* (named perspective); we keep
the declaration order purely for stable rendering of figures, while all
comparisons and algebraic operations use set semantics.

Schemas are the backbone of the tuple-backed row representation: every
:class:`~repro.relation.row.Row` stores a plain value tuple aligned with an
*interned* schema.  The schema therefore carries everything needed to make
row operations positional instead of dict-based:

* an attribute → position index (:attr:`_index`),
* a canonical (sorted-name) permutation used to hash rows so that equal
  rows over differently-ordered schemas hash equally (:meth:`hash_values`),
* a per-schema cache of "pickers" — index tuples that project a value tuple
  onto a target attribute list in one pass (:meth:`picker`).

:meth:`Schema.interned` returns a process-wide shared instance per distinct
attribute-name tuple, so rows of the same relation share one schema object
and schema identity checks (``is``) replace name-by-name comparisons on the
hot paths.
"""

from __future__ import annotations

import weakref
from collections.abc import Callable, Iterable, Iterator, Sequence
from operator import itemgetter
from typing import Any, Optional, Union

from repro.errors import SchemaError

__all__ = ["Schema", "AttributeNames", "as_schema"]

#: Anything accepted where a schema (or attribute list) is expected.
AttributeNames = Union["Schema", Sequence[str], Iterable[str]]

#: Process-wide intern table: attribute-name tuple → shared Schema instance.
#: Weak-valued so one-off schemas (SQL correlation prefixes, generated
#: attribute names) are reclaimed once no row or relation references them.
_INTERNED: "weakref.WeakValueDictionary[tuple[str, ...], Schema]" = weakref.WeakValueDictionary()


class Schema:
    """An ordered set of attribute names.

    Parameters
    ----------
    attributes:
        Attribute names in declaration order.  Names must be nonempty
        strings and must not repeat.

    Examples
    --------
    >>> s = Schema(["a", "b"])
    >>> s.names
    ('a', 'b')
    >>> s | Schema(["c"])
    Schema('a', 'b', 'c')
    """

    __slots__ = (
        "_names",
        "_name_set",
        "_index",
        "_canonical_perm",
        "_picker_cache",
        "_getter_cache",
        "__weakref__",
    )

    def __init__(self, attributes: AttributeNames) -> None:
        if isinstance(attributes, Schema):
            names = attributes.names
        else:
            names = tuple(attributes)
        index: dict[str, int] = {}
        for position, name in enumerate(names):
            if not isinstance(name, str) or not name:
                raise SchemaError(f"attribute names must be nonempty strings, got {name!r}")
            if name in index:
                raise SchemaError(f"duplicate attribute name {name!r} in schema {names!r}")
            index[name] = position
        self._names: tuple[str, ...] = names
        self._name_set: frozenset[str] = frozenset(names)
        self._index: dict[str, int] = index
        order = sorted(range(len(names)), key=names.__getitem__)
        self._canonical_perm: Optional[tuple[int, ...]] = (
            tuple(order) if any(i != j for i, j in enumerate(order)) else None
        )
        self._picker_cache: Optional[dict[tuple[str, ...], tuple[int, ...]]] = None
        self._getter_cache: Optional[dict[tuple[str, ...], tuple[Callable, Callable]]] = None

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    @classmethod
    def interned(cls, attributes: AttributeNames) -> "Schema":
        """The shared instance for this exact attribute order.

        Rows built from the same interned schema can be compared, hashed and
        projected positionally; ``schema1 is schema2`` then implies both the
        same attribute set *and* the same declaration order.
        """
        if isinstance(attributes, Schema):
            names = attributes._names
        else:
            names = tuple(attributes)
        schema = _INTERNED.get(names)
        if schema is None:
            schema = cls(names)
            _INTERNED[names] = schema
        return schema

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names in declaration order."""
        return self._names

    @property
    def name_set(self) -> frozenset[str]:
        """Attribute names as a frozen set."""
        return self._name_set

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._name_set

    def __getitem__(self, index: int) -> str:
        return self._names[index]

    # ------------------------------------------------------------------
    # positional access (tuple-backed rows)
    # ------------------------------------------------------------------
    def position(self, name: str) -> int:
        """Position of ``name`` in the declaration order (KeyError if absent)."""
        return self._index[name]

    def picker(self, attributes: AttributeNames) -> tuple[int, ...]:
        """Index tuple projecting an aligned value tuple onto ``attributes``.

        ``tuple(values[i] for i in schema.picker(target))`` reorders a value
        tuple aligned with this schema into ``target`` order.  Pickers are
        cached per target attribute tuple.  Raises ``KeyError`` for unknown
        attributes (callers translate to their domain error).
        """
        if isinstance(attributes, Schema):
            names = attributes._names
        elif isinstance(attributes, str):
            names = (attributes,)
        else:
            names = tuple(attributes)
        cache = self._picker_cache
        if cache is None:
            cache = {}
            self._picker_cache = cache
        picks = cache.get(names)
        if picks is None:
            index = self._index
            picks = tuple(index[name] for name in names)
            cache[names] = picks
        return picks

    def getters(self, attributes: AttributeNames) -> tuple[Callable, Callable]:
        """``(tuple_getter, key_getter)`` pair for an attribute list.

        Both take a value tuple aligned with this schema.  The tuple getter
        returns the ``attributes`` values as a tuple; the key getter returns
        a hashable group key — the bare value when there is exactly one
        attribute (cheaper to hash, no allocation), the same tuple
        otherwise.  Built on :func:`operator.itemgetter` so the extraction
        runs at C speed; cached per target attribute tuple.
        """
        if isinstance(attributes, Schema):
            names = attributes._names
        elif isinstance(attributes, str):
            names = (attributes,)
        else:
            names = tuple(attributes)
        cache = self._getter_cache
        if cache is None:
            cache = {}
            self._getter_cache = cache
        getters = cache.get(names)
        if getters is None:
            picks = self.picker(names)
            if not picks:
                getters = (_empty_getter, _empty_getter)
            elif len(picks) == 1:
                position = picks[0]
                getters = (_single_tuple_getter(position), itemgetter(position))
            else:
                getter = itemgetter(*picks)
                getters = (getter, getter)
            cache[names] = getters
        return getters

    def tuple_getter(self, attributes: AttributeNames) -> Callable:
        """Callable mapping an aligned value tuple to the ``attributes`` tuple."""
        return self.getters(attributes)[0]

    def key_getter(self, attributes: AttributeNames) -> Callable:
        """Callable mapping an aligned value tuple to a hashable group key."""
        return self.getters(attributes)[1]

    def hash_values(self, values: tuple[Any, ...]) -> int:
        """Order-insensitive hash of a value tuple aligned with this schema.

        Values are permuted into canonical (sorted-name) order before
        hashing, so equal rows hash equally regardless of the attribute
        order their schemas were declared in.
        """
        perm = self._canonical_perm
        if perm is not None:
            values = tuple(values[i] for i in perm)
        return hash((self._name_set, values))

    # ------------------------------------------------------------------
    # comparisons (set semantics)
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Schema):
            return self._name_set == other._name_set
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._name_set)

    def is_disjoint(self, other: AttributeNames) -> bool:
        """Return ``True`` if the two schemas share no attribute."""
        return self._name_set.isdisjoint(as_schema(other).name_set)

    def is_subset(self, other: AttributeNames) -> bool:
        """Return ``True`` if every attribute of ``self`` appears in ``other``."""
        return self._name_set <= as_schema(other).name_set

    def is_superset(self, other: AttributeNames) -> bool:
        """Return ``True`` if ``self`` contains every attribute of ``other``."""
        return self._name_set >= as_schema(other).name_set

    # ------------------------------------------------------------------
    # set operations (order of the left operand is preserved)
    # ------------------------------------------------------------------
    def union(self, other: AttributeNames) -> "Schema":
        """Attributes of ``self`` followed by the new attributes of ``other``."""
        other = as_schema(other)
        extra = [name for name in other.names if name not in self._name_set]
        return Schema(self._names + tuple(extra))

    def intersection(self, other: AttributeNames) -> "Schema":
        """Attributes of ``self`` that also appear in ``other``."""
        other_set = as_schema(other).name_set
        return Schema(tuple(name for name in self._names if name in other_set))

    def difference(self, other: AttributeNames) -> "Schema":
        """Attributes of ``self`` that do not appear in ``other``."""
        other_set = as_schema(other).name_set
        return Schema(tuple(name for name in self._names if name not in other_set))

    def __or__(self, other: AttributeNames) -> "Schema":
        return self.union(other)

    def __and__(self, other: AttributeNames) -> "Schema":
        return self.intersection(other)

    def __sub__(self, other: AttributeNames) -> "Schema":
        return self.difference(other)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def require(self, attributes: AttributeNames, context: str = "operation") -> None:
        """Raise :class:`SchemaError` unless every listed attribute exists."""
        missing = as_schema(attributes).name_set - self._name_set
        if missing:
            raise SchemaError(
                f"{context}: attributes {sorted(missing)!r} are not part of schema {self._names!r}"
            )

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Return a schema with attributes renamed according to ``mapping``.

        Attributes not mentioned in ``mapping`` keep their names.
        """
        unknown = set(mapping) - self._name_set
        if unknown:
            raise SchemaError(f"rename: unknown attributes {sorted(unknown)!r}")
        return Schema(tuple(mapping.get(name, name) for name in self._names))

    def project(self, attributes: AttributeNames) -> "Schema":
        """Return a schema restricted to ``attributes`` (in the given order)."""
        target = as_schema(attributes)
        self.require(target, "projection")
        return target

    def __repr__(self) -> str:
        inner = ", ".join(repr(name) for name in self._names)
        return f"Schema({inner})"


def _empty_getter(values: tuple[Any, ...]) -> tuple[Any, ...]:
    return ()


def _single_tuple_getter(position: int) -> Callable:
    def getter(values: tuple[Any, ...]) -> tuple[Any, ...]:
        return (values[position],)

    return getter


def as_schema(value: AttributeNames) -> Schema:
    """Coerce ``value`` (schema, sequence or iterable of names) to a Schema."""
    if isinstance(value, Schema):
        return value
    if isinstance(value, str):
        # A bare string is almost always a bug (it would be iterated
        # character by character); treat it as a single attribute name.
        return Schema((value,))
    return Schema(value)
