"""ASCII rendering of relations, in the style of the figures of the paper.

The experiment harness (:mod:`repro.experiments.figures`) prints every
regenerated figure with :func:`render_relation` so the output can be
compared side-by-side with the tables printed in the paper.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any, Optional

from repro.relation.relation import NULL, Relation

__all__ = ["render_relation", "render_side_by_side"]


def _format_value(value: Any) -> str:
    if value is NULL:
        return "NULL"
    if isinstance(value, frozenset):
        inner = ", ".join(str(v) for v in sorted(value, key=repr))
        return "{" + inner + "}"
    return str(value)


def render_relation(
    relation: Relation,
    title: Optional[str] = None,
    attributes: Optional[Sequence[str]] = None,
) -> str:
    """Render ``relation`` as an ASCII table.

    Parameters
    ----------
    relation:
        The relation to render.
    title:
        Optional caption printed above the table (e.g. ``"r1 (dividend)"``).
    attributes:
        Optional column order; defaults to the relation's schema order.
    """
    names = tuple(attributes) if attributes is not None else relation.attributes
    relation.schema.require(names, "render")
    rows = relation.sorted_rows(names)

    cells = [[_format_value(row[name]) for name in names] for row in rows]
    widths = [
        max(len(name), *(len(line[i]) for line in cells)) if cells else len(name)
        for i, name in enumerate(names)
    ]

    def format_line(values: Iterable[str]) -> str:
        return "| " + " | ".join(value.ljust(width) for value, width in zip(values, widths)) + " |"

    separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(format_line(names))
    lines.append(separator)
    for line in cells:
        lines.append(format_line(line))
    lines.append(separator)
    lines.append(f"({len(rows)} row{'s' if len(rows) != 1 else ''})")
    return "\n".join(lines)


def render_side_by_side(blocks: Sequence[str], gap: int = 4) -> str:
    """Lay out several rendered tables horizontally, like the paper figures."""
    split_blocks = [block.splitlines() for block in blocks]
    height = max(len(lines) for lines in split_blocks) if split_blocks else 0
    widths = [max((len(line) for line in lines), default=0) for lines in split_blocks]
    padded = [
        [line.ljust(width) for line in lines] + [" " * width] * (height - len(lines))
        for lines, width in zip(split_blocks, widths)
    ]
    separator = " " * gap
    return "\n".join(separator.join(parts[i] for parts in padded) for i in range(height))
