"""Set-semantics relational substrate.

Public surface:

* :class:`~repro.relation.schema.Schema` — ordered attribute sets
* :class:`~repro.relation.row.Row` — immutable rows
* :class:`~repro.relation.relation.Relation` — relations with the basic
  operators of the relational algebra (Appendix A of the paper)
* :mod:`~repro.relation.aggregates` — aggregate functions for grouping
* :mod:`~repro.relation.operators` — prefix-style operator functions
* :mod:`~repro.relation.render` — ASCII rendering used to regenerate the
  paper's figures
"""

from repro.relation.relation import NULL, Relation, RowPredicate
from repro.relation.row import Row
from repro.relation.schema import Schema, as_schema
from repro.relation import aggregates, operators, render

__all__ = [
    "NULL",
    "Relation",
    "Row",
    "RowPredicate",
    "Schema",
    "as_schema",
    "aggregates",
    "operators",
    "render",
]
