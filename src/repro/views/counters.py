"""Per-quotient-key bitset counter tables — the IVM core.

The counter table reuses the dictionary-encoding trick of the vectorized
division kernels: every distinct divisor-attribute value tuple *b* gets a
bit position, a dividend group ``a`` is the int bitmask of the *b* values
it contains, and a divisor group ``c`` (a single implicit group for small
divide) is the bitmask of its members.  Division then *is* the subset test
``group & ~mask == 0``, and the deltas are integer updates:

* dividend insert/delete — ``mask |= bit`` / ``mask &= ~bit`` on one
  group, plus an O(groups-containing-bit) membership re-check;
* divisor grow — the popcount threshold rises, so only current quotient
  members lacking the new bit can drop out;
* divisor shrink — the threshold falls, so only non-members can join;
  each is a single pass over existing counters, never over the data.

Because the engine's relations are sets, multiplicities are 0/1 and the
bitmask *is* the multiset counter classic IVM literature keeps — no
separate count column is needed.  The class maintains the invariant that
after **every** public operation the quotient set equals the exact
function of the current counters, so the order in which same-statement
dividend and divisor deltas are applied cannot matter.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

__all__ = ["CounterTable"]

#: A tuple of attribute values (one quotient key, one divisor-value tuple…).
Values = tuple[Any, ...]


class CounterTable:
    """Bitset counters for one division view, with delta maintenance."""

    __slots__ = (
        "kind",
        "a_width",
        "c_width",
        "_bit_of",
        "_value_of",
        "_masks",
        "_divisor_masks",
        "_quotient",
        "deltas_applied",
    )

    def __init__(self, kind: str, a_width: int, c_width: int = 0) -> None:
        if kind not in ("small", "great"):
            raise ValueError(f"unknown division kind {kind!r}")
        if kind == "small" and c_width:
            raise ValueError("small divide has no divisor-only attributes C")
        self.kind = kind
        self.a_width = a_width
        self.c_width = c_width
        #: divisor-value tuple → bit index, and its inverse (for decoding).
        self._bit_of: dict[Values, int] = {}
        self._value_of: list[Values] = []
        #: dividend group a → bitmask of its b values (keys with ≥1 row only).
        self._masks: dict[Values, int] = {}
        #: divisor group c → bitmask; small divide keeps the single implicit
        #: group ``()`` (possibly 0 = empty divisor ⇒ every a qualifies),
        #: great divide drops groups at mask 0 (no rows ⇒ no (a, c) pairs).
        self._divisor_masks: dict[Values, int] = {(): 0} if kind == "small" else {}
        #: the maintained quotient: A-values + C-values, schema order.
        self._quotient: set[Values] = set()
        #: delta rows routed into this table since the last rebuild.
        self.deltas_applied = 0

    @property
    def is_small(self) -> bool:
        return self.kind == "small"

    # ------------------------------------------------------------------
    # bulk (re)build
    # ------------------------------------------------------------------
    def rebuild(
        self,
        dividend: Iterable[tuple[Values, Values]],
        divisor: Iterable[tuple[Values, Values]],
    ) -> None:
        """Build all counters from scratch: ``(a, b)`` and ``(b, c)`` pairs."""
        self._bit_of.clear()
        self._value_of.clear()
        masks: dict[Values, int] = {}
        divisor_masks: dict[Values, int] = {(): 0} if self.is_small else {}
        for a, b in dividend:
            masks[a] = masks.get(a, 0) | 1 << self._bit(b)
        for b, c in divisor:
            key = () if self.is_small else c
            divisor_masks[key] = divisor_masks.get(key, 0) | 1 << self._bit(b)
        self._masks = masks
        self._divisor_masks = divisor_masks
        self._recompute_quotient()
        self.deltas_applied = 0

    def _recompute_quotient(self) -> None:
        if self.is_small:
            needed = self._divisor_masks[()]
            self._quotient = {a for a, mask in self._masks.items() if needed & ~mask == 0}
        else:
            quotient: set[Values] = set()
            for c, group in self._divisor_masks.items():
                for a, mask in self._masks.items():
                    if group & ~mask == 0:
                        quotient.add(a + c)
            self._quotient = quotient

    # ------------------------------------------------------------------
    # deltas
    # ------------------------------------------------------------------
    def insert_dividend(self, a: Values, b: Values) -> None:
        """One dividend row appears: OR the bit in, re-check one group."""
        self.deltas_applied += 1
        bit = 1 << self._bit(b)
        old = self._masks.get(a, 0)
        new = old | bit
        if new == old:
            return
        self._masks[a] = new
        if self.is_small:
            if self._divisor_masks[()] & ~new == 0:
                self._quotient.add(a)
        else:
            # Only divisor groups containing the new bit can newly qualify.
            for c, group in self._divisor_masks.items():
                if group & bit and group & ~new == 0:
                    self._quotient.add(a + c)

    def delete_dividend(self, a: Values, b: Values) -> None:
        """One dividend row disappears: AND the bit out, evict if needed."""
        self.deltas_applied += 1
        index = self._bit_of.get(b)
        if index is None:
            return  # a b value no counter ever saw cannot affect any mask
        bit = 1 << index
        old = self._masks.get(a, 0)
        new = old & ~bit
        if new == old:
            return
        if new:
            self._masks[a] = new
        else:
            del self._masks[a]  # group emptied: key leaves the dividend
        if self.is_small:
            # Members lose the quotient iff the divisor needs the dropped
            # bit — or the whole group vanished (empty-divisor case).
            if a in self._quotient and (self._divisor_masks[()] & bit or new == 0):
                self._quotient.discard(a)
        else:
            for c, group in self._divisor_masks.items():
                if group & bit:
                    self._quotient.discard(a + c)

    def insert_divisor(self, b: Values, c: Values = ()) -> None:
        """Divisor grows: the popcount threshold rises for one group, so
        only current members lacking the new bit can drop out."""
        self.deltas_applied += 1
        bit = 1 << self._bit(b)
        key = () if self.is_small else c
        old = self._divisor_masks.get(key, 0)
        new = old | bit
        if new == old and (self.is_small or key in self._divisor_masks):
            return
        self._divisor_masks[key] = new
        if self.is_small:
            self._quotient = {a for a in self._quotient if self._masks[a] & bit}
        elif old == 0:
            # Brand-new group: its (a, c) pairs must be seeded from scratch.
            for a, mask in self._masks.items():
                if new & ~mask == 0:
                    self._quotient.add(a + key)
        else:
            width = self.a_width
            self._quotient = {
                q
                for q in self._quotient
                if q[width:] != key or self._masks[q[:width]] & bit
            }

    def delete_divisor(self, b: Values, c: Values = ()) -> None:
        """Divisor shrinks: the threshold falls, so only non-members can
        join — one pass over existing counters, never over the data."""
        self.deltas_applied += 1
        index = self._bit_of.get(b)
        if index is None:
            return
        bit = 1 << index
        key = () if self.is_small else c
        old = self._divisor_masks.get(key)
        if old is None or not old & bit:
            return
        new = old & ~bit
        if self.is_small:
            self._divisor_masks[()] = new
            for a, mask in self._masks.items():
                if new & ~mask == 0:
                    self._quotient.add(a)
        elif new:
            self._divisor_masks[key] = new
            for a, mask in self._masks.items():
                if new & ~mask == 0:
                    self._quotient.add(a + key)
        else:
            del self._divisor_masks[key]  # group emptied: its pairs vanish
            width = self.a_width
            self._quotient = {q for q in self._quotient if q[width:] != key}

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def quotient_tuples(self) -> frozenset[Values]:
        """The maintained quotient as aligned value tuples (A then C)."""
        return frozenset(self._quotient)

    def __len__(self) -> int:
        return len(self._quotient)

    @property
    def dividend_groups(self) -> int:
        return len(self._masks)

    @property
    def divisor_groups(self) -> int:
        return len(self._divisor_masks)

    @property
    def distinct_divisor_values(self) -> int:
        return len(self._value_of)

    # ------------------------------------------------------------------
    # decoded counters (equivalence testing / verifier)
    # ------------------------------------------------------------------
    def dividend_sets(self) -> dict[Values, frozenset[Values]]:
        """a → set of b-value tuples, independent of bit-assignment order."""
        return {a: self._decode(mask) for a, mask in self._masks.items()}

    def divisor_sets(self) -> dict[Values, frozenset[Values]]:
        """c → set of b-value tuples (small divide: the single key ``()``)."""
        return {c: self._decode(mask) for c, mask in self._divisor_masks.items()}

    def _decode(self, mask: int) -> frozenset[Values]:
        values = []
        index = 0
        while mask:
            if mask & 1:
                values.append(self._value_of[index])
            mask >>= 1
            index += 1
        return frozenset(values)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _bit(self, b: Values) -> int:
        index = self._bit_of.get(b)
        if index is None:
            index = len(self._value_of)
            self._bit_of[b] = index
            self._value_of.append(b)
        return index

    def __repr__(self) -> str:
        return (
            f"<CounterTable {self.kind} groups={len(self._masks)} "
            f"divisor_groups={len(self._divisor_masks)} quotient={len(self._quotient)} "
            f"deltas={self.deltas_applied}>"
        )
