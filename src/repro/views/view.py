"""Maintained quotient views: the object behind ``Database.create_view``.

A :class:`MaintainedView` decides once, at registration, whether its
division query has a maintainable shape (all four delta rules of
:mod:`repro.laws.delta` match); if so it owns a
:class:`~repro.views.counters.CounterTable` and every table mutation routed
in by the database becomes an O(delta) bitmask update.  Reads are served by
a :class:`~repro.physical.view_ops.CounterTableScan` — no rewrite, no
planning, no division at read time.  When any delta rule's ``conditions``
do not hold (a projection, join or nested division in an input), the view
falls back to full recompute through the ordinary prepared-plan path and
``explain()`` says so.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.api.result import QueryResult
from repro.errors import ViewError
from repro.laws.registry import delta_rules
from repro.physical.executor import execute_plan
from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.views.counters import CounterTable
from repro.views.shapes import DivisionShape, InputShape, UnsupportedViewShape, analyze_division

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.database import Database
    from repro.api.query import Query
    from repro.laws.delta import DeltaRule

__all__ = ["MaintainedView"]

Values = tuple[Any, ...]


class _SideExtractor:
    """Maps base-table rows of one division input to (key, b) value pairs.

    ``key_names``/``b_names`` are *base* attribute names (the shape's
    inverse rename applied), so the extractor works directly on mutation
    delta rows; rows failing the input's selection predicate are filtered
    out — the delta never reaches the counters (Laws 3/4: selection
    commutes with division).
    """

    __slots__ = ("predicate", "key_names", "b_names")

    def __init__(self, shape_input: InputShape, key_names: tuple[str, ...], b_names: tuple[str, ...]) -> None:
        inverse = shape_input.inverse_map()
        self.predicate = shape_input.predicate
        self.key_names = tuple(inverse[name] for name in key_names)
        self.b_names = tuple(inverse[name] for name in b_names)

    def pairs(self, relation: Relation) -> Iterator[tuple[Values, Values]]:
        predicate = self.predicate
        key_names, b_names = self.key_names, self.b_names
        for row in relation:
            if predicate is None or predicate(row):
                yield row.values_for(key_names), row.values_for(b_names)


class MaintainedView:
    """One registered division view, delta-maintained when possible."""

    def __init__(self, name: str, database: "Database", query: "Query") -> None:
        self.name = name
        self.database = database
        self.query = query
        self.expression = query.expression
        self.schema_names: tuple[str, ...] = self.expression.schema.names
        #: Version each referenced table had when its last delta (or full
        #: build) was incorporated.
        self.applied_versions: dict[str, int] = {}
        #: Delta-rule names that have fired for this view, in first-use order.
        self.rules_used: list[str] = []

        #: The four maintenance rules, keyed by (target, operation).
        self.delta_rules: dict[tuple[str, str], "DeltaRule"] = {
            (rule.target, rule.operation): rule for rule in delta_rules()
        }
        self.shape: Optional[DivisionShape] = None
        self.unsupported_reason = ""
        try:
            shape = analyze_division(self.expression)
        except UnsupportedViewShape as error:
            self.unsupported_reason = error.reason
        else:
            # Maintenance needs full {dividend,divisor} × {insert,delete}
            # coverage; a rule whose conditions don't hold disables it.
            unmatched = [
                f"{target} {operation}"
                for (target, operation), rule in sorted(self.delta_rules.items())
                if not rule.matches(self.expression)
            ]
            if unmatched:
                self.unsupported_reason = f"delta rules do not cover: {', '.join(unmatched)}"
            else:
                self.shape = shape
        self.counters: Optional[CounterTable] = None
        self._dividend_extract: Optional[_SideExtractor] = None
        self._divisor_extract: Optional[_SideExtractor] = None
        self._cached_result: Optional[QueryResult] = None
        self._dirty = True

        # One-time prepare: fingerprint + cost estimates for results served
        # from the counter table (maintained reads never re-plan).
        prepared, _ = database._prepare(self.expression)
        self._fingerprint = prepared.fingerprint
        self._rewritten = prepared.rewritten
        self._cost_before = prepared.original_cost.total_cost
        self._cost_after = prepared.rewritten_cost.total_cost

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    @property
    def maintained(self) -> bool:
        """True when reads are served from the counter table."""
        return self.shape is not None

    @property
    def tables(self) -> frozenset[str]:
        """Base tables this view depends on."""
        if self.shape is not None:
            return self.shape.tables
        return self.expression.relation_names()

    @property
    def deltas_applied(self) -> int:
        """Delta rows incorporated since the last full (re)build."""
        return self.counters.deltas_applied if self.counters is not None else 0

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def on_mutation(self, table: str, inserted: Relation, deleted: Relation, version: int) -> None:
        """Incorporate one table mutation (called by the database)."""
        if table not in self.tables:
            return
        self._cached_result = None
        if self.shape is None or self.counters is None:
            # Fallback view, or maintained view not built yet: the next
            # read recomputes/builds from the current catalog.
            self._dirty = True
            return
        shape, counters = self.shape, self.counters
        if table == shape.dividend.table:
            extract = self._dividend_extract
            assert extract is not None
            for a, b in extract.pairs(deleted):
                counters.delete_dividend(a, b)
                self._note_rule("dividend", "delete")
            for a, b in extract.pairs(inserted):
                counters.insert_dividend(a, b)
                self._note_rule("dividend", "insert")
        if table == shape.divisor.table:
            extract = self._divisor_extract
            assert extract is not None
            for c, b in extract.pairs(deleted):
                counters.delete_divisor(b, c)
                self._note_rule("divisor", "delete")
            for c, b in extract.pairs(inserted):
                counters.insert_divisor(b, c)
                self._note_rule("divisor", "insert")
        self.applied_versions[table] = version

    def _note_rule(self, target: str, operation: str) -> None:
        name = self.delta_rules[(target, operation)].name
        if name not in self.rules_used:
            self.rules_used.append(name)

    def rebuild(self) -> None:
        """Full (re)build of the counters from the current base tables."""
        if self.shape is None:
            self._dirty = True
            self._cached_result = None
            return
        shape = self.shape
        self._dividend_extract = _SideExtractor(shape.dividend, shape.a_names, shape.b_names)
        self._divisor_extract = _SideExtractor(shape.divisor, shape.c_names, shape.b_names)
        counters = CounterTable(shape.kind, len(shape.a_names), len(shape.c_names))
        dividend = self.database.relation(shape.dividend.table)
        divisor = self.database.relation(shape.divisor.table)
        counters.rebuild(
            self._dividend_extract.pairs(dividend),
            ((b, c) for c, b in self._divisor_extract.pairs(divisor)),
        )
        self.counters = counters
        self._cached_result = None
        for table in self.tables:
            self.applied_versions[table] = self.database.table_version(table)

    def _ensure_built(self) -> None:
        if self.counters is None:
            self.rebuild()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def quotient_tuples(self) -> frozenset[Values]:
        """The maintained quotient as aligned value tuples (A then C)."""
        self._ensure_built()
        assert self.counters is not None
        return self.counters.quotient_tuples()

    def run(self) -> QueryResult:
        """Answer the view: counter-table scan, or recompute on fallback."""
        if self.maintained:
            self._ensure_built()
            if self._cached_result is not None:
                return self._cached_result
            from repro.physical.view_ops import CounterTableScan

            execution = execute_plan(
                CounterTableScan(self), batch_size=self.database.batch_size
            )
            result = QueryResult(
                relation=execution.relation,
                expression=self.expression,
                rewritten=self._rewritten,
                rules_fired=tuple(self.rules_used),
                statistics=execution.statistics,
                fingerprint=self._fingerprint,
                cache_hit=True,
                estimated_cost_before=self._cost_before,
                estimated_cost_after=self._cost_after,
            )
            self._cached_result = result
            return result
        # Fallback: the ordinary prepared-plan path (version checks inside
        # _prepare keep it correct under mutations).
        if self._cached_result is not None and not self._dirty:
            return self._cached_result
        result = self.database._run(self.query)
        self._cached_result = result
        self._dirty = False
        for table in self.tables:
            self.applied_versions[table] = self.database.table_version(table)
        return result

    def relation(self) -> Relation:
        """The view's current contents."""
        return self.run().relation

    @property
    def schema(self) -> Schema:
        return self.expression.schema

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def explain(self, analyze: bool = False, verbose: bool = False, verify: bool = False) -> str:
        """The query's EXPLAIN output, headed by the maintenance status."""
        if self.maintained:
            status = f"maintained  : yes · deltas applied={self.deltas_applied}"
        else:
            status = f"maintained  : no ({self.unsupported_reason}) · full recompute on read"
        body = self.query.explain(analyze=analyze, verbose=verbose, verify=verify)
        return f"view        : {self.name}\n{status}\n\n{body}"

    def __repr__(self) -> str:
        mode = "maintained" if self.maintained else "fallback"
        return f"<MaintainedView {self.name!r} {mode} deltas={self.deltas_applied}>"


def require_persistable(view: MaintainedView) -> None:
    """Loud-failure contract of ``Database.save``: fallback views have no
    counter-table form to persist."""
    if not view.maintained:
        raise ViewError(
            f"cannot persist view {view.name!r}: it runs in full-recompute "
            f"fallback mode ({view.unsupported_reason}); drop_view() it "
            "before save, or recreate it after reopening"
        )
