"""Maintainable-shape analysis for division views.

A view is delta-maintainable when both division inputs are *base tables
under selections and renames*: a chain of ``Select``/``Rename`` nodes over
a single ``RelationRef``.  For such inputs a table delta maps to an input
delta by filtering through the (base-named) selection predicate and
renaming — no joins, unions or projections stand between the table and the
division, so set-semantics deltas stay deltas (Laws 3/4 of the paper:
selection commutes with division on either side).

Anything else — a projection (deleting through ``π`` needs multiplicity
counts the engine does not keep), a join, a nested division — raises
:class:`UnsupportedViewShape`, and ``Database.create_view`` registers the
view in full-recompute fallback mode instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.algebra.expressions import (
    Expression,
    GreatDivide,
    Project,
    RelationRef,
    Rename,
    Select,
    SmallDivide,
)
from repro.algebra.predicates import And, Predicate
from repro.errors import ViewError

__all__ = ["InputShape", "DivisionShape", "UnsupportedViewShape", "analyze_division"]


class UnsupportedViewShape(ViewError):
    """The view's expression has no delta-maintainable form.

    ``reason`` is the human-readable explanation surfaced by
    ``view.explain()`` (``maintained: no (<reason>)``).
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class InputShape:
    """One division input normalized to σ/ρ over a base table.

    ``renames`` maps *base* attribute names to the names the division sees
    (identity pairs included, in base-schema order); ``predicate`` is the
    conjunction of all selections, rewritten into base attribute names so
    it can be evaluated directly on table delta rows.
    """

    table: str
    renames: tuple[tuple[str, str], ...]
    predicate: Optional[Predicate]

    def rename_map(self) -> dict[str, str]:
        """base name → view-side name."""
        return dict(self.renames)

    def inverse_map(self) -> dict[str, str]:
        """view-side name → base name."""
        return {view: base for base, view in self.renames}


@dataclass(frozen=True)
class DivisionShape:
    """The full delta-routing metadata for a maintainable division view."""

    kind: str  # "small" | "great"
    dividend: InputShape
    divisor: InputShape
    #: View-side attribute names: quotient keys A (dividend order), shared
    #: divisor attributes B (dividend order — both inputs encode B values
    #: in this order so the dictionary bits line up), divisor-only group
    #: keys C (divisor order; empty for small divide).
    a_names: tuple[str, ...]
    b_names: tuple[str, ...]
    c_names: tuple[str, ...]
    #: Output schema names of the quotient, as the expression infers them.
    schema_names: tuple[str, ...]

    @property
    def tables(self) -> frozenset[str]:
        return frozenset({self.dividend.table, self.divisor.table})


def _analyze_input(node: Expression) -> InputShape:
    """Normalize a σ/ρ chain over a base table; raise otherwise."""
    if isinstance(node, RelationRef):
        return InputShape(node.name, tuple((name, name) for name in node.schema.names), None)
    if isinstance(node, Rename):
        inner = _analyze_input(node.child)
        mapping = node.mapping
        renames = tuple((base, mapping.get(view, view)) for base, view in inner.renames)
        return InputShape(inner.table, renames, inner.predicate)
    if isinstance(node, Select):
        inner = _analyze_input(node.child)
        # The predicate references the child's (possibly renamed) names;
        # store it over base names so it applies directly to table deltas.
        rebased = node.predicate.rename(inner.inverse_map())
        combined = rebased if inner.predicate is None else And(inner.predicate, rebased)
        return InputShape(inner.table, inner.renames, combined)
    raise UnsupportedViewShape(
        f"{type(node).__name__} input is not a base table under selections/renames"
    )


def analyze_division(expression: Expression) -> DivisionShape:
    """Extract the :class:`DivisionShape` of a maintainable division view.

    Raises :class:`UnsupportedViewShape` when the expression is not a
    small/great divide over σ/ρ-over-base-table inputs.  A chain of
    top-level ``Rename`` and *identity* ``Project`` nodes above the
    division (the SQL translator's output-alias wrapper) is peeled: a
    rename relabels quotient attributes positionally and an identity
    projection (same attributes, same order) keeps every tuple, so the
    counter table serves the outer schema unchanged.  A *reordering*
    projection is not peeled — the counters emit A-then-C order.
    """
    divide = expression
    while True:
        if isinstance(divide, Rename):
            divide = divide.child
        elif isinstance(divide, Project) and divide.attributes.names == divide.child.schema.names:
            divide = divide.child
        else:
            break
    if isinstance(divide, SmallDivide):
        kind = "small"
    elif isinstance(divide, GreatDivide):
        kind = "great"
    else:
        raise UnsupportedViewShape(
            f"top-level operator is {type(divide).__name__}, not a division"
        )
    dividend = _analyze_input(divide.left)
    divisor = _analyze_input(divide.right)

    dividend_schema = divide.left.schema
    divisor_schema = divide.right.schema
    shared = dividend_schema.name_set & divisor_schema.name_set
    a_names = tuple(name for name in dividend_schema.names if name not in shared)
    b_names = tuple(name for name in dividend_schema.names if name in shared)
    c_names = (
        tuple(name for name in divisor_schema.names if name not in shared)
        if kind == "great"
        else ()
    )
    if divide.schema.names != a_names + c_names:
        # The counter table emits A-values then C-values; a quotient schema
        # in any other order would need a post-permutation we don't build.
        raise UnsupportedViewShape(
            f"quotient schema {divide.schema.names!r} is not A+C ordered "
            f"({a_names + c_names!r})"
        )
    # The view's output schema: the divide's, through any peeled renames.
    schema_names = expression.schema.names
    return DivisionShape(
        kind=kind,
        dividend=dividend,
        divisor=divisor,
        a_names=a_names,
        b_names=b_names,
        c_names=c_names,
        schema_names=schema_names,
    )
