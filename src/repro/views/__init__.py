"""Delta-maintained quotient views (incremental view maintenance).

The paper's small/great-divide laws describe how division commutes with
selection, union and difference — exactly the algebra needed to maintain a
quotient under single-table deltas instead of recomputing it.  This package
implements that maintenance on the engine's own representation choices:

* :mod:`repro.views.shapes` — decides whether a division query has a
  *maintainable shape* (each input a base table under selections/renames)
  and extracts the delta-routing metadata.
* :mod:`repro.views.counters` — the per-quotient-key bitset counter table:
  a dividend insert/delete is an int-mask OR / AND-NOT plus a subset test
  on the dictionary-encoded divisor bits, a divisor grow/shrink is a
  popcount-threshold change re-checked against the existing counters.
* :mod:`repro.views.view` — :class:`MaintainedView`, the object registered
  by ``Database.create_view``: it routes mutation deltas through the delta
  rules in :mod:`repro.laws.delta` and answers reads from the counter
  table (or falls back to full recompute when the shape is unsupported).
* :mod:`repro.views.persist` — JSON payloads so counter-backed views
  survive ``Database.save`` / ``repro.connect(path)`` round trips.
"""

from repro.views.counters import CounterTable
from repro.views.shapes import DivisionShape, InputShape, UnsupportedViewShape, analyze_division
from repro.views.view import MaintainedView

__all__ = [
    "CounterTable",
    "DivisionShape",
    "InputShape",
    "MaintainedView",
    "UnsupportedViewShape",
    "analyze_division",
]
