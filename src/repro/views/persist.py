"""JSON payloads for maintained views (manifest persistence).

A maintainable view is fully determined by its :class:`DivisionShape`:
two base tables, each under an optional selection (stored over *base*
attribute names) and a rename.  That is what the manifest stores — the
counter table itself is rebuilt deterministically from the reopened base
tables on first read, which keeps ``repro.connect(path)`` lazy.

Predicates serialize the small AST of :mod:`repro.algebra.predicates`;
literals must be JSON-representable scalars or the save fails loudly
(the manifest would silently corrupt them otherwise).
"""

from __future__ import annotations

from typing import Any

from repro.algebra import predicates as P
from repro.errors import ViewError
from repro.views.shapes import InputShape
from repro.views.view import MaintainedView, require_persistable

__all__ = ["view_payload", "view_from_payload", "predicate_payload", "predicate_from_payload"]

_JSON_SCALARS = (int, float, str, bool, type(None))


def predicate_payload(predicate: P.Predicate) -> dict[str, Any]:
    """Serialize a predicate AST; raises :class:`ViewError` on non-JSON
    literals or unknown node types."""
    if isinstance(predicate, P.TruePredicate):
        return {"kind": "true"}
    if isinstance(predicate, P.FalsePredicate):
        return {"kind": "false"}
    if isinstance(predicate, P.Not):
        return {"kind": "not", "operand": predicate_payload(predicate.operand)}
    if isinstance(predicate, P.And):
        return {"kind": "and", "operands": [predicate_payload(p) for p in predicate.operands]}
    if isinstance(predicate, P.Or):
        return {"kind": "or", "operands": [predicate_payload(p) for p in predicate.operands]}
    if isinstance(predicate, P.Comparison):
        return {
            "kind": "comparison",
            "operator": predicate.operator,
            "left": _term_payload(predicate.left),
            "right": _term_payload(predicate.right),
        }
    raise ViewError(f"cannot persist predicate node {type(predicate).__name__}")


def _term_payload(term: P.Term) -> dict[str, Any]:
    if isinstance(term, P.AttributeRef):
        return {"term": "attr", "name": term.name}
    if isinstance(term, P.Literal):
        if not isinstance(term.value, _JSON_SCALARS):
            raise ViewError(
                f"cannot persist literal {term.value!r} "
                f"({type(term.value).__name__} is not JSON-representable)"
            )
        return {"term": "lit", "value": term.value}
    raise ViewError(f"cannot persist term {type(term).__name__}")


def predicate_from_payload(payload: dict[str, Any]) -> P.Predicate:
    kind = payload["kind"]
    if kind == "true":
        return P.TRUE
    if kind == "false":
        return P.FALSE
    if kind == "not":
        return P.Not(predicate_from_payload(payload["operand"]))
    if kind == "and":
        return P.And(*[predicate_from_payload(p) for p in payload["operands"]])
    if kind == "or":
        return P.Or(*[predicate_from_payload(p) for p in payload["operands"]])
    if kind == "comparison":
        return P.Comparison(
            _term_from_payload(payload["left"]),
            payload["operator"],
            _term_from_payload(payload["right"]),
        )
    raise ViewError(f"unknown predicate payload kind {kind!r}")


def _term_from_payload(payload: dict[str, Any]) -> P.Term:
    if payload["term"] == "attr":
        return P.AttributeRef(payload["name"])
    if payload["term"] == "lit":
        return P.Literal(payload["value"])
    raise ViewError(f"unknown term payload {payload!r}")


def _input_payload(shape_input: InputShape) -> dict[str, Any]:
    return {
        "table": shape_input.table,
        "renames": [[base, view] for base, view in shape_input.renames],
        "predicate": (
            None if shape_input.predicate is None else predicate_payload(shape_input.predicate)
        ),
    }


def view_payload(view: MaintainedView) -> dict[str, Any]:
    """Manifest payload for one maintained view; loud failure on fallback
    views (no counter-table form exists to persist)."""
    require_persistable(view)
    shape = view.shape
    assert shape is not None
    return {
        "name": view.name,
        "kind": shape.kind,
        "dividend": _input_payload(shape.dividend),
        "divisor": _input_payload(shape.divisor),
        # The view's output attribute names: differ from the divide's own
        # schema when a top-level rename was peeled (SQL output aliases).
        "output": list(shape.schema_names),
    }


def view_from_payload(database: Any, payload: dict[str, Any]) -> MaintainedView:
    """Re-register a view from its manifest payload.

    Rebuilds the expression as σ (over base names) then ρ over each base
    table — semantically identical to the original definition, and
    analyzed back into the same :class:`DivisionShape`.
    """
    from repro.algebra.expressions import Expression, GreatDivide, SmallDivide

    dividend = _input_expression(database, payload["dividend"])
    divisor = _input_expression(database, payload["divisor"])
    kind = payload["kind"]
    expression: Expression
    if kind == "small":
        expression = SmallDivide(dividend, divisor)
    elif kind == "great":
        expression = GreatDivide(dividend, divisor)
    else:
        raise ViewError(f"unknown view kind {kind!r} in manifest")
    output = tuple(payload.get("output") or expression.schema.names)
    if output != expression.schema.names:
        from repro.algebra.expressions import Rename

        if len(output) != len(expression.schema.names):
            raise ViewError(
                f"view {payload['name']!r} manifest output {output!r} does not "
                f"fit the quotient schema {expression.schema.names!r}"
            )
        expression = Rename(expression, dict(zip(expression.schema.names, output)))
    view = database.create_view(payload["name"], expression)
    if not view.maintained:  # pragma: no cover - manifest round-trip safety
        raise ViewError(
            f"view {payload['name']!r} reloaded from the manifest is not "
            f"maintainable: {view.unsupported_reason}"
        )
    return view


def _input_expression(database: Any, payload: dict[str, Any]) -> Any:
    expression = database.catalog.ref(payload["table"])
    predicate = payload.get("predicate")
    if predicate is not None:
        from repro.algebra.expressions import Select

        expression = Select(expression, predicate_from_payload(predicate))
    renames = {base: view for base, view in payload.get("renames", []) if base != view}
    if renames:
        from repro.algebra.expressions import Rename

        expression = Rename(expression, renames)
    return expression
